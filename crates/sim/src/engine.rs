//! Discrete-event simulation of a hardened, mapped MPSoC.
//!
//! The engine executes the *modeled* runtime semantics of §3 of the paper:
//!
//! * per-PE fixed-priority dispatching (preemptive or non-preemptive);
//! * cross-PE messages delayed by the fabric transfer time;
//! * *re-execution*: a faulty attempt is detected at its end and the task
//!   restarts, up to its budget `k`; the first such fault switches the
//!   system into the **critical state**;
//! * *passive replication*: a standby copy executes only when one of the
//!   always-on copies delivered a faulty value; its invocation also enters
//!   the critical state (an uninvoked standby completes instantly, the
//!   `bcet = 0` case of the analysis);
//! * *active replication*: faults are masked by the voter and have no
//!   timing effect (no state change);
//! * in the critical state, every application in the configured dropped set
//!   `T_d` releases no further work: jobs that have not started are
//!   discarded and new releases are suppressed until the hyperperiod
//!   boundary restores the normal state.

use crate::{FaultModel, JobOutcome, JobRecord, Segment, Trace};
use mcmap_hardening::{HTaskId, HardenedSystem};
use mcmap_model::{AppId, Architecture, ExecBounds, Time};
use mcmap_sched::{hyperperiod, nominal_bounds, Mapping, SchedPolicy};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which execution time each attempt consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecModel {
    /// Every attempt takes its worst-case execution time (used by the
    /// paper's worst-case-hunting Monte-Carlo simulation, *WC-Sim*).
    #[default]
    WorstCase,
    /// Every attempt takes its best-case execution time.
    BestCase,
}

/// Simulation parameters.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Execution-time model for every attempt.
    pub exec_model: ExecModel,
    /// Number of hyperperiods to simulate (0 is treated as 1).
    pub hyperperiods: u64,
    /// The dropped application set `T_d`: these (droppable) applications
    /// stop releasing work while the system is in the critical state.
    pub dropped: Vec<AppId>,
    /// Start the run already in the critical state (the paper's *Adhoc*
    /// estimator assumes the critical state from the beginning of the
    /// hyperperiod, dropping `T_d` outright).
    pub start_critical: bool,
}

impl SimConfig {
    /// Worst-case execution times, one hyperperiod, given dropped set.
    pub fn worst_case(dropped: Vec<AppId>) -> Self {
        SimConfig {
            exec_model: ExecModel::WorstCase,
            hyperperiods: 1,
            dropped,
            start_critical: false,
        }
    }
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Per application: worst observed response time over its *complete*
    /// instances (release → last member finish). [`Time::ZERO`] when no
    /// instance completed.
    pub app_wcrt: Vec<Time>,
    /// Per hardened task: worst finish time relative to the instance
    /// release.
    pub task_wcrt: Vec<Time>,
    /// Per application: instances discarded by the dropping protocol.
    pub dropped_instances: Vec<u64>,
    /// Per application: instances that ran to completion.
    pub completed_instances: Vec<u64>,
    /// Per application: completed instances whose final (post-masking)
    /// output was corrupted by an unrecovered fault.
    pub unsafe_instances: Vec<u64>,
    /// Number of normal→critical transitions observed.
    pub critical_entries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Waiting,
    Ready,
    Running,
    Done,
    Dropped,
}

#[derive(Debug, Clone)]
struct Job {
    state: JobState,
    inputs_missing: usize,
    released: bool,
    attempts: u8,
    remaining: Time,
    last_resume: Time,
    finish: Option<Time>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct JobKey {
    task: usize,
    inst: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Hyperperiod boundary: restore the normal state.
    Boundary,
    /// Tentative completion of the job running on a PE (validated by the
    /// generation counter).
    Finish { pe: usize, gen: u64 },
    /// Periodic release of a job.
    Release { key: JobKey },
    /// Input message delivery to a job.
    Message { key: JobKey },
}

#[derive(Debug, Default)]
struct PeState {
    running: Option<JobKey>,
    ready: Vec<JobKey>,
    gen: u64,
}

/// The discrete-event simulator for one hardened system under one mapping.
#[derive(Debug)]
pub struct Simulator<'a> {
    hsys: &'a HardenedSystem,
    arch: &'a Architecture,
    mapping: &'a Mapping,
    policies: Vec<SchedPolicy>,
    bounds: Vec<ExecBounds>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator.
    ///
    /// # Panics
    ///
    /// Panics if `policies` does not cover every processor.
    pub fn new(
        hsys: &'a HardenedSystem,
        arch: &'a Architecture,
        mapping: &'a Mapping,
        policies: Vec<SchedPolicy>,
    ) -> Self {
        assert_eq!(
            policies.len(),
            arch.num_processors(),
            "one policy per processor required"
        );
        let bounds = nominal_bounds(hsys, arch, mapping);
        Simulator {
            hsys,
            arch,
            mapping,
            policies,
            bounds,
        }
    }

    /// Runs one simulation with the given fault model.
    pub fn run(&self, config: &SimConfig, faults: &mut dyn FaultModel) -> SimResult {
        Run::new(self, config, faults, false).execute().0
    }

    /// Runs one simulation and records the full execution [`Trace`]
    /// (segments, job outcomes, critical-state entries) alongside the
    /// aggregate result.
    pub fn run_traced(
        &self,
        config: &SimConfig,
        faults: &mut dyn FaultModel,
    ) -> (SimResult, Trace) {
        let (result, trace) = Run::new(self, config, faults, true).execute();
        (result, trace.expect("tracing was requested"))
    }

    fn exec_time(&self, task: usize, model: ExecModel) -> Time {
        match model {
            ExecModel::WorstCase => self.bounds[task].wcet,
            ExecModel::BestCase => self.bounds[task].bcet,
        }
    }

    /// Final post-re-execution value status of one copy in one instance:
    /// faulty only if every attempt in the budget is faulty.
    fn copy_final_faulty(&self, faults: &mut dyn FaultModel, task: HTaskId, inst: u64) -> bool {
        let k = self.hsys.task(task).reexec;
        (0..=k).all(|attempt| faults.faulty(task, inst, attempt))
    }
}

struct Run<'s, 'a> {
    sim: &'s Simulator<'a>,
    config: &'s SimConfig,
    faults: &'s mut dyn FaultModel,
    jobs: Vec<Job>,
    /// First job index of each task.
    offsets: Vec<usize>,
    /// Instances per task.
    insts: Vec<u64>,
    pes: Vec<PeState>,
    events: BinaryHeap<Reverse<(Time, u8, u64, EventBox)>>,
    seq: u64,
    critical: bool,
    critical_entries: u64,
    dropped_app: Vec<bool>,
    /// PEs whose ready queues changed in the current event batch; the
    /// dispatcher runs once per PE after all same-timestamp events are
    /// handled so that simultaneous arrivals compete fairly.
    dirty: Vec<bool>,
    /// Execution trace, recorded when requested.
    trace: Option<Trace>,
}

/// Wrapper giving `Event` a (trivial) total order for the heap; the unique
/// `(time, class, seq)` prefix of the heap tuple always decides first, so
/// two `EventBox`es never actually need distinguishing.
#[derive(Debug, Clone, Copy)]
struct EventBox(Event);

impl PartialEq for EventBox {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl Eq for EventBox {}
impl PartialOrd for EventBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventBox {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<'s, 'a> Run<'s, 'a> {
    fn new(
        sim: &'s Simulator<'a>,
        config: &'s SimConfig,
        faults: &'s mut dyn FaultModel,
        traced: bool,
    ) -> Self {
        let hyper = hyperperiod(sim.hsys);
        let horizons = config.hyperperiods.max(1);
        let n = sim.hsys.num_tasks();

        let mut offsets = Vec::with_capacity(n);
        let mut insts = Vec::with_capacity(n);
        let mut total = 0usize;
        for id in sim.hsys.task_ids() {
            let period = sim.hsys.app_of(id).period;
            let count = (hyper.ticks() / period.ticks()) * horizons;
            offsets.push(total);
            insts.push(count);
            total += count as usize;
        }

        let jobs = sim
            .hsys
            .task_ids()
            .flat_map(|id| {
                let inputs = sim.hsys.in_channels(id).count();
                (0..insts[id.index()]).map(move |_| Job {
                    state: JobState::Waiting,
                    inputs_missing: inputs,
                    released: false,
                    attempts: 0,
                    remaining: Time::ZERO,
                    last_resume: Time::ZERO,
                    finish: None,
                })
            })
            .collect();

        let mut run = Run {
            sim,
            config,
            faults,
            jobs,
            offsets,
            insts,
            pes: (0..sim.arch.num_processors())
                .map(|_| PeState::default())
                .collect(),
            events: BinaryHeap::new(),
            seq: 0,
            critical: false,
            critical_entries: 0,
            dropped_app: vec![false; sim.hsys.apps().len()],
            dirty: vec![false; sim.arch.num_processors()],
            trace: traced.then(Trace::default),
        };
        if config.start_critical {
            run.critical = true;
            for app in sim.hsys.apps() {
                if config.dropped.contains(&app.app) {
                    run.dropped_app[app.app.index()] = true;
                }
            }
        }
        for app in sim.hsys.apps() {
            if config.dropped.contains(&app.app) {
                debug_assert!(
                    app.criticality.is_droppable(),
                    "only droppable applications may appear in the dropped set"
                );
            }
        }

        // Seed events: releases and hyperperiod boundaries.
        for id in sim.hsys.task_ids() {
            let period = sim.hsys.app_of(id).period;
            for inst in 0..run.insts[id.index()] {
                let t = period * inst;
                run.push(
                    t,
                    2,
                    Event::Release {
                        key: JobKey {
                            task: id.index(),
                            inst,
                        },
                    },
                );
            }
        }
        for m in 1..=horizons {
            run.push(hyper * m, 0, Event::Boundary);
        }
        run
    }

    fn push(&mut self, t: Time, class: u8, ev: Event) {
        self.seq += 1;
        self.events
            .push(Reverse((t, class, self.seq, EventBox(ev))));
    }

    fn job(&self, key: JobKey) -> &Job {
        &self.jobs[self.offsets[key.task] + key.inst as usize]
    }

    fn job_mut(&mut self, key: JobKey) -> &mut Job {
        &mut self.jobs[self.offsets[key.task] + key.inst as usize]
    }

    fn app_of(&self, key: JobKey) -> AppId {
        self.sim.hsys.task(HTaskId::new(key.task)).app
    }

    fn is_dropped_app(&self, app: AppId) -> bool {
        self.dropped_app[app.index()]
    }

    fn execute(mut self) -> (SimResult, Option<Trace>) {
        while let Some(Reverse((t, _class, _seq, EventBox(ev)))) = self.events.pop() {
            self.handle(ev, t);
            // Drain every event sharing this timestamp before dispatching,
            // so simultaneous arrivals compete by priority rather than by
            // event-queue order.
            while let Some(Reverse((t2, _, _, _))) = self.events.peek() {
                if *t2 != t {
                    break;
                }
                let Reverse((_, _, _, EventBox(ev2))) = self.events.pop().expect("peeked");
                self.handle(ev2, t);
            }
            for pe in 0..self.dirty.len() {
                if self.dirty[pe] {
                    self.dirty[pe] = false;
                    self.schedule(pe, t);
                }
            }
        }
        self.collect()
    }

    fn record_segment(&mut self, key: JobKey, end: Time) {
        if self.trace.is_none() {
            return;
        }
        let job = self.job(key);
        let (start, attempt) = (job.last_resume, job.attempts);
        if start >= end {
            return;
        }
        let proc = self.sim.mapping.proc_of(HTaskId::new(key.task));
        if let Some(trace) = &mut self.trace {
            trace.segments.push(Segment {
                task: HTaskId::new(key.task),
                instance: key.inst,
                attempt,
                proc,
                start,
                end,
            });
        }
    }

    fn record_job(&mut self, key: JobKey, time: Time, outcome: JobOutcome) {
        if let Some(trace) = &mut self.trace {
            trace.jobs.push(JobRecord {
                task: HTaskId::new(key.task),
                instance: key.inst,
                time,
                outcome,
            });
        }
    }

    fn handle(&mut self, ev: Event, t: Time) {
        match ev {
            Event::Boundary => self.on_boundary(),
            Event::Release { key } => self.on_release(key, t),
            Event::Message { key } => self.on_message(key, t),
            Event::Finish { pe, gen } => self.on_finish(pe, gen, t),
        }
    }

    fn on_boundary(&mut self) {
        // The system returns to the normal state; dropped applications are
        // restored (§3). Under `start_critical` the critical state is
        // sustained across boundaries (Adhoc semantics).
        if self.config.start_critical {
            return;
        }
        self.critical = false;
        for d in &mut self.dropped_app {
            *d = false;
        }
    }

    fn on_release(&mut self, key: JobKey, t: Time) {
        let job = self.job_mut(key);
        job.released = true;
        if job.inputs_missing == 0 && job.state == JobState::Waiting {
            self.on_ready(key, t);
        }
    }

    fn on_message(&mut self, key: JobKey, t: Time) {
        let job = self.job_mut(key);
        if job.state == JobState::Dropped {
            return;
        }
        debug_assert!(job.inputs_missing > 0);
        job.inputs_missing -= 1;
        if job.inputs_missing == 0 && job.released && job.state == JobState::Waiting {
            self.on_ready(key, t);
        }
    }

    fn on_ready(&mut self, key: JobKey, t: Time) {
        let app = self.app_of(key);
        if self.critical && self.is_dropped_app(app) {
            self.job_mut(key).state = JobState::Dropped;
            self.record_job(key, t, JobOutcome::Dropped);
            return;
        }
        let task_id = HTaskId::new(key.task);
        let task = self.sim.hsys.task(task_id);
        if task.is_passive() {
            // A standby runs only when one of the always-on copies of its
            // origin delivered a faulty value.
            let flat = self.flat_of_origin(task_id);
            let sim = self.sim;
            let always_on: Vec<HTaskId> = sim
                .hsys
                .copies_of(flat)
                .iter()
                .copied()
                .filter(|&c| !sim.hsys.task(c).is_passive())
                .collect();
            let faults = &mut *self.faults;
            let invoked = always_on
                .into_iter()
                .any(|c| sim.copy_final_faulty(faults, c, key.inst));
            if !invoked {
                // Not invoked: completes instantly with zero execution.
                self.complete(key, t, true);
                return;
            }
            // Invocation of a passive replica enters the critical state.
            self.enter_critical(t);
            if self.is_dropped_app(app) {
                // The standby's own application may be droppable and
                // dropped by the very transition it triggered; the
                // non-droppable check in `AppSet` makes this unusual but a
                // plan may passively replicate a droppable task.
                self.job_mut(key).state = JobState::Dropped;
                self.record_job(key, t, JobOutcome::Dropped);
                return;
            }
        }
        let exec = self.sim.exec_time(key.task, self.config.exec_model);
        if exec == Time::ZERO {
            // A zero-execution job (e.g. a voter whose voting overhead is
            // not modeled) needs no processor time, so it must not queue
            // behind a running lower-urgency job: the response-time fixed
            // point for C = 0 is the release instant, and the analysis
            // bounds it that way.
            self.complete_instantly(key, t);
            return;
        }
        {
            let job = self.job_mut(key);
            job.state = JobState::Ready;
            job.remaining = exec;
        }
        let pe = self.sim.mapping.proc_of(task_id).index();
        self.pes[pe].ready.push(key);
        self.dirty[pe] = true;
    }

    /// Runs a zero-execution job to completion at `t` without occupying
    /// the processor, preserving the fault/re-execution semantics of
    /// [`Run::on_finish`]: every attempt is still charged to the fault
    /// model, detected faults still enter the critical state.
    fn complete_instantly(&mut self, key: JobKey, t: Time) {
        let task_id = HTaskId::new(key.task);
        let task = self.sim.hsys.task(task_id);
        loop {
            let attempt = self.job(key).attempts;
            let faulty = self.faults.faulty(task_id, key.inst, attempt);
            if faulty && attempt < task.reexec {
                self.enter_critical(t);
                self.job_mut(key).attempts += 1;
                if self.is_dropped_app(self.app_of(key)) {
                    self.job_mut(key).state = JobState::Dropped;
                    self.record_job(key, t, JobOutcome::Dropped);
                    return;
                }
                continue;
            }
            if faulty && task.reexec > 0 {
                // Budget exhausted: the final fault is still detected.
                self.enter_critical(t);
            }
            break;
        }
        self.complete(key, t, false);
    }

    /// Flat index (in the original application set) of the origin of a
    /// hardened task.
    fn flat_of_origin(&self, id: HTaskId) -> usize {
        let origin = self.sim.hsys.task(id).origin;
        (0..self.sim.hsys.num_original_tasks())
            .find(|&f| {
                self.sim
                    .hsys
                    .copies_of(f)
                    .first()
                    .is_some_and(|&c| self.sim.hsys.task(c).origin == origin)
            })
            .expect("every hardened copy has an origin entry")
    }

    fn enter_critical(&mut self, t: Time) {
        if self.critical {
            return;
        }
        self.critical = true;
        self.critical_entries += 1;
        if let Some(trace) = &mut self.trace {
            trace.critical_entries.push(t);
        }
        for app in self.sim.hsys.apps() {
            if self.config.dropped.contains(&app.app) {
                self.dropped_app[app.app.index()] = true;
            }
        }
        // Discard queued (not started) jobs of dropped applications.
        let drop_keys: Vec<(usize, JobKey)> = self
            .pes
            .iter()
            .enumerate()
            .flat_map(|(p, pe)| {
                pe.ready
                    .iter()
                    .filter(|&&k| self.is_dropped_app(self.app_of(k)))
                    .map(move |&k| (p, k))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (p, k) in drop_keys {
            self.pes[p].ready.retain(|&q| q != k);
            self.job_mut(k).state = JobState::Dropped;
            self.record_job(k, t, JobOutcome::Dropped);
        }
    }

    /// Ordering key: smaller = more urgent.
    fn urgency(&self, key: JobKey) -> (u32, usize, u64) {
        (
            self.sim.mapping.priority_of(HTaskId::new(key.task)),
            key.task,
            key.inst,
        )
    }

    fn schedule(&mut self, pe: usize, now: Time) {
        let policy = self.sim.policies[pe];
        // Possibly preempt.
        if let Some(running) = self.pes[pe].running {
            if policy == SchedPolicy::FixedPriorityPreemptive {
                if let Some(&best) = self.best_ready(pe) {
                    if self.urgency(best) < self.urgency(running) {
                        self.record_segment(running, now);
                        let elapsed = now.saturating_sub(self.job(running).last_resume);
                        let job = self.job_mut(running);
                        job.remaining = job.remaining.saturating_sub(elapsed);
                        job.state = JobState::Ready;
                        self.pes[pe].ready.push(running);
                        self.pes[pe].running = None;
                        self.pes[pe].gen += 1; // invalidate pending finish
                    }
                }
            }
        }
        // Dispatch if idle.
        if self.pes[pe].running.is_none() {
            if let Some(&best) = self.best_ready(pe) {
                self.pes[pe].ready.retain(|&q| q != best);
                self.pes[pe].running = Some(best);
                {
                    let job = self.job_mut(best);
                    job.state = JobState::Running;
                    job.last_resume = now;
                }
                self.pes[pe].gen += 1;
                let gen = self.pes[pe].gen;
                let fin = now.saturating_add(self.job(best).remaining);
                self.push(fin, 1, Event::Finish { pe, gen });
            }
        }
    }

    fn best_ready(&self, pe: usize) -> Option<&JobKey> {
        self.pes[pe].ready.iter().min_by_key(|&&k| self.urgency(k))
    }

    fn on_finish(&mut self, pe: usize, gen: u64, t: Time) {
        if self.pes[pe].gen != gen {
            return; // stale (preempted or superseded)
        }
        let key = match self.pes[pe].running.take() {
            Some(k) => k,
            None => return,
        };
        let task_id = HTaskId::new(key.task);
        let task = self.sim.hsys.task(task_id);
        let attempt = self.job(key).attempts;
        self.record_segment(key, t);
        let faulty = self.faults.faulty(task_id, key.inst, attempt);

        if faulty && attempt < task.reexec {
            // Detected fault: roll back and re-execute; the system enters
            // the critical state at the detection instant.
            self.enter_critical(t);
            let exec = self.sim.exec_time(key.task, self.config.exec_model);
            {
                let job = self.job_mut(key);
                job.attempts += 1;
                job.remaining = exec;
                job.state = JobState::Ready;
            }
            // The job's own app may just have been dropped.
            if self.is_dropped_app(self.app_of(key)) {
                self.job_mut(key).state = JobState::Dropped;
                self.record_job(key, t, JobOutcome::Dropped);
            } else {
                self.pes[pe].ready.push(key);
            }
            self.dirty[pe] = true;
            return;
        }
        if faulty && task.reexec > 0 {
            // Budget exhausted: the final fault is still detected.
            self.enter_critical(t);
        }
        self.complete(key, t, false);
        self.dirty[pe] = true;
    }

    /// Marks a job done at time `t` and propagates its outputs.
    /// `instant` skips fabric delays (used for uninvoked standbys, which
    /// send nothing — their consumers simply stop waiting).
    fn complete(&mut self, key: JobKey, t: Time, instant: bool) {
        {
            let job = self.job_mut(key);
            job.state = JobState::Done;
            job.finish = Some(t);
        }
        self.record_job(key, t, JobOutcome::Completed);
        let task_id = HTaskId::new(key.task);
        let src_pe = self.sim.mapping.proc_of(task_id);
        let outs: Vec<(HTaskId, u64)> = self
            .sim
            .hsys
            .out_channels(task_id)
            .map(|c| (c.dst, c.bytes))
            .collect();
        for (dst, bytes) in outs {
            let delay = if instant || self.sim.mapping.proc_of(dst) == src_pe {
                Time::ZERO
            } else {
                self.sim.arch.fabric().transfer_time(bytes)
            };
            self.push(
                t.saturating_add(delay),
                2,
                Event::Message {
                    key: JobKey {
                        task: dst.index(),
                        inst: key.inst,
                    },
                },
            );
        }
    }

    fn collect(self) -> (SimResult, Option<Trace>) {
        let Run {
            sim,
            faults,
            jobs,
            offsets,
            insts,
            critical_entries,
            trace,
            ..
        } = self;
        let hsys = sim.hsys;
        let job_of = |key: JobKey| -> &Job { &jobs[offsets[key.task] + key.inst as usize] };

        let n = hsys.num_tasks();
        let num_apps = hsys.apps().len();
        let mut task_wcrt = vec![Time::ZERO; n];
        for id in hsys.task_ids() {
            let period = hsys.app_of(id).period;
            for inst in 0..insts[id.index()] {
                let key = JobKey {
                    task: id.index(),
                    inst,
                };
                if let Some(fin) = job_of(key).finish {
                    let rel = fin.saturating_sub(period * inst);
                    task_wcrt[id.index()] = task_wcrt[id.index()].max(rel);
                }
            }
        }

        let mut app_wcrt = vec![Time::ZERO; num_apps];
        let mut dropped_instances = vec![0u64; num_apps];
        let mut completed_instances = vec![0u64; num_apps];
        let mut unsafe_instances = vec![0u64; num_apps];

        for app in hsys.apps() {
            let ai = app.app.index();
            let n_inst = app.members.first().map(|&m| insts[m.index()]).unwrap_or(0);
            for inst in 0..n_inst {
                let mut complete = true;
                let mut latest = Time::ZERO;
                for &m in &app.members {
                    let key = JobKey {
                        task: m.index(),
                        inst,
                    };
                    match job_of(key).state {
                        JobState::Done => {
                            latest = latest.max(job_of(key).finish.unwrap_or(Time::ZERO));
                        }
                        _ => {
                            complete = false;
                        }
                    }
                }
                if !complete {
                    dropped_instances[ai] += 1;
                    continue;
                }
                completed_instances[ai] += 1;
                let release = app.period * inst;
                app_wcrt[ai] = app_wcrt[ai].max(latest.saturating_sub(release));

                // Post-masking value safety of this instance.
                let mut unsafe_inst = false;
                for flat in 0..hsys.num_original_tasks() {
                    let copies = hsys.copies_of(flat);
                    if copies.is_empty() || hsys.task(copies[0]).app != app.app {
                        continue;
                    }
                    let faulty = if copies.len() == 1 {
                        sim.copy_final_faulty(faults, copies[0], inst)
                    } else {
                        let bad = copies
                            .iter()
                            .filter(|&&c| sim.copy_final_faulty(faults, c, inst))
                            .count();
                        bad * 2 > copies.len()
                    };
                    if faulty {
                        unsafe_inst = true;
                        break;
                    }
                }
                if unsafe_inst {
                    unsafe_instances[ai] += 1;
                }
            }
        }

        (
            SimResult {
                app_wcrt,
                task_wcrt,
                dropped_instances,
                completed_instances,
                unsafe_instances,
                critical_entries,
            },
            trace,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoFaults, ScriptedFaults};
    use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{
        AppSet, Criticality, ExecBounds, Fabric, ProcId, ProcKind, Processor, Task, TaskGraph,
    };
    use mcmap_sched::uniform_policies;

    fn arch(n: usize) -> Architecture {
        Architecture::builder()
            .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .fabric(Fabric::new(8))
            .build()
            .unwrap()
    }

    fn task(name: &str, wcet: u64) -> Task {
        Task::new(name)
            .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(wcet)))
            .with_detect_overhead(Time::from_ticks(5))
    }

    fn build(
        apps: AppSet,
        arch: &Architecture,
        plan: HardeningPlan,
        placement: Vec<ProcId>,
        policy: SchedPolicy,
    ) -> (HardenedSystem, Mapping, Vec<SchedPolicy>) {
        let hsys = harden(&apps, &plan, arch).unwrap();
        let mapping = Mapping::new(&hsys, arch, placement).unwrap();
        let policies = uniform_policies(arch.num_processors(), policy);
        (hsys, mapping, policies)
    }

    #[test]
    fn fault_free_chain_completes_in_sum_of_wcets() {
        let arch = arch(1);
        let g = TaskGraph::builder("g", Time::from_ticks(1_000))
            .task(task("a", 10))
            .task(task("b", 20))
            .channel(0, 1, 0)
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let plan = HardeningPlan::unhardened(&apps);
        let (hsys, mapping, policies) = build(
            apps,
            &arch,
            plan,
            vec![ProcId::new(0); 2],
            SchedPolicy::FixedPriorityPreemptive,
        );
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let r = sim.run(&SimConfig::default(), &mut NoFaults);
        assert_eq!(r.app_wcrt[0], Time::from_ticks(30));
        assert_eq!(r.completed_instances[0], 1);
        assert_eq!(r.critical_entries, 0);
        assert_eq!(r.unsafe_instances[0], 0);
    }

    #[test]
    fn cross_processor_message_pays_fabric_delay() {
        let arch = arch(2);
        let g = TaskGraph::builder("g", Time::from_ticks(1_000))
            .task(task("a", 10))
            .task(task("b", 20))
            .channel(0, 1, 64) // 8 ticks at 8 B/tick
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let plan = HardeningPlan::unhardened(&apps);
        let (hsys, mapping, policies) = build(
            apps,
            &arch,
            plan,
            vec![ProcId::new(0), ProcId::new(1)],
            SchedPolicy::FixedPriorityPreemptive,
        );
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let r = sim.run(&SimConfig::default(), &mut NoFaults);
        assert_eq!(r.app_wcrt[0], Time::from_ticks(38));
    }

    #[test]
    fn preemption_lets_urgent_work_through() {
        // Slow task (period 100) running when fast task (period 20)
        // releases: preemptive → fast WCRT = its own wcet.
        let fast = TaskGraph::builder("fast", Time::from_ticks(20))
            .task(task("f", 4))
            .build()
            .unwrap();
        let slow = TaskGraph::builder("slow", Time::from_ticks(100))
            .task(task("s", 50))
            .build()
            .unwrap();
        let arch = arch(1);
        let apps = AppSet::new(vec![fast, slow]).unwrap();
        let plan = HardeningPlan::unhardened(&apps);
        let (hsys, mapping, policies) = build(
            apps,
            &arch,
            plan,
            vec![ProcId::new(0); 2],
            SchedPolicy::FixedPriorityPreemptive,
        );
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let r = sim.run(&SimConfig::default(), &mut NoFaults);
        assert_eq!(r.app_wcrt[0], Time::from_ticks(4));
        // Slow starts at 4 and is preempted by fast jobs at t=20, 40, 60:
        // finish = 50 + 4·4 = 66.
        assert_eq!(r.app_wcrt[1], Time::from_ticks(66));
    }

    #[test]
    fn non_preemptive_blocks_urgent_work() {
        let fast = TaskGraph::builder("fast", Time::from_ticks(200))
            .task(task("f", 4))
            .build()
            .unwrap();
        let slow = TaskGraph::builder("slow", Time::from_ticks(400))
            .task(task("s", 50))
            .build()
            .unwrap();
        let arch = arch(1);
        // Make slow higher priority impossible: rate-monotonic gives fast
        // higher priority; but both release at 0 and the dispatcher picks
        // fast first, so invert: release order → give slow a head start by
        // custom priorities (slow outranks fast) to create blocking.
        let apps = AppSet::new(vec![fast, slow]).unwrap();
        let plan = HardeningPlan::unhardened(&apps);
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0); 2])
            .unwrap()
            .with_priorities(vec![1, 0]);
        let policies = uniform_policies(1, SchedPolicy::FixedPriorityNonPreemptive);
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let r = sim.run(&SimConfig::default(), &mut NoFaults);
        // Slow runs first (higher priority), fast waits 50 then runs.
        assert_eq!(r.app_wcrt[0], Time::from_ticks(54));
        assert_eq!(r.app_wcrt[1], Time::from_ticks(50));
    }

    #[test]
    fn reexecution_doubles_execution_and_enters_critical() {
        let arch = arch(1);
        let g = TaskGraph::builder("g", Time::from_ticks(1_000))
            .task(task("a", 100))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        let (hsys, mapping, policies) = build(
            apps,
            &arch,
            plan,
            vec![ProcId::new(0)],
            SchedPolicy::FixedPriorityPreemptive,
        );
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let mut faults = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
        let r = sim.run(&SimConfig::default(), &mut faults);
        // (100 + 5 dt) × 2 attempts.
        assert_eq!(r.app_wcrt[0], Time::from_ticks(210));
        assert_eq!(r.critical_entries, 1);
        // Recovered: instance is safe.
        assert_eq!(r.unsafe_instances[0], 0);
    }

    #[test]
    fn exhausted_reexecution_budget_is_unsafe() {
        let arch = arch(1);
        let g = TaskGraph::builder("g", Time::from_ticks(1_000))
            .task(task("a", 100))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        let (hsys, mapping, policies) = build(
            apps,
            &arch,
            plan,
            vec![ProcId::new(0)],
            SchedPolicy::FixedPriorityPreemptive,
        );
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let mut faults = ScriptedFaults::new()
            .with_fault(HTaskId::new(0), 0, 0)
            .with_fault(HTaskId::new(0), 0, 1);
        let r = sim.run(&SimConfig::default(), &mut faults);
        assert_eq!(r.app_wcrt[0], Time::from_ticks(210));
        assert_eq!(r.unsafe_instances[0], 1);
    }

    #[test]
    fn fault_drops_configured_applications_until_boundary() {
        // hi (period 50, reexec) + lo (period 50, droppable): a fault in
        // hi's first instance drops lo's remaining instances of the
        // hyperperiod (100 = 2 instances)... period both 50, hyper 50?
        // Use hi period 100, lo period 50 → hyper 100, lo has 2 instances.
        let hi = TaskGraph::builder("hi", Time::from_ticks(100))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1.0,
            })
            .task(task("h", 30))
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(50))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(task("l", 10))
            .build()
            .unwrap();
        let arch = arch(2);
        let apps = AppSet::new(vec![hi, lo]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        let (hsys, mapping, policies) = build(
            apps,
            &arch,
            plan,
            vec![ProcId::new(0), ProcId::new(1)],
            SchedPolicy::FixedPriorityPreemptive,
        );
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);

        // Fault at t=35 (end of h's first attempt): lo instance 0 started
        // at 0 (wcet 10, done by then); lo instance 1 (release 50) dropped.
        let dropped = vec![AppId::new(1)];
        let mut faults = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
        let cfg = SimConfig {
            dropped: dropped.clone(),
            hyperperiods: 2,
            ..Default::default()
        };
        let r = sim.run(&cfg, &mut faults);
        assert_eq!(r.critical_entries, 1);
        // lo: 4 instances over 2 hyperperiods; instance 1 dropped, others
        // complete (normal state restored at t=100).
        assert_eq!(r.dropped_instances[1], 1);
        assert_eq!(r.completed_instances[1], 3);
        // hi never dropped.
        assert_eq!(r.dropped_instances[0], 0);
        assert_eq!(r.completed_instances[0], 2);
    }

    #[test]
    fn undropped_droppable_apps_keep_running_in_critical_state() {
        let hi = TaskGraph::builder("hi", Time::from_ticks(100))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1.0,
            })
            .task(task("h", 30))
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(50))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(task("l", 10))
            .build()
            .unwrap();
        let arch = arch(2);
        let apps = AppSet::new(vec![hi, lo]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        let (hsys, mapping, policies) = build(
            apps,
            &arch,
            plan,
            vec![ProcId::new(0), ProcId::new(1)],
            SchedPolicy::FixedPriorityPreemptive,
        );
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let mut faults = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
        // Empty dropped set: lo keeps running.
        let r = sim.run(&SimConfig::default(), &mut faults);
        assert_eq!(r.dropped_instances[1], 0);
        assert_eq!(r.completed_instances[1], 2);
    }

    #[test]
    fn uninvoked_standby_costs_no_time() {
        let arch = arch(3);
        let g = TaskGraph::builder("g", Time::from_ticks(1_000))
            .task(
                Task::new("a")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(40)))
                    .with_voting_overhead(Time::from_ticks(6)),
            )
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::passive(vec![ProcId::new(1)], vec![ProcId::new(2)], ProcId::new(0)),
        );
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let placement: Vec<ProcId> = hsys
            .tasks()
            .map(|(_, t)| t.fixed_proc.unwrap_or(ProcId::new(0)))
            .collect();
        let mapping = Mapping::new(&hsys, &arch, placement).unwrap();
        let policies = uniform_policies(3, SchedPolicy::FixedPriorityPreemptive);
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let r = sim.run(&SimConfig::default(), &mut NoFaults);
        // Copies finish at 40; voter fan-in from remote copies: 1 byte → 1
        // tick; voter runs 6 ticks → 47. The standby adds nothing.
        assert_eq!(r.app_wcrt[0], Time::from_ticks(47));
        assert_eq!(r.critical_entries, 0);
    }

    #[test]
    fn zero_overhead_voter_completes_at_its_ready_instant() {
        // A voter with unmodeled (zero) voting overhead must finish the
        // instant its inputs arrive, even when a lower-urgency job holds
        // its processor: C = 0 means it needs no processor time, and the
        // analysis's response-time fixed point bounds it at the release
        // instant. Regression: the voter used to queue behind the running
        // job and inherit its finish time.
        let arch = arch(3);
        let replicated = TaskGraph::builder("rep", Time::from_ticks(1_000))
            .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(40))))
            .build()
            .unwrap();
        let hog = TaskGraph::builder("hog", Time::from_ticks(1_000))
            .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(60))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![replicated, hog]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::passive(vec![ProcId::new(1)], vec![ProcId::new(2)], ProcId::new(0)),
        );
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let placement: Vec<ProcId> = hsys
            .tasks()
            .map(|(_, t)| t.fixed_proc.unwrap_or(ProcId::new(0)))
            .collect();
        let mapping = Mapping::new(&hsys, &arch, placement).unwrap();
        let policies = uniform_policies(3, SchedPolicy::FixedPriorityPreemptive);
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let r = sim.run(&SimConfig::default(), &mut NoFaults);
        // Primary runs 0..40 on p0; hog (released at 0, queued behind the
        // primary) runs 40..100; the remote copy's vote arrives at 41 and
        // the zero-cost voter completes right there, not at 100.
        assert_eq!(r.app_wcrt[0], Time::from_ticks(41));
        assert_eq!(r.app_wcrt[1], Time::from_ticks(100));
        assert_eq!(r.critical_entries, 0);
        assert_eq!(r.unsafe_instances, vec![0, 0]);
    }

    #[test]
    fn invoked_standby_executes_and_enters_critical() {
        let arch = arch(3);
        let g = TaskGraph::builder("g", Time::from_ticks(1_000))
            .task(
                Task::new("a")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(40)))
                    .with_voting_overhead(Time::from_ticks(6)),
            )
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::passive(vec![ProcId::new(1)], vec![ProcId::new(2)], ProcId::new(0)),
        );
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let placement: Vec<ProcId> = hsys
            .tasks()
            .map(|(_, t)| t.fixed_proc.unwrap_or(ProcId::new(0)))
            .collect();
        let mapping = Mapping::new(&hsys, &arch, placement).unwrap();
        let policies = uniform_policies(3, SchedPolicy::FixedPriorityPreemptive);
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        // Primary copy delivers a faulty value → standby invoked.
        let mut faults = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
        let r = sim.run(&SimConfig::default(), &mut faults);
        // Standby executes its 40 ticks in parallel (released at 0), so the
        // voter still finishes at 47, but the system went critical…
        assert_eq!(r.critical_entries, 1);
        assert_eq!(r.app_wcrt[0], Time::from_ticks(47));
        // …and the vote is 1 faulty of 3 copies → majority fine, safe.
        assert_eq!(r.unsafe_instances[0], 0);
    }

    #[test]
    fn periodic_instances_run_every_period() {
        let arch = arch(1);
        let g = TaskGraph::builder("g", Time::from_ticks(25))
            .task(task("a", 5))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let plan = HardeningPlan::unhardened(&apps);
        let (hsys, mapping, policies) = build(
            apps,
            &arch,
            plan,
            vec![ProcId::new(0)],
            SchedPolicy::FixedPriorityPreemptive,
        );
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let cfg = SimConfig {
            hyperperiods: 4,
            ..Default::default()
        };
        let r = sim.run(&cfg, &mut NoFaults);
        assert_eq!(r.completed_instances[0], 4);
        assert_eq!(r.app_wcrt[0], Time::from_ticks(5));
    }

    #[test]
    fn best_case_exec_model_uses_bcet() {
        let arch = arch(1);
        let g =
            TaskGraph::builder("g", Time::from_ticks(100))
                .task(Task::new("a").with_uniform_exec(
                    1,
                    ExecBounds::new(Time::from_ticks(3), Time::from_ticks(9)),
                ))
                .build()
                .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let plan = HardeningPlan::unhardened(&apps);
        let (hsys, mapping, policies) = build(
            apps,
            &arch,
            plan,
            vec![ProcId::new(0)],
            SchedPolicy::FixedPriorityPreemptive,
        );
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let cfg = SimConfig {
            exec_model: ExecModel::BestCase,
            ..Default::default()
        };
        let r = sim.run(&cfg, &mut NoFaults);
        assert_eq!(r.app_wcrt[0], Time::from_ticks(3));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::{JobOutcome, NoFaults, ScriptedFaults};
    use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{
        AppSet, Criticality, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph,
    };
    use mcmap_sched::uniform_policies;

    fn fixture() -> (Architecture, HardenedSystem, Mapping) {
        let arch = Architecture::builder()
            .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap();
        let hi = TaskGraph::builder("hi", Time::from_ticks(100))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1.0,
            })
            .task(
                Task::new("fast")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10)))
                    .with_detect_overhead(Time::from_ticks(2)),
            )
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(100))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(Task::new("slow").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(40))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![hi, lo]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0); 2]).unwrap();
        (arch, hsys, mapping)
    }

    #[test]
    fn traced_run_matches_untraced_result() {
        let (arch, hsys, mapping) = fixture();
        let sim = Simulator::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(1, SchedPolicy::FixedPriorityPreemptive),
        );
        let plain = sim.run(&SimConfig::default(), &mut NoFaults);
        let (traced, trace) = sim.run_traced(&SimConfig::default(), &mut NoFaults);
        assert_eq!(plain, traced);
        // Two jobs, two completion records, no drops, no critical entries.
        assert_eq!(trace.jobs.len(), 2);
        assert!(trace
            .jobs
            .iter()
            .all(|j| j.outcome == JobOutcome::Completed));
        assert!(trace.critical_entries.is_empty());
        // Segments: fast 0-12, slow 12-52 (priorities: hi first).
        assert_eq!(trace.segments.len(), 2);
        assert_eq!(trace.segments[0].start, Time::ZERO);
        assert_eq!(trace.segments[0].end, Time::from_ticks(12));
        assert_eq!(trace.segments[1].end, Time::from_ticks(52));
        assert_eq!(trace.busy_time(ProcId::new(0)), Time::from_ticks(52));
    }

    #[test]
    fn trace_captures_reexecution_and_drop() {
        let (arch, hsys, mapping) = fixture();
        let sim = Simulator::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(1, SchedPolicy::FixedPriorityPreemptive),
        );
        let mut faults = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
        let cfg = SimConfig {
            dropped: vec![AppId::new(1)],
            ..SimConfig::default()
        };
        let (result, trace) = sim.run_traced(&cfg, &mut faults);
        assert_eq!(result.critical_entries, 1);
        // Fault detected at t = 12.
        assert_eq!(trace.critical_entries, vec![Time::from_ticks(12)]);
        // The re-executed attempt shows up as a second segment of task 0.
        let attempts: Vec<u8> = trace
            .segments
            .iter()
            .filter(|s| s.task == HTaskId::new(0))
            .map(|s| s.attempt)
            .collect();
        assert_eq!(attempts, vec![0, 1]);
        // The droppable job was dropped and recorded as such.
        assert!(trace
            .jobs
            .iter()
            .any(|j| j.task == HTaskId::new(1) && j.outcome == JobOutcome::Dropped));
        // The Gantt renders without panicking and shows the fast task.
        let names = Trace::name_table(&hsys, mapping.placement());
        let gantt = trace.render_gantt(&names, Time::from_ticks(100), 40);
        assert!(gantt.contains('f'));
        assert!(gantt.contains('!'));
    }
}
