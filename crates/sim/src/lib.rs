//! # mcmap-sim
//!
//! Discrete-event simulation of fault-tolerant mixed-criticality MPSoCs,
//! implementing the runtime protocol of §3 of *Kang et al., DAC 2014*:
//! fixed-priority dispatching per PE, fabric-delayed messages, re-execution
//! on detected faults, on-demand passive standbys, and mixed-criticality
//! task dropping (the dropped set releases no work from the first fault
//! until the hyperperiod boundary).
//!
//! The simulator plays two roles in the reproduction:
//!
//! 1. **WC-Sim** (Table 2): [`monte_carlo`] hunts the worst observed
//!    response time over many seeded failure profiles — a lower bound that
//!    the static analysis must dominate;
//! 2. **validation**: directed [`ScriptedFaults`] scenarios (e.g. the Fig. 1
//!    motivational example) exercise the dropping protocol end to end.
//!
//! # Examples
//!
//! Simulating a single re-executed fault:
//!
//! ```
//! use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
//! use mcmap_model::{AppSet, Architecture, ExecBounds, ProcId, ProcKind, Processor, Task,
//!     TaskGraph, Time};
//! use mcmap_sched::{uniform_policies, Mapping, SchedPolicy};
//! use mcmap_sim::{ScriptedFaults, SimConfig, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = Architecture::builder()
//!     .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-6))
//!     .build()?;
//! let g = TaskGraph::builder("g", Time::from_ticks(1_000))
//!     .task(Task::new("t")
//!         .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(100)))
//!         .with_detect_overhead(Time::from_ticks(10)))
//!     .build()?;
//! let apps = AppSet::new(vec![g])?;
//! let mut plan = HardeningPlan::unhardened(&apps);
//! plan.set_by_flat_index(0, TaskHardening::reexecution(1));
//! let hsys = harden(&apps, &plan, &arch)?;
//! let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0)])?;
//! let sim = Simulator::new(&hsys, &arch, &mapping,
//!     uniform_policies(1, SchedPolicy::FixedPriorityPreemptive));
//!
//! // One fault on the first attempt: the task runs twice (2 × 110 ticks).
//! let mut faults = ScriptedFaults::new().with_fault(mcmap_hardening::HTaskId::new(0), 0, 0);
//! let result = sim.run(&SimConfig::default(), &mut faults);
//! assert_eq!(result.app_wcrt[0], Time::from_ticks(220));
//! assert_eq!(result.critical_entries, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod fault;
mod monte;
mod trace;

pub use engine::{ExecModel, SimConfig, SimResult, Simulator};
pub use fault::{ExhaustiveReexecution, FaultModel, NoFaults, RandomFaults, ScriptedFaults};
pub use monte::{monte_carlo, MonteCarloConfig, MonteCarloResult};
pub use trace::{JobOutcome, JobRecord, Segment, Trace};
