//! Reliability analysis of a hardened, mapped system.
//!
//! The paper (§2.3) constrains every non-droppable application `t` to a
//! maximum probability of unsafe execution `f_t` per released instance; the
//! precise formulation is delegated to [6] (Kang et al., DATE 2014). We
//! implement the standard transient-fault model used by that line of work:
//!
//! * a single execution of duration `c` on processor `p` is hit by at least
//!   one fault with probability `1 − exp(−λ_p · c)` (Poisson arrivals);
//! * *re-execution* with `k` retries fails only if all `k + 1` attempts fail
//!   (detection is assumed perfect);
//! * *replication* over `m` copies fails when a majority of copies deliver a
//!   faulty value (Poisson-binomial tail, computed exactly by dynamic
//!   programming over the per-copy probabilities — copies on different
//!   processors have different failure rates);
//! * voters are assumed fault-free (a standard assumption — they are tiny
//!   and can be lock-stepped);
//! * an application instance executes unsafely if any of its original tasks
//!   fails: `1 − Π_v (1 − p_v)`.

use crate::{HTaskId, HardenedSystem, Role};
use mcmap_model::{AppId, Architecture, ProcId};

/// Reliability analysis over a hardened system on a given architecture.
///
/// All queries take a `placement` slice assigning one processor to every
/// hardened task (index = [`HTaskId::index`]); tasks with a fixed placement
/// must be placed on that processor.
#[derive(Debug, Clone, Copy)]
pub struct Reliability<'a> {
    hsys: &'a HardenedSystem,
    arch: &'a Architecture,
}

/// Result of checking one application's reliability constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityVerdict {
    /// The application checked.
    pub app: AppId,
    /// Computed probability of unsafe execution per released instance.
    pub failure_probability: f64,
    /// The bound `f_t` from the model.
    pub bound: f64,
    /// `failure_probability ≤ bound`.
    pub satisfied: bool,
}

impl<'a> Reliability<'a> {
    /// Creates the analysis for a hardened system on an architecture.
    pub fn new(hsys: &'a HardenedSystem, arch: &'a Architecture) -> Self {
        Reliability { hsys, arch }
    }

    /// Probability that a *single run* of hardened task `id` on processor
    /// `proc` is hit by a fault (no re-execution credit).
    ///
    /// # Panics
    ///
    /// Panics if the task cannot execute on `proc`'s kind.
    pub fn single_run_fault_prob(&self, id: HTaskId, proc: ProcId) -> f64 {
        let t = self.hsys.task(id);
        let p = self.arch.processor(proc);
        let wcet = t
            .nominal_bounds(p.kind)
            .unwrap_or_else(|| panic!("task {id} cannot run on {proc}"))
            .wcet;
        p.fault_probability(wcet)
    }

    /// Probability that task `id` on `proc` fails *after* exhausting its
    /// re-execution budget: `p^{k+1}`.
    pub fn copy_failure_prob(&self, id: HTaskId, proc: ProcId) -> f64 {
        let p = self.single_run_fault_prob(id, proc);
        p.powi(self.hsys.task(id).reexec as i32 + 1)
    }

    /// Expected number of executions of task `id` on `proc`, accounting for
    /// its re-execution budget: `Σ_{j=0..k} p^j`. Used by the expected-power
    /// objective.
    pub fn expected_executions(&self, id: HTaskId, proc: ProcId) -> f64 {
        let p = self.single_run_fault_prob(id, proc);
        let k = self.hsys.task(id).reexec as i32;
        (0..=k).map(|j| p.powi(j)).sum()
    }

    /// Probability that the standbys of original task `flat` are invoked:
    /// the voter requests a standby when any always-on copy delivered a
    /// faulty value. Returns 0 for tasks without standbys.
    pub fn activation_probability(&self, flat: usize, placement: &[ProcId]) -> f64 {
        let copies = self.hsys.copies_of(flat);
        if !copies.iter().any(|&c| self.hsys.task(c).role.is_passive()) {
            return 0.0;
        }
        let p_all_ok: f64 = copies
            .iter()
            .filter(|&&c| !self.hsys.task(c).role.is_passive())
            .map(|&c| 1.0 - self.single_run_fault_prob(c, placement[c.index()]))
            .product();
        1.0 - p_all_ok
    }

    /// Failure probability of one *original* task under its hardening: the
    /// majority-vote failure over all copies (or the single copy's
    /// post-re-execution failure probability).
    pub fn task_failure_prob(&self, flat: usize, placement: &[ProcId]) -> f64 {
        let copies = self.hsys.copies_of(flat);
        debug_assert!(!copies.is_empty());
        if copies.len() == 1 {
            return self.copy_failure_prob(copies[0], placement[copies[0].index()]);
        }
        let probs: Vec<f64> = copies
            .iter()
            .map(|&c| self.copy_failure_prob(c, placement[c.index()]))
            .collect();
        majority_failure_prob(&probs)
    }

    /// Probability that one released instance of `app` executes unsafely:
    /// `1 − Π_v (1 − p_v)` over the application's original tasks.
    pub fn app_failure_prob(&self, app: AppId, placement: &[ProcId]) -> f64 {
        let mut p_ok = 1.0;
        for flat in self.flats_of_app(app) {
            p_ok *= 1.0 - self.task_failure_prob(flat, placement);
        }
        1.0 - p_ok
    }

    /// Checks the reliability constraint of every non-droppable application.
    pub fn check_all(&self, placement: &[ProcId]) -> Vec<ReliabilityVerdict> {
        self.hsys
            .apps()
            .iter()
            .filter_map(|happ| {
                happ.criticality.max_failure_rate().map(|bound| {
                    let p = self.app_failure_prob(happ.app, placement);
                    ReliabilityVerdict {
                        app: happ.app,
                        failure_probability: p,
                        bound,
                        satisfied: p <= bound,
                    }
                })
            })
            .collect()
    }

    /// `true` when every non-droppable application satisfies its bound.
    pub fn all_satisfied(&self, placement: &[ProcId]) -> bool {
        self.check_all(placement).iter().all(|v| v.satisfied)
    }

    /// Flat indices of the original tasks belonging to `app`.
    fn flats_of_app(&self, app: AppId) -> impl Iterator<Item = usize> + '_ {
        (0..self.hsys.num_original_tasks()).filter(move |&flat| {
            let copies = self.hsys.copies_of(flat);
            !copies.is_empty() && self.hsys.task(copies[0]).app == app
        })
    }
}

/// Probability that a strict majority of independent copies fail, given each
/// copy's failure probability. Exact Poisson-binomial tail via DP.
///
/// For `m = 2` (duplication) the "majority" threshold is 2: a single faulty
/// copy is *detected* by the comparison and handled safely, so unsafe
/// execution requires both copies to fail — the fault-detection use case of
/// \[5\] in the paper.
///
/// # Examples
///
/// ```
/// use mcmap_hardening::majority_failure_prob;
/// // Triplication with p = 0.1 each: P(≥2 fail) = 3·0.01·0.9 + 0.001 = 0.028.
/// let p = majority_failure_prob(&[0.1, 0.1, 0.1]);
/// assert!((p - 0.028).abs() < 1e-12);
/// ```
pub fn majority_failure_prob(probs: &[f64]) -> f64 {
    let m = probs.len();
    if m == 0 {
        return 0.0;
    }
    if m == 1 {
        return probs[0];
    }
    // dist[j] = P(exactly j copies faulty).
    let mut dist = vec![0.0f64; m + 1];
    dist[0] = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        for j in (0..=i + 1).rev() {
            let stay = if j <= i { dist[j] * (1.0 - p) } else { 0.0 };
            let rise = if j > 0 { dist[j - 1] * p } else { 0.0 };
            dist[j] = stay + rise;
        }
    }
    let threshold = m / 2 + 1; // strict majority
    dist[threshold..].iter().sum()
}

/// Returns a placement slice that honours every fixed placement in the
/// hardened system, assigning `default` to the free (primary) tasks. Useful
/// for tests and for reliability screening before a mapping is decided.
pub fn placement_with_default(hsys: &HardenedSystem, default: ProcId) -> Vec<ProcId> {
    hsys.tasks()
        .map(|(_, t)| t.fixed_proc.unwrap_or(default))
        .collect()
}

/// Checks that a placement honours the fixed placements recorded in the
/// hardened system (replicas must not share the primary's processor — that
/// is the point of replication — but this is the mapping layer's concern;
/// here we only check the plan's explicit placements).
pub fn placement_respects_fixed(hsys: &HardenedSystem, placement: &[ProcId]) -> bool {
    placement.len() == hsys.num_tasks()
        && hsys.tasks().all(|(id, t)| match t.fixed_proc {
            Some(p) => placement[id.index()] == p,
            None => true,
        })
}

impl HardenedSystem {
    /// Iterates over the voter tasks of the system.
    pub fn voters(&self) -> impl Iterator<Item = HTaskId> + '_ {
        self.tasks()
            .filter(|(_, t)| t.role == Role::Voter)
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{
        AppSet, Criticality, ExecBounds, ProcKind, Processor, Task, TaskGraph, Time,
    };

    fn arch(n: usize, rate: f64) -> Architecture {
        Architecture::builder()
            .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, rate))
            .build()
            .unwrap()
    }

    fn single_task_set(fail_bound: f64) -> AppSet {
        let g = TaskGraph::builder("g", Time::from_ticks(1000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: fail_bound,
            })
            .task(
                Task::new("t")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(100)))
                    .with_detect_overhead(Time::from_ticks(5)),
            )
            .build()
            .unwrap();
        AppSet::new(vec![g]).unwrap()
    }

    #[test]
    fn majority_prob_matches_closed_forms() {
        // m=1: p itself.
        assert_eq!(majority_failure_prob(&[0.2]), 0.2);
        // m=2: both must fail.
        assert!((majority_failure_prob(&[0.1, 0.2]) - 0.02).abs() < 1e-12);
        // m=3 homogeneous: 3p²(1−p) + p³.
        let p: f64 = 0.05;
        let expected = 3.0 * p * p * (1.0 - p) + p * p * p;
        assert!((majority_failure_prob(&[p, p, p]) - expected).abs() < 1e-12);
        // Empty: no copies, no failure.
        assert_eq!(majority_failure_prob(&[]), 0.0);
    }

    #[test]
    fn majority_prob_heterogeneous() {
        // P(≥2 of {a,b,c} fail) computed by enumeration.
        let (a, b, c) = (0.1, 0.2, 0.3);
        let expected = a * b * (1.0 - c) + a * (1.0 - b) * c + (1.0 - a) * b * c + a * b * c;
        assert!((majority_failure_prob(&[a, b, c]) - expected).abs() < 1e-12);
    }

    #[test]
    fn reexecution_raises_reliability() {
        let apps = single_task_set(1e-3);
        let arch = arch(1, 1e-4);
        let bare = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        let hardened = harden(&apps, &plan, &arch).unwrap();

        let p0 = ProcId::new(0);
        let r_bare = Reliability::new(&bare, &arch);
        let r_hard = Reliability::new(&hardened, &arch);
        let place_bare = placement_with_default(&bare, p0);
        let place_hard = placement_with_default(&hardened, p0);
        let f_bare = r_bare.app_failure_prob(AppId::new(0), &place_bare);
        let f_hard = r_hard.app_failure_prob(AppId::new(0), &place_hard);
        assert!(f_hard < f_bare);
        // p^(k+1) relationship (approximately: dt slightly raises single-run p).
        assert!(f_hard < f_bare * f_bare * 2.0);
    }

    #[test]
    fn triplication_raises_reliability() {
        let apps = single_task_set(1e-3);
        let arch = arch(3, 1e-4);
        let bare = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::active(vec![ProcId::new(1), ProcId::new(2)], ProcId::new(0)),
        );
        let tripled = harden(&apps, &plan, &arch).unwrap();

        let p0 = ProcId::new(0);
        let f_bare = Reliability::new(&bare, &arch)
            .app_failure_prob(AppId::new(0), &placement_with_default(&bare, p0));
        let f_tri = Reliability::new(&tripled, &arch)
            .app_failure_prob(AppId::new(0), &placement_with_default(&tripled, p0));
        assert!(f_tri < f_bare);
    }

    #[test]
    fn verdicts_respect_bounds() {
        let apps = single_task_set(0.5);
        let arch = arch(1, 1e-5);
        let h = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let rel = Reliability::new(&h, &arch);
        let place = placement_with_default(&h, ProcId::new(0));
        let verdicts = rel.check_all(&place);
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].satisfied);
        assert!(rel.all_satisfied(&place));

        // A much tighter bound fails without hardening.
        let apps = single_task_set(1e-9);
        let h = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let rel = Reliability::new(&h, &arch);
        let place = placement_with_default(&h, ProcId::new(0));
        assert!(!rel.all_satisfied(&place));
    }

    #[test]
    fn droppable_apps_are_not_checked() {
        let g = TaskGraph::builder("lo", Time::from_ticks(100))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(50))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let arch = arch(1, 1e-2);
        let h = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let rel = Reliability::new(&h, &arch);
        let place = placement_with_default(&h, ProcId::new(0));
        assert!(rel.check_all(&place).is_empty());
        assert!(rel.all_satisfied(&place));
    }

    #[test]
    fn expected_executions_accounts_for_retries() {
        let apps = single_task_set(1e-3);
        let arch = arch(1, 1e-4);
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(2));
        let h = harden(&apps, &plan, &arch).unwrap();
        let rel = Reliability::new(&h, &arch);
        let id = HTaskId::new(0);
        let p = rel.single_run_fault_prob(id, ProcId::new(0));
        let expected = 1.0 + p + p * p;
        assert!((rel.expected_executions(id, ProcId::new(0)) - expected).abs() < 1e-12);
        // Without retries the expectation is exactly one execution.
        let bare = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let rel = Reliability::new(&bare, &arch);
        assert_eq!(
            rel.expected_executions(HTaskId::new(0), ProcId::new(0)),
            1.0
        );
    }

    #[test]
    fn activation_probability_for_standbys() {
        let apps = single_task_set(1e-3);
        let arch = arch(3, 1e-3);
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::passive(vec![ProcId::new(1)], vec![ProcId::new(2)], ProcId::new(0)),
        );
        let h = harden(&apps, &plan, &arch).unwrap();
        let rel = Reliability::new(&h, &arch);
        let place = placement_with_default(&h, ProcId::new(0));
        let act = rel.activation_probability(0, &place);
        // P(any of two actives faulty) = 1 − (1−p)².
        let p = rel.single_run_fault_prob(HTaskId::new(0), ProcId::new(0));
        assert!((act - (1.0 - (1.0 - p) * (1.0 - p))).abs() < 1e-12);

        // A task without standbys activates nothing.
        let bare = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let rel = Reliability::new(&bare, &arch);
        let place = placement_with_default(&bare, ProcId::new(0));
        assert_eq!(rel.activation_probability(0, &place), 0.0);
    }

    #[test]
    fn placement_helpers() {
        let apps = single_task_set(1e-3);
        let arch = arch(2, 0.0);
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::active(vec![ProcId::new(1)], ProcId::new(0)),
        );
        let h = harden(&apps, &plan, &arch).unwrap();
        let place = placement_with_default(&h, ProcId::new(0));
        assert!(placement_respects_fixed(&h, &place));
        let mut bad = place.clone();
        // Move the fixed replica elsewhere.
        let replica = h
            .tasks()
            .find(|(_, t)| t.fixed_proc == Some(ProcId::new(1)))
            .unwrap()
            .0;
        bad[replica.index()] = ProcId::new(0);
        assert!(!placement_respects_fixed(&h, &bad));
        assert!(!placement_respects_fixed(&h, &place[..1]));
    }
}
