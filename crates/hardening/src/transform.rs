//! The hardening graph transform: application set + hardening plan → `T'`.
//!
//! Implements the rewrites sketched in Fig. 2 of the paper:
//!
//! * *re-execution* keeps the topology and folds the detection overhead into
//!   the execution bounds (the Eq. (1) inflation is exposed via
//!   [`HTask::critical_wcet`]);
//! * *active replication* clones the task onto the planned processors and
//!   inserts a majority voter; every copy receives the original inputs and
//!   the voter takes over the original outputs;
//! * *passive replication* additionally creates standby copies that the
//!   voter consults only on a mismatch — statically they are wired like
//!   active copies, and the analyses account for their conditional execution
//!   by giving them a best case of zero.

use crate::{HApp, HChannel, HTask, HTaskId, HardeningPlan, Replication, Role};
use core::fmt;
use mcmap_model::{AppSet, Architecture, ExecBounds, ProcId, Task, TaskRef, Time};

/// Error produced while applying a hardening plan.
#[derive(Debug, Clone, PartialEq)]
pub enum HardenError {
    /// The plan has a different number of entries than the application set
    /// has tasks.
    PlanSizeMismatch {
        /// Entries in the plan.
        plan: usize,
        /// Tasks in the application set.
        tasks: usize,
    },
    /// A replica or voter is placed on a processor that does not exist.
    UnknownProcessor {
        /// The offending task.
        task: TaskRef,
        /// The out-of-range processor id.
        proc: ProcId,
    },
    /// A replica is placed on a processor whose kind cannot execute the task.
    ReplicaKindMismatch {
        /// The offending task.
        task: TaskRef,
        /// The processor whose kind the task does not support.
        proc: ProcId,
    },
    /// Active replication was requested with no additional replicas.
    TooFewReplicas {
        /// The offending task.
        task: TaskRef,
    },
    /// Passive replication was requested without any standby copy, or
    /// without at least two always-on copies to compare.
    MalformedPassive {
        /// The offending task.
        task: TaskRef,
    },
}

impl fmt::Display for HardenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardenError::PlanSizeMismatch { plan, tasks } => {
                write!(f, "plan has {plan} entries but the set has {tasks} tasks")
            }
            HardenError::UnknownProcessor { task, proc } => {
                write!(
                    f,
                    "replica/voter of {task} placed on unknown processor {proc}"
                )
            }
            HardenError::ReplicaKindMismatch { task, proc } => {
                write!(
                    f,
                    "task {task} cannot execute on the kind of processor {proc}"
                )
            }
            HardenError::TooFewReplicas { task } => {
                write!(f, "active replication of {task} needs at least one replica")
            }
            HardenError::MalformedPassive { task } => {
                write!(
                    f,
                    "passive replication of {task} needs two always-on copies and a standby"
                )
            }
        }
    }
}

impl std::error::Error for HardenError {}

/// The transformed application set `T'`: every original task expanded into
/// its copies (plus voter), with rewritten channels.
///
/// Built by [`harden`]; consumed by the scheduling analysis, the simulator,
/// and the reliability checks.
#[derive(Debug, Clone, PartialEq)]
pub struct HardenedSystem {
    apps: Vec<HApp>,
    tasks: Vec<HTask>,
    channels: Vec<HChannel>,
    /// Incoming channel indices per task.
    preds: Vec<Vec<usize>>,
    /// Outgoing channel indices per task.
    succs: Vec<Vec<usize>>,
    /// Topological order over all tasks (apps are independent components).
    topo: Vec<HTaskId>,
    /// Hardened copies (primary, actives, passives) per original flat index.
    copies: Vec<Vec<HTaskId>>,
    /// Voter per original flat index, if the task is replicated.
    voters: Vec<Option<HTaskId>>,
}

impl HardenedSystem {
    /// Number of hardened tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of hardened channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Returns a hardened task by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: HTaskId) -> &HTask {
        &self.tasks[id.index()]
    }

    /// Iterates over `(HTaskId, &HTask)`.
    pub fn tasks(&self) -> impl Iterator<Item = (HTaskId, &HTask)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (HTaskId::new(i), t))
    }

    /// All hardened task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = HTaskId> {
        (0..self.tasks.len()).map(HTaskId::new)
    }

    /// Iterates over all channels.
    pub fn channels(&self) -> impl Iterator<Item = &HChannel> {
        self.channels.iter()
    }

    /// Channels feeding `id`.
    pub fn in_channels(&self, id: HTaskId) -> impl Iterator<Item = &HChannel> {
        self.preds[id.index()].iter().map(|&c| &self.channels[c])
    }

    /// Channels produced by `id`.
    pub fn out_channels(&self, id: HTaskId) -> impl Iterator<Item = &HChannel> {
        self.succs[id.index()].iter().map(|&c| &self.channels[c])
    }

    /// Direct predecessors of `id`.
    pub fn predecessors(&self, id: HTaskId) -> impl Iterator<Item = HTaskId> + '_ {
        self.in_channels(id).map(|c| c.src)
    }

    /// Direct successors of `id`.
    pub fn successors(&self, id: HTaskId) -> impl Iterator<Item = HTaskId> + '_ {
        self.out_channels(id).map(|c| c.dst)
    }

    /// A topological order over all hardened tasks.
    pub fn topological_order(&self) -> &[HTaskId] {
        &self.topo
    }

    /// Per-application metadata, indexed by the original
    /// [`mcmap_model::AppId`].
    pub fn apps(&self) -> &[HApp] {
        &self.apps
    }

    /// The application metadata for the app owning `id`.
    pub fn app_of(&self, id: HTaskId) -> &HApp {
        &self.apps[self.tasks[id.index()].app.index()]
    }

    /// All hardened copies (primary, active, passive — not the voter) of an
    /// original task, given its flat index in the original set.
    pub fn copies_of(&self, flat_index: usize) -> &[HTaskId] {
        &self.copies[flat_index]
    }

    /// The voter of an original task (by flat index), if replicated.
    pub fn voter_of(&self, flat_index: usize) -> Option<HTaskId> {
        self.voters[flat_index]
    }

    /// Total number of original tasks this system was derived from.
    pub fn num_original_tasks(&self) -> usize {
        self.copies.len()
    }

    /// The flat index (in the original application set) of the given origin
    /// task, or `None` if the reference does not occur in this system.
    pub fn flat_of_origin(&self, origin: TaskRef) -> Option<usize> {
        (0..self.copies.len()).find(|&f| {
            self.copies[f]
                .first()
                .is_some_and(|&c| self.tasks[c.index()].origin == origin)
        })
    }
}

/// Applies a hardening plan to an application set.
///
/// The architecture is needed to validate replica and voter placements and
/// to size the voter's execution table.
///
/// # Errors
///
/// See [`HardenError`] for the conditions rejected.
///
/// # Examples
///
/// ```
/// use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
/// use mcmap_model::{
///     AppSet, Architecture, ExecBounds, ProcKind, Processor, Task, TaskGraph, Time,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let arch = Architecture::builder()
///     .homogeneous(3, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
///     .build()?;
/// let g = TaskGraph::builder("g", Time::from_ticks(100))
///     .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
///     .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
///     .channel(0, 1, 16)
///     .build()?;
/// let apps = AppSet::new(vec![g])?;
///
/// let mut plan = HardeningPlan::unhardened(&apps);
/// plan.set_by_flat_index(0, TaskHardening::active(
///     vec![mcmap_model::ProcId::new(1), mcmap_model::ProcId::new(2)],
///     mcmap_model::ProcId::new(0),
/// ));
/// let hsys = harden(&apps, &plan, &arch)?;
/// // a (3 copies) + voter + b = 5 tasks.
/// assert_eq!(hsys.num_tasks(), 5);
/// # Ok(())
/// # }
/// ```
pub fn harden(
    apps: &AppSet,
    plan: &HardeningPlan,
    arch: &Architecture,
) -> Result<HardenedSystem, HardenError> {
    if plan.len() != apps.num_tasks() {
        return Err(HardenError::PlanSizeMismatch {
            plan: plan.len(),
            tasks: apps.num_tasks(),
        });
    }

    let num_orig = apps.num_tasks();
    let mut tasks: Vec<HTask> = Vec::new();
    let mut channels: Vec<HChannel> = Vec::new();
    let mut copies: Vec<Vec<HTaskId>> = vec![Vec::new(); num_orig];
    let mut voters: Vec<Option<HTaskId>> = vec![None; num_orig];
    let mut happs: Vec<HApp> = Vec::with_capacity(apps.num_apps());

    // Pass 1: create tasks.
    for (app_id, app) in apps.apps() {
        let mut members = Vec::new();
        for (task_id, orig) in app.tasks() {
            let r = TaskRef::new(app_id, task_id);
            let flat = apps.flat_index(r);
            let h = plan.by_flat_index(flat);
            validate_entry(r, orig, h, arch)?;

            let k = h.reexecutions;
            let exec = nominal_exec_table(orig, k);

            // Primary copy.
            let primary = push_task(
                &mut tasks,
                HTask {
                    name: orig.name.clone(),
                    app: app_id,
                    origin: r,
                    role: Role::Primary,
                    reexec: k,
                    detect_overhead: orig.detect_overhead,
                    fixed_proc: None,
                    exec: exec.clone(),
                },
            );
            members.push(primary);
            copies[flat].push(primary);

            let (actives, standbys, voter_proc) = match &h.replication {
                Replication::None => (Vec::new(), Vec::new(), None),
                Replication::Active { replicas, voter } => {
                    (replicas.clone(), Vec::new(), Some(*voter))
                }
                Replication::Passive {
                    actives,
                    standbys,
                    voter,
                } => (actives.clone(), standbys.clone(), Some(*voter)),
            };

            for (i, &proc) in actives.iter().enumerate() {
                let id = push_task(
                    &mut tasks,
                    HTask {
                        name: format!("{}#active{}", orig.name, i),
                        app: app_id,
                        origin: r,
                        role: Role::ActiveReplica(i as u8),
                        reexec: k,
                        detect_overhead: orig.detect_overhead,
                        fixed_proc: Some(proc),
                        exec: exec.clone(),
                    },
                );
                members.push(id);
                copies[flat].push(id);
            }
            for (i, &proc) in standbys.iter().enumerate() {
                let id = push_task(
                    &mut tasks,
                    HTask {
                        name: format!("{}#passive{}", orig.name, i),
                        app: app_id,
                        origin: r,
                        role: Role::PassiveReplica(i as u8),
                        reexec: k,
                        detect_overhead: orig.detect_overhead,
                        fixed_proc: Some(proc),
                        exec: exec.clone(),
                    },
                );
                members.push(id);
                copies[flat].push(id);
            }
            if let Some(vp) = voter_proc {
                let ve = orig.voting_overhead;
                let voter_exec = vec![Some(ExecBounds::exact(ve)); arch.num_kinds().max(1)];
                let id = push_task(
                    &mut tasks,
                    HTask {
                        name: format!("{}#voter", orig.name),
                        app: app_id,
                        origin: r,
                        role: Role::Voter,
                        reexec: 0,
                        detect_overhead: Time::ZERO,
                        fixed_proc: Some(vp),
                        exec: voter_exec,
                    },
                );
                members.push(id);
                voters[flat] = Some(id);
            }
        }
        happs.push(HApp {
            app: app_id,
            name: app.name().to_string(),
            period: app.period(),
            deadline: app.deadline(),
            criticality: app.criticality(),
            members,
        });
    }

    // Pass 2: wire channels.
    for (app_id, app) in apps.apps() {
        // Voter fan-in per replicated task.
        for (task_id, orig) in app.tasks() {
            let flat = apps.flat_index(TaskRef::new(app_id, task_id));
            if let Some(voter) = voters[flat] {
                let vote_bytes = app
                    .out_channels(task_id)
                    .iter()
                    .map(|&c| app.channel(c).bytes)
                    .max()
                    .unwrap_or(0)
                    .max(1);
                let _ = orig;
                for &copy in &copies[flat] {
                    channels.push(HChannel {
                        src: copy,
                        dst: voter,
                        bytes: vote_bytes,
                    });
                }
            }
        }
        // Original data channels: producer endpoint is the voter (if
        // replicated) or the single copy; consumer endpoints are all copies.
        for (_, ch) in app.channels() {
            let src_flat = apps.flat_index(TaskRef::new(app_id, ch.src));
            let dst_flat = apps.flat_index(TaskRef::new(app_id, ch.dst));
            let producer = voters[src_flat].unwrap_or(copies[src_flat][0]);
            for &consumer in &copies[dst_flat] {
                channels.push(HChannel {
                    src: producer,
                    dst: consumer,
                    bytes: ch.bytes,
                });
            }
        }
    }

    // Derived adjacency.
    let n = tasks.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, c) in channels.iter().enumerate() {
        succs[c.src.index()].push(i);
        preds[c.dst.index()].push(i);
    }

    let topo = topological_order(n, &channels);
    debug_assert_eq!(topo.len(), n, "hardening must preserve acyclicity");

    Ok(HardenedSystem {
        apps: happs,
        tasks,
        channels,
        preds,
        succs,
        topo,
        copies,
        voters,
    })
}

fn push_task(tasks: &mut Vec<HTask>, t: HTask) -> HTaskId {
    let id = HTaskId::new(tasks.len());
    tasks.push(t);
    id
}

/// Nominal execution table of a copy: detection overhead is added to both
/// bounds when the task is re-execution hardened (detection runs on every
/// execution, faulty or not).
fn nominal_exec_table(orig: &Task, k: u8) -> Vec<Option<ExecBounds>> {
    let dt = if k > 0 {
        orig.detect_overhead
    } else {
        Time::ZERO
    };
    orig.supported_kinds().fold(Vec::new(), |mut table, kind| {
        if table.len() <= kind.index() {
            table.resize(kind.index() + 1, None);
        }
        let b = orig.exec_on(kind).expect("kind is supported");
        table[kind.index()] = Some(ExecBounds::new(b.bcet + dt, b.wcet + dt));
        table
    })
}

fn validate_entry(
    r: TaskRef,
    orig: &Task,
    h: &crate::TaskHardening,
    arch: &Architecture,
) -> Result<(), HardenError> {
    let check_copy_proc = |proc: ProcId| -> Result<(), HardenError> {
        if proc.index() >= arch.num_processors() {
            return Err(HardenError::UnknownProcessor { task: r, proc });
        }
        if !orig.runs_on(arch.processor(proc).kind) {
            return Err(HardenError::ReplicaKindMismatch { task: r, proc });
        }
        Ok(())
    };
    let check_voter_proc = |proc: ProcId| -> Result<(), HardenError> {
        if proc.index() >= arch.num_processors() {
            return Err(HardenError::UnknownProcessor { task: r, proc });
        }
        Ok(())
    };
    match &h.replication {
        Replication::None => Ok(()),
        Replication::Active { replicas, voter } => {
            if replicas.is_empty() {
                return Err(HardenError::TooFewReplicas { task: r });
            }
            for &p in replicas {
                check_copy_proc(p)?;
            }
            check_voter_proc(*voter)
        }
        Replication::Passive {
            actives,
            standbys,
            voter,
        } => {
            // Need at least two always-on copies (primary + 1) for the voter
            // to observe a mismatch, and at least one standby to break ties.
            if actives.is_empty() || standbys.is_empty() {
                return Err(HardenError::MalformedPassive { task: r });
            }
            for &p in actives.iter().chain(standbys) {
                check_copy_proc(p)?;
            }
            check_voter_proc(*voter)
        }
    }
}

fn topological_order(n: usize, channels: &[HChannel]) -> Vec<HTaskId> {
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in channels {
        indeg[c.dst.index()] += 1;
        adj[c.src.index()].push(c.dst.index());
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop() {
        order.push(HTaskId::new(u));
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskHardening;
    use mcmap_model::{ProcKind, Processor, TaskGraph, TaskId};

    fn arch(n: usize) -> Architecture {
        Architecture::builder()
            .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap()
    }

    fn producer_consumer() -> AppSet {
        let g = TaskGraph::builder("pc", Time::from_ticks(100))
            .task(
                Task::new("v0")
                    .with_uniform_exec(
                        1,
                        ExecBounds::new(Time::from_ticks(4), Time::from_ticks(10)),
                    )
                    .with_voting_overhead(Time::from_ticks(2))
                    .with_detect_overhead(Time::from_ticks(1)),
            )
            .task(
                Task::new("v1")
                    .with_uniform_exec(
                        1,
                        ExecBounds::new(Time::from_ticks(6), Time::from_ticks(12)),
                    )
                    .with_detect_overhead(Time::from_ticks(1)),
            )
            .channel(0, 1, 32)
            .build()
            .unwrap();
        AppSet::new(vec![g]).unwrap()
    }

    #[test]
    fn unhardened_transform_is_isomorphic() {
        let apps = producer_consumer();
        let plan = HardeningPlan::unhardened(&apps);
        let h = harden(&apps, &plan, &arch(2)).unwrap();
        assert_eq!(h.num_tasks(), 2);
        assert_eq!(h.num_channels(), 1);
        assert_eq!(h.task(HTaskId::new(0)).role, Role::Primary);
        // Bounds unchanged (no dt folded in without re-execution).
        assert_eq!(
            h.task(HTaskId::new(0)).nominal_bounds(ProcKind::new(0)),
            Some(ExecBounds::new(Time::from_ticks(4), Time::from_ticks(10)))
        );
    }

    #[test]
    fn reexecution_folds_detection_overhead() {
        let apps = producer_consumer();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(1, TaskHardening::reexecution(1));
        let h = harden(&apps, &plan, &arch(2)).unwrap();
        let v1 = h
            .tasks()
            .find(|(_, t)| t.name == "v1")
            .map(|(id, _)| id)
            .unwrap();
        let b = h.task(v1).nominal_bounds(ProcKind::new(0)).unwrap();
        // bcet+dt = 7, wcet+dt = 13.
        assert_eq!(
            b,
            ExecBounds::new(Time::from_ticks(7), Time::from_ticks(13))
        );
        // Eq. (1): (12+1)*(1+1) = 26.
        assert_eq!(
            h.task(v1).critical_wcet(ProcKind::new(0)),
            Some(Time::from_ticks(26))
        );
        assert!(h.task(v1).is_trigger());
    }

    #[test]
    fn active_replication_matches_figure_2a() {
        // v0 actively triplicated as in Fig. 2(a).
        let apps = producer_consumer();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::active(vec![ProcId::new(1), ProcId::new(2)], ProcId::new(0)),
        );
        let h = harden(&apps, &plan, &arch(3)).unwrap();
        // 3 copies of v0 + voter + v1.
        assert_eq!(h.num_tasks(), 5);
        assert_eq!(h.copies_of(0).len(), 3);
        let voter = h.voter_of(0).unwrap();
        assert!(h.task(voter).role.is_voter());
        assert_eq!(h.task(voter).fixed_proc, Some(ProcId::new(0)));
        // Voter wcet = voting overhead.
        assert_eq!(
            h.task(voter).nominal_bounds(ProcKind::new(0)),
            Some(ExecBounds::exact(Time::from_ticks(2)))
        );
        // Channels: 3 copy→voter + 1 voter→v1 = 4.
        assert_eq!(h.num_channels(), 4);
        // v1's only predecessor is the voter.
        let v1 = h.tasks().find(|(_, t)| t.name == "v1").unwrap().0;
        assert_eq!(h.predecessors(v1).collect::<Vec<_>>(), vec![voter]);
        // Replicas have fixed placements, the primary does not.
        let roles: Vec<_> = h
            .copies_of(0)
            .iter()
            .map(|&c| h.task(c).fixed_proc)
            .collect();
        assert_eq!(
            roles,
            vec![None, Some(ProcId::new(1)), Some(ProcId::new(2))]
        );
    }

    #[test]
    fn passive_replication_marks_standbys() {
        // Fig. 2(b): two always-on copies plus one standby.
        let apps = producer_consumer();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::passive(vec![ProcId::new(1)], vec![ProcId::new(2)], ProcId::new(0)),
        );
        let h = harden(&apps, &plan, &arch(3)).unwrap();
        assert_eq!(h.copies_of(0).len(), 3);
        let passive: Vec<_> = h
            .tasks()
            .filter(|(_, t)| t.is_passive())
            .map(|(id, _)| id)
            .collect();
        assert_eq!(passive.len(), 1);
        assert!(h.task(passive[0]).is_trigger());
        // The standby feeds the voter like any copy.
        let voter = h.voter_of(0).unwrap();
        assert!(h.successors(passive[0]).any(|s| s == voter));
    }

    #[test]
    fn replicated_consumer_fans_in_to_all_copies() {
        let apps = producer_consumer();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            1,
            TaskHardening::active(vec![ProcId::new(1)], ProcId::new(0)),
        );
        let h = harden(&apps, &plan, &arch(2)).unwrap();
        // v0 + 2 copies of v1 + voter = 4 tasks.
        assert_eq!(h.num_tasks(), 4);
        let v0 = h.tasks().find(|(_, t)| t.name == "v0").unwrap().0;
        // v0 sends to both copies of v1.
        assert_eq!(h.successors(v0).count(), 2);
    }

    #[test]
    fn topological_order_is_complete_and_consistent() {
        let apps = producer_consumer();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::active(vec![ProcId::new(1)], ProcId::new(0)),
        );
        plan.set_by_flat_index(1, TaskHardening::reexecution(2));
        let h = harden(&apps, &plan, &arch(2)).unwrap();
        let topo = h.topological_order();
        assert_eq!(topo.len(), h.num_tasks());
        let pos = |id: HTaskId| topo.iter().position(|&t| t == id).unwrap();
        for c in h.channels() {
            assert!(pos(c.src) < pos(c.dst));
        }
    }

    #[test]
    fn plan_size_mismatch_rejected() {
        let apps = producer_consumer();
        let other = {
            let g = TaskGraph::builder("x", Time::from_ticks(10))
                .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1))))
                .build()
                .unwrap();
            AppSet::new(vec![g]).unwrap()
        };
        let plan = HardeningPlan::unhardened(&other);
        assert!(matches!(
            harden(&apps, &plan, &arch(2)),
            Err(HardenError::PlanSizeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_processor_rejected() {
        let apps = producer_consumer();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::active(vec![ProcId::new(9)], ProcId::new(0)),
        );
        assert!(matches!(
            harden(&apps, &plan, &arch(2)),
            Err(HardenError::UnknownProcessor { .. })
        ));
    }

    #[test]
    fn kind_mismatch_rejected() {
        // Task only runs on kind 0; processor 1 is kind 1.
        let arch = Architecture::builder()
            .processor(Processor::new("a", ProcKind::new(0), 5.0, 20.0, 0.0))
            .processor(Processor::new("b", ProcKind::new(1), 5.0, 20.0, 0.0))
            .build()
            .unwrap();
        let apps = producer_consumer();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::active(vec![ProcId::new(1)], ProcId::new(0)),
        );
        assert!(matches!(
            harden(&apps, &plan, &arch),
            Err(HardenError::ReplicaKindMismatch { .. })
        ));
    }

    #[test]
    fn empty_replica_lists_rejected() {
        let apps = producer_consumer();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::active(vec![], ProcId::new(0)));
        assert!(matches!(
            harden(&apps, &plan, &arch(2)),
            Err(HardenError::TooFewReplicas { .. })
        ));

        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::passive(vec![ProcId::new(1)], vec![], ProcId::new(0)),
        );
        assert!(matches!(
            harden(&apps, &plan, &arch(2)),
            Err(HardenError::MalformedPassive { .. })
        ));
    }

    #[test]
    fn app_metadata_carried_over() {
        let apps = producer_consumer();
        let plan = HardeningPlan::unhardened(&apps);
        let h = harden(&apps, &plan, &arch(2)).unwrap();
        let happ = &h.apps()[0];
        assert_eq!(happ.name, "pc");
        assert_eq!(happ.period, Time::from_ticks(100));
        assert_eq!(happ.members.len(), 2);
        assert_eq!(h.app_of(HTaskId::new(1)).name, "pc");
    }

    #[test]
    fn vote_bytes_default_to_one_for_sinks() {
        // Replicate the sink task v1: its voter fan-in carries 1 byte.
        let apps = producer_consumer();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            1,
            TaskHardening::active(vec![ProcId::new(1)], ProcId::new(0)),
        );
        let h = harden(&apps, &plan, &arch(2)).unwrap();
        let voter = h.voter_of(1).unwrap();
        for c in h.in_channels(voter) {
            assert_eq!(c.bytes, 1);
        }
    }

    #[test]
    fn origin_tracks_original_task() {
        let apps = producer_consumer();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::active(vec![ProcId::new(1)], ProcId::new(0)),
        );
        let h = harden(&apps, &plan, &arch(2)).unwrap();
        let origin = TaskRef::new(mcmap_model::AppId::new(0), TaskId::new(0));
        for &c in h.copies_of(0) {
            assert_eq!(h.task(c).origin, origin);
        }
        assert_eq!(h.task(h.voter_of(0).unwrap()).origin, origin);
        assert_eq!(h.num_original_tasks(), 2);
    }
}
