//! Hardening decisions: which technique protects which task.
//!
//! The paper (§2.2) considers three transient-fault hardening techniques:
//!
//! * **re-execution** — detect at end of execution, roll back, run again (up
//!   to `k` extra times); inflates the WCET per Eq. (1);
//! * **active replication** — `n ≥ 2` copies always execute on different
//!   processors and a voter selects the majority value;
//! * **passive replication** — some copies are standbys that execute only
//!   when the voter observes a mismatch among the active copies.
//!
//! A [`HardeningPlan`] assigns one [`TaskHardening`] to every task of an
//! [`AppSet`], including the placement of replicas and the voter (these are
//! part of the genome in the paper's Fig. 4).

use core::fmt;
use mcmap_model::{AppSet, ProcId, TaskRef};

/// Replication decision for one task.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Replication {
    /// The task runs as a single copy.
    #[default]
    None,
    /// Active replication: the primary copy plus `replicas` always execute;
    /// a voter on `voter` performs majority voting over all copies.
    Active {
        /// Processors hosting the additional always-on copies (the primary's
        /// processor comes from the mapping).
        replicas: Vec<ProcId>,
        /// Processor hosting the voter task.
        voter: ProcId,
    },
    /// Passive replication: the primary plus `actives` always execute;
    /// `standbys` are instantiated only when the voter detects a mismatch.
    Passive {
        /// Processors hosting the additional always-on copies.
        actives: Vec<ProcId>,
        /// Processors hosting the on-demand standby copies.
        standbys: Vec<ProcId>,
        /// Processor hosting the voter task.
        voter: ProcId,
    },
}

impl Replication {
    /// Returns `true` if the task is replicated at all.
    pub fn is_replicated(&self) -> bool {
        !matches!(self, Replication::None)
    }

    /// Total number of copies that always execute (primary included).
    pub fn active_copies(&self) -> usize {
        match self {
            Replication::None => 1,
            Replication::Active { replicas, .. } => 1 + replicas.len(),
            Replication::Passive { actives, .. } => 1 + actives.len(),
        }
    }

    /// Number of on-demand standby copies.
    pub fn standby_copies(&self) -> usize {
        match self {
            Replication::Passive { standbys, .. } => standbys.len(),
            _ => 0,
        }
    }

    /// The voter placement, if the task is replicated.
    pub fn voter(&self) -> Option<ProcId> {
        match self {
            Replication::None => None,
            Replication::Active { voter, .. } | Replication::Passive { voter, .. } => Some(*voter),
        }
    }
}

/// The complete hardening decision for one task.
///
/// # Examples
///
/// ```
/// use mcmap_hardening::{Replication, TaskHardening};
/// use mcmap_model::ProcId;
///
/// // Task re-executed at most twice, no replication.
/// let h = TaskHardening::reexecution(2);
/// assert_eq!(h.reexecutions, 2);
/// assert!(!h.replication.is_replicated());
///
/// // Task triplicated with a voter on p0.
/// let h = TaskHardening::active(vec![ProcId::new(1), ProcId::new(2)], ProcId::new(0));
/// assert_eq!(h.replication.active_copies(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskHardening {
    /// Maximum number of re-executions `k` (0 = not re-execution hardened).
    pub reexecutions: u8,
    /// Replication decision.
    pub replication: Replication,
}

impl TaskHardening {
    /// No hardening at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Re-execution with up to `k` retries.
    pub fn reexecution(k: u8) -> Self {
        TaskHardening {
            reexecutions: k,
            replication: Replication::None,
        }
    }

    /// Active replication with the given extra copies and voter placement.
    pub fn active(replicas: Vec<ProcId>, voter: ProcId) -> Self {
        TaskHardening {
            reexecutions: 0,
            replication: Replication::Active { replicas, voter },
        }
    }

    /// Passive replication: `actives` extra always-on copies, `standbys`
    /// on-demand copies, and the voter placement.
    pub fn passive(actives: Vec<ProcId>, standbys: Vec<ProcId>, voter: ProcId) -> Self {
        TaskHardening {
            reexecutions: 0,
            replication: Replication::Passive {
                actives,
                standbys,
                voter,
            },
        }
    }

    /// Returns `true` if any hardening is applied.
    pub fn is_hardened(&self) -> bool {
        self.reexecutions > 0 || self.replication.is_replicated()
    }
}

/// A hardening decision for every task of an application set.
///
/// Indexed by the flat task enumeration of the owning [`AppSet`]
/// (see [`AppSet::task_refs`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HardeningPlan {
    entries: Vec<TaskHardening>,
}

impl HardeningPlan {
    /// A plan that hardens nothing.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mcmap_model::{AppSet, ExecBounds, Task, TaskGraph, Time};
    /// use mcmap_hardening::HardeningPlan;
    /// # fn main() -> Result<(), mcmap_model::ModelError> {
    /// # let g = TaskGraph::builder("g", Time::from_ticks(10))
    /// #     .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1))))
    /// #     .build()?;
    /// # let apps = AppSet::new(vec![g])?;
    /// let plan = HardeningPlan::unhardened(&apps);
    /// assert!(!plan.iter().any(|(_, h)| h.is_hardened()));
    /// # Ok(())
    /// # }
    /// ```
    pub fn unhardened(apps: &AppSet) -> Self {
        HardeningPlan {
            entries: vec![TaskHardening::none(); apps.num_tasks()],
        }
    }

    /// Builds a plan directly from per-task entries (flat-index order).
    pub fn from_entries(entries: Vec<TaskHardening>) -> Self {
        HardeningPlan { entries }
    }

    /// Number of entries (one per task in the set).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the plan covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The hardening of one task by flat index.
    ///
    /// # Panics
    ///
    /// Panics if `flat_index` is out of range.
    pub fn by_flat_index(&self, flat_index: usize) -> &TaskHardening {
        &self.entries[flat_index]
    }

    /// Sets the hardening of one task by flat index.
    ///
    /// # Panics
    ///
    /// Panics if `flat_index` is out of range.
    pub fn set_by_flat_index(&mut self, flat_index: usize, h: TaskHardening) {
        self.entries[flat_index] = h;
    }

    /// The hardening of a task identified by reference.
    pub fn get(&self, apps: &AppSet, r: TaskRef) -> &TaskHardening {
        &self.entries[apps.flat_index(r)]
    }

    /// Sets the hardening of a task identified by reference.
    pub fn set(&mut self, apps: &AppSet, r: TaskRef, h: TaskHardening) {
        let i = apps.flat_index(r);
        self.entries[i] = h;
    }

    /// Iterates over `(flat index, &TaskHardening)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &TaskHardening)> {
        self.entries.iter().enumerate()
    }

    /// Counts entries using each technique class: `(re-execution only,
    /// replication involved, unhardened)`. Used for the §5.2 hardening-mix
    /// statistics.
    pub fn technique_histogram(&self) -> TechniqueHistogram {
        let mut h = TechniqueHistogram::default();
        for e in &self.entries {
            match (&e.replication, e.reexecutions) {
                (Replication::None, 0) => h.unhardened += 1,
                (Replication::None, _) => h.reexecution += 1,
                (Replication::Active { .. }, _) => h.active += 1,
                (Replication::Passive { .. }, _) => h.passive += 1,
            }
        }
        h
    }
}

/// Counts of hardening techniques applied across a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TechniqueHistogram {
    /// Tasks with no hardening.
    pub unhardened: usize,
    /// Tasks hardened by re-execution only.
    pub reexecution: usize,
    /// Tasks using active replication (possibly combined with re-execution).
    pub active: usize,
    /// Tasks using passive replication (possibly combined with re-execution).
    pub passive: usize,
}

impl TechniqueHistogram {
    /// Total number of hardened tasks.
    pub fn hardened_total(&self) -> usize {
        self.reexecution + self.active + self.passive
    }

    /// Fraction of *hardened* tasks whose technique is re-execution, the
    /// statistic the paper reports in §5.2 (e.g. 87.03 % for DT-med).
    pub fn reexecution_share(&self) -> f64 {
        let total = self.hardened_total();
        if total == 0 {
            0.0
        } else {
            self.reexecution as f64 / total as f64
        }
    }
}

impl fmt::Display for TechniqueHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reexec={} active={} passive={} unhardened={}",
            self.reexecution, self.active, self.passive, self.unhardened
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_model::{AppSet, ExecBounds, Task, TaskGraph, TaskId, Time};

    fn two_task_set() -> AppSet {
        let g = TaskGraph::builder("g", Time::from_ticks(10))
            .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1))))
            .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1))))
            .build()
            .unwrap();
        AppSet::new(vec![g]).unwrap()
    }

    #[test]
    fn replication_copy_counts() {
        assert_eq!(Replication::None.active_copies(), 1);
        assert_eq!(Replication::None.standby_copies(), 0);
        let act = Replication::Active {
            replicas: vec![ProcId::new(1), ProcId::new(2)],
            voter: ProcId::new(0),
        };
        assert_eq!(act.active_copies(), 3);
        let pas = Replication::Passive {
            actives: vec![ProcId::new(1)],
            standbys: vec![ProcId::new(2)],
            voter: ProcId::new(0),
        };
        assert_eq!(pas.active_copies(), 2);
        assert_eq!(pas.standby_copies(), 1);
        assert_eq!(pas.voter(), Some(ProcId::new(0)));
        assert_eq!(Replication::None.voter(), None);
    }

    #[test]
    fn hardening_constructors() {
        assert!(!TaskHardening::none().is_hardened());
        assert!(TaskHardening::reexecution(1).is_hardened());
        assert!(TaskHardening::active(vec![ProcId::new(1)], ProcId::new(0)).is_hardened());
        assert!(
            TaskHardening::passive(vec![ProcId::new(1)], vec![ProcId::new(2)], ProcId::new(0))
                .is_hardened()
        );
        assert!(!TaskHardening::reexecution(0).is_hardened());
    }

    #[test]
    fn plan_get_set_round_trip() {
        let apps = two_task_set();
        let mut plan = HardeningPlan::unhardened(&apps);
        let r = mcmap_model::TaskRef::new(mcmap_model::AppId::new(0), TaskId::new(1));
        plan.set(&apps, r, TaskHardening::reexecution(3));
        assert_eq!(plan.get(&apps, r).reexecutions, 3);
        assert_eq!(plan.by_flat_index(0).reexecutions, 0);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn histogram_classifies_techniques() {
        let apps = two_task_set();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        plan.set_by_flat_index(
            1,
            TaskHardening::active(vec![ProcId::new(1)], ProcId::new(0)),
        );
        let h = plan.technique_histogram();
        assert_eq!(h.reexecution, 1);
        assert_eq!(h.active, 1);
        assert_eq!(h.unhardened, 0);
        assert_eq!(h.hardened_total(), 2);
        assert!((h.reexecution_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_share_with_no_hardening_is_zero() {
        let apps = two_task_set();
        let plan = HardeningPlan::unhardened(&apps);
        assert_eq!(plan.technique_histogram().reexecution_share(), 0.0);
    }
}
