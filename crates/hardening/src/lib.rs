//! # mcmap-hardening
//!
//! Fault-tolerance hardening for mixed-criticality MPSoC applications,
//! implementing §2.2 of *Kang et al., DAC 2014*:
//!
//! * **re-execution** — roll back and retry up to `k` times; the critical
//!   WCET follows Eq. (1), `wcet' = (wcet + dt) · (k + 1)`;
//! * **active replication** — always-on copies on distinct processors with a
//!   majority voter;
//! * **passive replication** — standby copies invoked by the voter only on a
//!   mismatch.
//!
//! A [`HardeningPlan`] assigns a [`TaskHardening`] to every task; [`harden`]
//! rewrites the application set into a [`HardenedSystem`] (copies, voters,
//! fan-in/fan-out channels, inflated bounds) that the scheduling analysis
//! and simulator consume. [`Reliability`] quantifies the failure probability
//! of each application under the plan and checks the `f_t` bounds.
//!
//! # Examples
//!
//! ```
//! use mcmap_hardening::{harden, HardeningPlan, Reliability, TaskHardening};
//! use mcmap_hardening::placement_with_default;
//! use mcmap_model::{
//!     AppId, AppSet, Architecture, Criticality, ExecBounds, ProcId, ProcKind, Processor,
//!     Task, TaskGraph, Time,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = Architecture::builder()
//!     .homogeneous(3, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-6))
//!     .build()?;
//! let g = TaskGraph::builder("ctrl", Time::from_ticks(1_000))
//!     .criticality(Criticality::NonDroppable { max_failure_rate: 1e-6 })
//!     .task(Task::new("law").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(100))))
//!     .build()?;
//! let apps = AppSet::new(vec![g])?;
//!
//! // Unhardened, the control law misses its reliability bound…
//! let bare = harden(&apps, &HardeningPlan::unhardened(&apps), &arch)?;
//! let placement = placement_with_default(&bare, ProcId::new(0));
//! assert!(!Reliability::new(&bare, &arch).all_satisfied(&placement));
//!
//! // …triplication fixes it.
//! let mut plan = HardeningPlan::unhardened(&apps);
//! plan.set_by_flat_index(0, TaskHardening::active(
//!     vec![ProcId::new(1), ProcId::new(2)], ProcId::new(0)));
//! let tripled = harden(&apps, &plan, &arch)?;
//! let placement = placement_with_default(&tripled, ProcId::new(0));
//! assert!(Reliability::new(&tripled, &arch).all_satisfied(&placement));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dot;
mod htask;
mod reliability;
mod spec;
mod transform;

pub use dot::hardened_to_dot;
pub use htask::{HApp, HChannel, HTask, HTaskId, Role};
pub use reliability::{
    majority_failure_prob, placement_respects_fixed, placement_with_default, Reliability,
    ReliabilityVerdict,
};
pub use spec::{HardeningPlan, Replication, TaskHardening, TechniqueHistogram};
pub use transform::{harden, HardenError, HardenedSystem};
