//! GraphViz DOT export of hardened systems.

use crate::{HardenedSystem, Role};
use core::fmt::Write;

/// Renders the hardened system `T'` as a GraphViz digraph: replicas are
/// shaded, standbys dashed, voters drawn as diamonds.
///
/// # Examples
///
/// ```
/// # use mcmap_hardening::{harden, HardeningPlan};
/// # use mcmap_model::{AppSet, Architecture, ExecBounds, ProcKind, Processor, Task,
/// #     TaskGraph, Time};
/// use mcmap_hardening::hardened_to_dot;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let arch = Architecture::builder()
/// #     .homogeneous(1, Processor::new("p", ProcKind::new(0), 1.0, 1.0, 0.0))
/// #     .build()?;
/// # let g = TaskGraph::builder("g", Time::from_ticks(10))
/// #     .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1))))
/// #     .build()?;
/// # let apps = AppSet::new(vec![g])?;
/// # let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch)?;
/// let dot = hardened_to_dot(&hsys);
/// assert!(dot.starts_with("digraph"));
/// # Ok(())
/// # }
/// ```
pub fn hardened_to_dot(hsys: &HardenedSystem) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph hardened {{");
    for (id, t) in hsys.tasks() {
        let (shape, style) = match t.role {
            Role::Primary => ("box", "solid"),
            Role::ActiveReplica(_) => ("box", "filled"),
            Role::PassiveReplica(_) => ("box", "dashed"),
            Role::Voter => ("diamond", "solid"),
        };
        let annot = if t.reexec > 0 {
            format!("\\nk={}", t.reexec)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  \"{id}\" [label=\"{}{annot}\", shape={shape}, style={style}];",
            t.name
        );
    }
    for c in hsys.channels() {
        let _ = writeln!(out, "  \"{}\" -> \"{}\";", c.src, c.dst);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{
        AppSet, Architecture, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph, Time,
    };

    #[test]
    fn replicated_system_renders_all_roles() {
        let arch = Architecture::builder()
            .homogeneous(3, Processor::new("p", ProcKind::new(0), 1.0, 1.0, 1e-7))
            .build()
            .unwrap();
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(
                Task::new("a")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5)))
                    .with_voting_overhead(Time::from_ticks(1)),
            )
            .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .channel(0, 1, 8)
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::passive(vec![ProcId::new(1)], vec![ProcId::new(2)], ProcId::new(0)),
        );
        plan.set_by_flat_index(1, TaskHardening::reexecution(2));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let dot = hardened_to_dot(&hsys);
        assert!(dot.contains("shape=diamond")); // voter
        assert!(dot.contains("style=filled")); // active replica
        assert!(dot.contains("style=dashed")); // standby
        assert!(dot.contains("k=2")); // re-execution annotation
        assert_eq!(dot.matches("->").count(), hsys.num_channels());
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
