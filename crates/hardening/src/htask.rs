//! The hardened system: the transformed application set `T'`.
//!
//! Hardening rewrites task graphs (replication adds copies and voters,
//! re-execution inflates execution bounds), so hardened tasks live in their
//! own index space ([`HTaskId`]) flat across the whole system. Every hardened
//! task records its provenance ([`HTask::origin`], [`Role`]) so results can
//! be reported against the original model.

use core::fmt;
use mcmap_model::{AppId, Criticality, ExecBounds, ProcId, ProcKind, TaskRef, Time};

/// Index of a task in a [`HardenedSystem`](crate::HardenedSystem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HTaskId(usize);

impl HTaskId {
    /// Creates an id from a dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        HTaskId(index)
    }

    /// The dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for HTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<usize> for HTaskId {
    fn from(i: usize) -> Self {
        HTaskId(i)
    }
}

/// The role a hardened task plays relative to its original task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The original copy of the task (mapped by the free mapping).
    Primary,
    /// The `i`-th always-executing replica (placement fixed by the plan).
    ActiveReplica(u8),
    /// The `i`-th on-demand standby replica (placement fixed by the plan);
    /// executes only when the voter observes a mismatch.
    PassiveReplica(u8),
    /// The majority voter collecting the copies' results (placement fixed by
    /// the plan).
    Voter,
}

impl Role {
    /// Returns `true` for [`Role::PassiveReplica`].
    pub fn is_passive(&self) -> bool {
        matches!(self, Role::PassiveReplica(_))
    }

    /// Returns `true` for [`Role::Voter`].
    pub fn is_voter(&self) -> bool {
        matches!(self, Role::Voter)
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Primary => write!(f, "primary"),
            Role::ActiveReplica(i) => write!(f, "active[{i}]"),
            Role::PassiveReplica(i) => write!(f, "passive[{i}]"),
            Role::Voter => write!(f, "voter"),
        }
    }
}

/// A task of the hardened system.
#[derive(Debug, Clone, PartialEq)]
pub struct HTask {
    /// Derived name, e.g. `"fft#active1"`.
    pub name: String,
    /// The application this task belongs to.
    pub app: AppId,
    /// The original task this hardened task derives from (for a voter, the
    /// replicated task it votes for).
    pub origin: TaskRef,
    /// Role relative to the original task.
    pub role: Role,
    /// Maximum number of re-executions `k` (Eq. 1); 0 for voters.
    pub reexec: u8,
    /// Detection overhead `dt` of the original task (already folded into the
    /// nominal bounds when `reexec > 0`, kept for reporting).
    pub detect_overhead: Time,
    /// Placement fixed by the hardening plan (replicas, voters); `None` for
    /// primaries, whose placement is a free mapping decision.
    pub fixed_proc: Option<ProcId>,
    /// Nominal execution bounds per processor kind (detection overhead
    /// included when re-execution hardened; `[ve, ve]` for voters).
    pub(crate) exec: Vec<Option<ExecBounds>>,
}

impl HTask {
    /// Nominal (fault-free) execution bounds on a processor kind, or `None`
    /// if the task cannot run on that kind. For a re-execution-hardened task
    /// this is `[bcet + dt, wcet + dt]` — detection runs on every execution.
    pub fn nominal_bounds(&self, kind: ProcKind) -> Option<ExecBounds> {
        self.exec.get(kind.index()).copied().flatten()
    }

    /// Worst-case execution time in the critical state on a processor kind:
    /// Eq. (1), `wcet' = (wcet + dt) · (k + 1)`. Equals the nominal WCET when
    /// the task is not re-execution hardened.
    pub fn critical_wcet(&self, kind: ProcKind) -> Option<Time> {
        self.nominal_bounds(kind)
            .map(|b| b.wcet.saturating_mul(self.reexec as u64 + 1))
    }

    /// Returns `true` if the task can run on `kind`.
    pub fn runs_on(&self, kind: ProcKind) -> bool {
        self.nominal_bounds(kind).is_some()
    }

    /// Kinds this task can execute on.
    pub fn supported_kinds(&self) -> impl Iterator<Item = ProcKind> + '_ {
        self.exec
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_some())
            .map(|(i, _)| ProcKind::new(i as u16))
    }

    /// Returns `true` for passive replicas.
    pub fn is_passive(&self) -> bool {
        self.role.is_passive()
    }

    /// Returns `true` if this task can trigger a transition to the critical
    /// system state: it is re-execution hardened (a fault extends its
    /// execution) or it is a passive replica (its very invocation signals a
    /// fault) — Algorithm 1, line 10.
    pub fn is_trigger(&self) -> bool {
        self.reexec > 0 || self.is_passive()
    }
}

/// A data-dependency channel of the hardened system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HChannel {
    /// Producing hardened task.
    pub src: HTaskId,
    /// Consuming hardened task.
    pub dst: HTaskId,
    /// Message size in bytes.
    pub bytes: u64,
}

/// Per-application metadata carried over into the hardened system.
#[derive(Debug, Clone, PartialEq)]
pub struct HApp {
    /// The original application id.
    pub app: AppId,
    /// The application name.
    pub name: String,
    /// Invocation period.
    pub period: Time,
    /// Relative deadline (≤ period).
    pub deadline: Time,
    /// Criticality annotation (copied from the model).
    pub criticality: Criticality,
    /// Hardened tasks belonging to this application.
    pub members: Vec<HTaskId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_model::TaskId;

    fn htask(reexec: u8, role: Role, bounds: ExecBounds) -> HTask {
        HTask {
            name: "t".into(),
            app: AppId::new(0),
            origin: TaskRef::new(AppId::new(0), TaskId::new(0)),
            role,
            reexec,
            detect_overhead: Time::from_ticks(2),
            fixed_proc: None,
            exec: vec![Some(bounds)],
        }
    }

    #[test]
    fn critical_wcet_applies_equation_one() {
        // Nominal bounds already include dt: wcet + dt = 12.
        let t = htask(
            2,
            Role::Primary,
            ExecBounds::new(Time::from_ticks(5), Time::from_ticks(12)),
        );
        // (wcet + dt) * (k + 1) = 12 * 3 = 36.
        assert_eq!(
            t.critical_wcet(ProcKind::new(0)),
            Some(Time::from_ticks(36))
        );
    }

    #[test]
    fn critical_wcet_without_reexecution_is_nominal() {
        let t = htask(
            0,
            Role::Primary,
            ExecBounds::new(Time::from_ticks(5), Time::from_ticks(12)),
        );
        assert_eq!(
            t.critical_wcet(ProcKind::new(0)),
            Some(Time::from_ticks(12))
        );
    }

    #[test]
    fn unsupported_kind_yields_none() {
        let t = htask(0, Role::Primary, ExecBounds::exact(Time::from_ticks(1)));
        assert_eq!(t.nominal_bounds(ProcKind::new(5)), None);
        assert_eq!(t.critical_wcet(ProcKind::new(5)), None);
        assert!(!t.runs_on(ProcKind::new(5)));
        assert!(t.runs_on(ProcKind::new(0)));
    }

    #[test]
    fn trigger_classification() {
        assert!(htask(1, Role::Primary, ExecBounds::ZERO).is_trigger());
        assert!(htask(0, Role::PassiveReplica(0), ExecBounds::ZERO).is_trigger());
        assert!(!htask(0, Role::Primary, ExecBounds::ZERO).is_trigger());
        assert!(!htask(0, Role::ActiveReplica(0), ExecBounds::ZERO).is_trigger());
        assert!(!htask(0, Role::Voter, ExecBounds::ZERO).is_trigger());
    }

    #[test]
    fn role_display_and_predicates() {
        assert_eq!(Role::Primary.to_string(), "primary");
        assert_eq!(Role::ActiveReplica(1).to_string(), "active[1]");
        assert_eq!(Role::PassiveReplica(0).to_string(), "passive[0]");
        assert_eq!(Role::Voter.to_string(), "voter");
        assert!(Role::PassiveReplica(0).is_passive());
        assert!(Role::Voter.is_voter());
        assert!(!Role::Primary.is_passive());
    }

    #[test]
    fn htask_id_round_trip() {
        let id = HTaskId::new(9);
        assert_eq!(id.index(), 9);
        assert_eq!(id.to_string(), "h9");
        assert_eq!(HTaskId::from(9usize), id);
    }
}
