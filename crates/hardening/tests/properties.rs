//! Property-based tests for the hardening transform and reliability math.

use mcmap_hardening::{
    harden, majority_failure_prob, placement_with_default, HardeningPlan, Reliability, Role,
    TaskHardening,
};
use mcmap_model::{
    AppSet, Architecture, Criticality, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph,
    Time,
};
use proptest::prelude::*;

fn arch(n: usize, rate: f64) -> Architecture {
    Architecture::builder()
        .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, rate))
        .build()
        .expect("valid")
}

/// A random chain application set with `n` tasks.
fn chain_apps(n: usize, wcets: &[u64]) -> AppSet {
    let mut b = TaskGraph::builder("g", Time::from_ticks(1_000_000)).criticality(
        Criticality::NonDroppable {
            max_failure_rate: 0.9,
        },
    );
    for (i, &w) in wcets.iter().take(n).enumerate() {
        b = b.task(
            Task::new(format!("t{i}"))
                .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(w.max(1))))
                .with_voting_overhead(Time::from_ticks(2))
                .with_detect_overhead(Time::from_ticks(1)),
        );
    }
    for i in 1..n {
        b = b.channel(i - 1, i, 8);
    }
    AppSet::new(vec![b.build().expect("chains are valid")]).expect("nonempty")
}

/// A random hardening decision over a 4-processor platform.
fn hardening_strategy() -> impl Strategy<Value = TaskHardening> {
    prop_oneof![
        Just(TaskHardening::none()),
        (1u8..=3).prop_map(TaskHardening::reexecution),
        (prop::collection::vec(0usize..4, 1..3), 0usize..4).prop_map(|(reps, voter)| {
            TaskHardening::active(
                reps.into_iter().map(ProcId::new).collect(),
                ProcId::new(voter),
            )
        }),
        (0usize..4, 0usize..4, 0usize..4).prop_map(|(a, s, v)| TaskHardening::passive(
            vec![ProcId::new(a)],
            vec![ProcId::new(s)],
            ProcId::new(v)
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transform_preserves_structure(
        wcets in prop::collection::vec(1u64..500, 2..6),
        hards in prop::collection::vec(hardening_strategy(), 6),
    ) {
        let n = wcets.len();
        let apps = chain_apps(n, &wcets);
        let arch = arch(4, 1e-7);
        let mut plan = HardeningPlan::unhardened(&apps);
        for (i, h) in hards.iter().take(n).enumerate() {
            plan.set_by_flat_index(i, h.clone());
        }
        let hsys = harden(&apps, &plan, &arch).expect("all sampled plans are valid");

        // Task accounting: copies + voters.
        let mut expected = 0usize;
        for i in 0..n {
            let h = plan.by_flat_index(i);
            expected += h.replication.active_copies() + h.replication.standby_copies();
            if h.replication.is_replicated() {
                expected += 1; // voter
            }
        }
        prop_assert_eq!(hsys.num_tasks(), expected);

        // The rewrite preserves acyclicity (complete topological order).
        prop_assert_eq!(hsys.topological_order().len(), hsys.num_tasks());

        // Every copy of task i carries the original's origin; every voter
        // collects from every copy of its origin.
        for flat in 0..n {
            let copies = hsys.copies_of(flat);
            prop_assert!(!copies.is_empty());
            if let Some(voter) = hsys.voter_of(flat) {
                prop_assert_eq!(hsys.task(voter).role, Role::Voter);
                let mut feeders: Vec<_> = hsys.predecessors(voter).collect();
                feeders.sort();
                let mut expected: Vec<_> = copies.to_vec();
                expected.sort();
                prop_assert_eq!(feeders, expected);
            }
            // Eq. (1): critical wcet = nominal wcet × (k + 1).
            for &c in copies {
                let t = hsys.task(c);
                let b = t.nominal_bounds(ProcKind::new(0)).expect("kind 0");
                prop_assert_eq!(
                    t.critical_wcet(ProcKind::new(0)).expect("kind 0"),
                    b.wcet * (t.reexec as u64 + 1)
                );
                prop_assert!(b.bcet <= b.wcet);
            }
        }
    }

    #[test]
    fn majority_prob_is_a_probability_and_monotone(
        probs in prop::collection::vec(0.0f64..1.0, 1..7),
        bump in 0.0f64..1.0,
        idx in 0usize..7,
    ) {
        let p = majority_failure_prob(&probs);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        // Raising any copy's failure probability cannot lower the result.
        let mut worse = probs.clone();
        let i = idx % probs.len();
        worse[i] = (worse[i] + bump).min(1.0);
        let q = majority_failure_prob(&worse);
        prop_assert!(q >= p - 1e-12, "q={q} < p={p}");
    }

    #[test]
    fn hardening_never_hurts_reliability(
        wcet in 10u64..1_000,
        rate in 1e-9f64..1e-4,
        k in 1u8..3,
    ) {
        let apps = chain_apps(1, &[wcet]);
        let arch = arch(4, rate);
        let bare = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).expect("valid");
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(k));
        let hard = harden(&apps, &plan, &arch).expect("valid");

        let p_bare = Reliability::new(&bare, &arch).app_failure_prob(
            mcmap_model::AppId::new(0),
            &placement_with_default(&bare, ProcId::new(0)),
        );
        let p_hard = Reliability::new(&hard, &arch).app_failure_prob(
            mcmap_model::AppId::new(0),
            &placement_with_default(&hard, ProcId::new(0)),
        );
        prop_assert!(p_hard <= p_bare + 1e-15);
    }

    #[test]
    fn replication_beats_a_single_copy(
        wcet in 10u64..2_000,
        // Keep the per-copy failure probability ≪ 1/3 — beyond that, TMR
        // is mathematically worse than a single copy (3p² ≥ p).
        rate in 1e-9f64..5e-5,
    ) {
        let apps = chain_apps(1, &[wcet]);
        let arch = arch(4, rate);
        let failure_with = |replicas: Vec<usize>| {
            let mut plan = HardeningPlan::unhardened(&apps);
            if !replicas.is_empty() {
                plan.set_by_flat_index(
                    0,
                    TaskHardening::active(
                        replicas.into_iter().map(ProcId::new).collect(),
                        ProcId::new(0),
                    ),
                );
            }
            let h = harden(&apps, &plan, &arch).expect("valid");
            let place = placement_with_default(&h, ProcId::new(0));
            Reliability::new(&h, &arch).app_failure_prob(mcmap_model::AppId::new(0), &place)
        };
        let single = failure_with(vec![]);
        // Duplication detects (fail-stop, p²) and triplication masks
        // (≈ 3p²) — both beat the unprotected copy (p), and duplication
        // upper-bounds unsafe execution more tightly than TMR under the
        // detected-is-safe model.
        let dup = failure_with(vec![1]);
        let tri = failure_with(vec![1, 2]);
        prop_assert!(dup <= single + 1e-15);
        prop_assert!(tri <= single + 1e-15);
        prop_assert!(dup <= tri + 1e-15);
    }
}
