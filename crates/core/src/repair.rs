//! Randomized repair heuristics (§4 of the paper).
//!
//! Infeasible chromosomes are repaired before evaluation:
//!
//! * *invalid mapping* — tasks (or replicas/voters) bound to unallocated
//!   processors are reassigned to a randomly chosen valid processor;
//! * *reliability violation* — random hardening escalations (longer
//!   re-execution budgets, then replication) are applied to tasks of the
//!   violating application until the constraint is met or the iteration
//!   budget runs out.
//!
//! Remaining violations are penalized by the evaluation so the GA is guided
//! back towards feasible regions.

use crate::{GeneHardening, Genome, GenomeSpace};
use mcmap_hardening::{harden, placement_with_default, Reliability};
use mcmap_model::{AppId, AppSet, Architecture, ProcId};
use rand::seq::SliceRandom;
use rand::RngCore;

/// Repairs structural violations in place: guarantees at least one
/// allocated processor, and that every binding, replica, and voter sits on
/// an allocated, kind-compatible processor (allocating one if necessary).
pub fn repair_structure(g: &mut Genome, space: &GenomeSpace, rng: &mut dyn RngCore) {
    let _ = repair_structure_logged(g, space, rng);
}

/// [`repair_structure`] that also reports *what* it fixed, as the sorted,
/// deduplicated `mcmap-lint` diagnostic codes of the violations it repaired:
/// `MC0111` (no allocated processor), `MC0110` (invalid binding or replica
/// placement), and `MC0106` (voter on an unallocated processor). An empty
/// vector means the chromosome was already structurally sound.
pub fn repair_structure_logged(
    g: &mut Genome,
    space: &GenomeSpace,
    rng: &mut dyn RngCore,
) -> Vec<&'static str> {
    let mut fixed_alloc = false;
    let mut fixed_binding = false;
    let mut fixed_voter = false;

    if !g.alloc.iter().any(|&b| b) {
        let i = (rng.next_u32() as usize) % g.alloc.len();
        g.alloc[i] = true;
        fixed_alloc = true;
    }

    for flat in 0..g.genes.len() {
        // Primary binding.
        let binding = g.genes[flat].binding;
        if !is_valid(space, g, flat, binding) {
            g.genes[flat].binding = pick_valid(space, g, flat, rng);
            fixed_binding = true;
        }
        // Replicas and voter.
        let hardening = g.genes[flat].hardening.clone();
        g.genes[flat].hardening = match hardening {
            GeneHardening::None => GeneHardening::None,
            GeneHardening::Reexec(k) => GeneHardening::Reexec(k),
            GeneHardening::Active {
                mut replicas,
                mut voter,
            } => {
                for r in &mut replicas {
                    if !is_valid(space, g, flat, *r) {
                        *r = pick_valid(space, g, flat, rng);
                        fixed_binding = true;
                    }
                }
                if !g.alloc[voter.index()] {
                    voter = pick_allocated(g, rng);
                    fixed_voter = true;
                }
                GeneHardening::Active { replicas, voter }
            }
            GeneHardening::Passive {
                mut actives,
                mut standbys,
                mut voter,
            } => {
                for r in actives.iter_mut().chain(standbys.iter_mut()) {
                    if !is_valid(space, g, flat, *r) {
                        *r = pick_valid(space, g, flat, rng);
                        fixed_binding = true;
                    }
                }
                if !g.alloc[voter.index()] {
                    voter = pick_allocated(g, rng);
                    fixed_voter = true;
                }
                GeneHardening::Passive {
                    actives,
                    standbys,
                    voter,
                }
            }
        };
    }

    let mut codes = Vec::new();
    if fixed_voter {
        codes.push("MC0106");
    }
    if fixed_binding {
        codes.push("MC0110");
    }
    if fixed_alloc {
        codes.push("MC0111");
    }
    codes
}

fn is_valid(space: &GenomeSpace, g: &Genome, flat: usize, p: ProcId) -> bool {
    g.alloc[p.index()] && space.allowed_procs(flat).contains(&p)
}

/// A random allocated, kind-compatible processor; allocates one if none is
/// both allocated and compatible.
fn pick_valid(space: &GenomeSpace, g: &mut Genome, flat: usize, rng: &mut dyn RngCore) -> ProcId {
    let candidates: Vec<ProcId> = space
        .allowed_procs(flat)
        .iter()
        .copied()
        .filter(|p| g.alloc[p.index()])
        .collect();
    if let Some(&p) = candidates.choose(rng) {
        return p;
    }
    let p = *space
        .allowed_procs(flat)
        .choose(rng)
        .expect("every task can run somewhere");
    g.alloc[p.index()] = true;
    p
}

fn pick_allocated(g: &Genome, rng: &mut dyn RngCore) -> ProcId {
    let allocated: Vec<ProcId> = g
        .alloc
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| ProcId::new(i))
        .collect();
    *allocated
        .choose(rng)
        .expect("repair guarantees an allocation")
}

/// Escalates the hardening of one task: no hardening → re-execution,
/// longer re-execution, then active replication with growing redundancy.
fn strengthen(space: &GenomeSpace, g: &mut Genome, flat: usize, rng: &mut dyn RngCore) {
    let current = g.genes[flat].hardening.clone();
    let next = match &current {
        GeneHardening::None => GeneHardening::Reexec(1),
        GeneHardening::Reexec(k) if *k < space.max_reexec => GeneHardening::Reexec(k + 1),
        GeneHardening::Reexec(_) => GeneHardening::Active {
            replicas: vec![
                pick_valid(space, g, flat, rng),
                pick_valid(space, g, flat, rng),
            ],
            voter: pick_allocated(g, rng),
        },
        GeneHardening::Passive {
            actives, standbys, ..
        } => {
            // Promote to active replication with one more copy.
            let mut replicas = actives.clone();
            replicas.extend_from_slice(standbys);
            replicas.push(pick_valid(space, g, flat, rng));
            GeneHardening::Active {
                replicas,
                voter: pick_allocated(g, rng),
            }
        }
        GeneHardening::Active { replicas, voter } => {
            let mut replicas = replicas.clone();
            replicas.push(pick_valid(space, g, flat, rng));
            GeneHardening::Active {
                replicas,
                voter: *voter,
            }
        }
    };
    g.genes[flat].hardening = next;
}

/// Applies random hardening escalations until every non-droppable
/// application satisfies its reliability bound, or the iteration budget is
/// exhausted. Returns `true` when the constraint set is met.
///
/// This is the paper's reliability repair: "random hardening techniques …
/// are applied until the solution meets the constraint".
pub fn repair_reliability(
    g: &mut Genome,
    space: &GenomeSpace,
    apps: &AppSet,
    arch: &Architecture,
    rng: &mut dyn RngCore,
    max_iters: usize,
) -> bool {
    for _ in 0..max_iters.max(1) {
        let (plan, _, bindings) = space.decode(g);
        let Ok(hsys) = harden(apps, &plan, arch) else {
            // Structural hardening errors (e.g. over-long replica lists)
            // cannot be fixed here; leave for the penalty.
            return false;
        };
        // Placement: fixed slots from the plan, primaries from bindings.
        let mut placement = placement_with_default(&hsys, ProcId::new(0));
        for (id, t) in hsys.tasks() {
            if t.fixed_proc.is_none() {
                let flat = hsys
                    .flat_of_origin(t.origin)
                    .expect("primary has an origin");
                placement[id.index()] = bindings[flat];
            }
        }
        let rel = Reliability::new(&hsys, arch);
        let violations: Vec<AppId> = rel
            .check_all(&placement)
            .into_iter()
            .filter(|v| !v.satisfied)
            .map(|v| v.app)
            .collect();
        if violations.is_empty() {
            return true;
        }
        // Strengthen one random task of one violating application,
        // preferring still-unhardened tasks — they dominate the failure
        // probability, so covering them first converges fastest.
        let app = violations[(rng.next_u32() as usize) % violations.len()];
        let flats: Vec<usize> = apps
            .task_refs()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.app == app)
            .map(|(f, _)| f)
            .collect();
        let unhardened: Vec<usize> = flats
            .iter()
            .copied()
            .filter(|&f| g.genes[f].hardening == GeneHardening::None)
            .collect();
        let pool = if unhardened.is_empty() {
            &flats
        } else {
            &unhardened
        };
        let flat = pool[(rng.next_u32() as usize) % pool.len()];
        strengthen(space, g, flat, rng);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_model::{Criticality, ExecBounds, ProcKind, Processor, Task, TaskGraph, Time};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(rate: f64, bound: f64) -> (AppSet, Architecture, GenomeSpace) {
        let arch = Architecture::builder()
            .homogeneous(4, Processor::new("p", ProcKind::new(0), 5.0, 20.0, rate))
            .build()
            .unwrap();
        let hi = TaskGraph::builder("hi", Time::from_ticks(1_000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: bound,
            })
            .task(
                Task::new("a")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(100)))
                    .with_detect_overhead(Time::from_ticks(5)),
            )
            .build()
            .unwrap();
        let apps = AppSet::new(vec![hi]).unwrap();
        let space = GenomeSpace::new(&apps, &arch);
        (apps, arch, space)
    }

    #[test]
    fn structure_repair_fixes_unallocated_bindings() {
        let (apps, arch, space) = fixture(0.0, 0.5);
        let _ = apps;
        let _ = arch;
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = space.random(&mut rng);
        g.alloc = vec![false, true, false, false];
        g.genes[0].binding = ProcId::new(3);
        repair_structure(&mut g, &space, &mut rng);
        assert!(g.alloc[g.genes[0].binding.index()]);
    }

    #[test]
    fn structure_repair_allocates_when_nothing_is() {
        let (_, _, space) = fixture(0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = space.random(&mut rng);
        g.alloc = vec![false; 4];
        repair_structure(&mut g, &space, &mut rng);
        assert!(g.alloc.iter().any(|&b| b));
    }

    #[test]
    fn structure_repair_moves_replicas_and_voters() {
        let (_, _, space) = fixture(0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = space.random(&mut rng);
        g.alloc = vec![true, false, false, false];
        g.genes[0].hardening = GeneHardening::Active {
            replicas: vec![ProcId::new(2)],
            voter: ProcId::new(3),
        };
        repair_structure(&mut g, &space, &mut rng);
        if let GeneHardening::Active { replicas, voter } = &g.genes[0].hardening {
            for r in replicas {
                assert!(g.alloc[r.index()]);
            }
            assert!(g.alloc[voter.index()]);
        } else {
            panic!("hardening variant must be preserved");
        }
    }

    #[test]
    fn logged_repair_cites_the_diagnostic_codes() {
        let (_, _, space) = fixture(0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(8);
        let mut g = space.random(&mut rng);
        g.alloc = vec![true, false, false, false];
        g.genes[0].binding = ProcId::new(2);
        g.genes[0].hardening = GeneHardening::Active {
            replicas: vec![ProcId::new(1)],
            voter: ProcId::new(3),
        };
        let codes = repair_structure_logged(&mut g, &space, &mut rng);
        assert_eq!(codes, vec!["MC0106", "MC0110"]);
        // A second pass finds nothing left to fix.
        let codes = repair_structure_logged(&mut g, &space, &mut rng);
        assert!(codes.is_empty());
        // An empty allocation is cited as MC0111.
        g.alloc = vec![false; 4];
        let codes = repair_structure_logged(&mut g, &space, &mut rng);
        assert!(codes.contains(&"MC0111"), "{codes:?}");
    }

    #[test]
    fn repaired_genomes_lint_clean() {
        let (apps, arch, space) = fixture(0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = space.random(&mut rng);
        g.alloc = vec![false; 4];
        g.genes[0].binding = ProcId::new(3);
        let view = g.lint_view();
        let linter = mcmap_lint::Linter::new(&apps, &arch);
        assert!(linter.lint_genome(&view).has_errors());
        repair_structure(&mut g, &space, &mut rng);
        let report = linter.lint_genome(&g.lint_view());
        assert!(
            !report.has_errors(),
            "post-repair genome must lint clean: {}",
            report.render_text()
        );
    }

    #[test]
    fn reliability_repair_strengthens_until_satisfied() {
        // λ·wcet ≈ 1e-3 per run, bound 1e-8: needs escalation.
        let (apps, arch, space) = fixture(1e-5, 1e-8);
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = space.random(&mut rng);
        g.genes[0].hardening = GeneHardening::None;
        g.alloc = vec![true; 4];
        let ok = repair_reliability(&mut g, &space, &apps, &arch, &mut rng, 30);
        assert!(ok, "repair should reach the bound");
        assert!(g.genes[0].hardening != GeneHardening::None);
    }

    #[test]
    fn reliability_repair_is_a_noop_when_satisfied() {
        let (apps, arch, space) = fixture(1e-9, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = space.random(&mut rng);
        g.genes[0].hardening = GeneHardening::None;
        repair_structure(&mut g, &space, &mut rng);
        let before = g.clone();
        assert!(repair_reliability(
            &mut g, &space, &apps, &arch, &mut rng, 10
        ));
        assert_eq!(g, before);
    }

    #[test]
    fn impossible_bounds_report_failure() {
        // Enormous fault rate: even heavy hardening cannot reach the bound
        // within the budget.
        let (apps, arch, space) = fixture(1e-1, 1e-12);
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = space.random(&mut rng);
        repair_structure(&mut g, &space, &mut rng);
        let ok = repair_reliability(&mut g, &space, &apps, &arch, &mut rng, 5);
        assert!(!ok);
    }

    #[test]
    fn strengthen_escalates_through_the_ladder() {
        let (_, _, space) = fixture(0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = space.random(&mut rng);
        g.alloc = vec![true; 4];
        g.genes[0].hardening = GeneHardening::None;
        strengthen(&space, &mut g, 0, &mut rng);
        assert_eq!(g.genes[0].hardening, GeneHardening::Reexec(1));
        strengthen(&space, &mut g, 0, &mut rng);
        assert_eq!(g.genes[0].hardening, GeneHardening::Reexec(2));
        strengthen(&space, &mut g, 0, &mut rng);
        assert!(matches!(g.genes[0].hardening, GeneHardening::Active { .. }));
        strengthen(&space, &mut g, 0, &mut rng);
        if let GeneHardening::Active { replicas, .. } = &g.genes[0].hardening {
            assert_eq!(replicas.len(), 3);
        } else {
            panic!("escalation must stay active");
        }
    }
}
