//! Design-space exploration (§4 of the paper): the mapping problem as a
//! multi-objective GA problem, plus the end-to-end [`explore`] driver.

use crate::checkpoint::{read_checkpoint_with_fallback, write_checkpoint, DseCheckpoint};
use crate::delta::{diff_genomes, may_affect, ParentArtifacts};
use crate::{
    analyze_delta, expected_power, lost_service, repair_reliability, repair_structure,
    repair_structure_logged, AnalysisOptions, AnalysisSolutions, Genome, GenomeSpace,
};
use mcmap_eval::{EvalCacheConfig, EvalEngine, EvalStats, ShardedCache};
use mcmap_ga::{
    optimize_resumable, Evaluation, GaConfig, GaResult, GenerationObserver, GenerationSnapshot,
    LoopControl, Problem,
};
use mcmap_hardening::{harden, Reliability, TechniqueHistogram};
use mcmap_model::{AppId, AppSet, Architecture, ProcId, Time};
use mcmap_obs::{Recorder, Value};
use mcmap_resilience::{EvalFailure, FaultPlan, ResilienceError};
use mcmap_sched::{uniform_policies, Mapping, SchedPolicy};
use mcmap_telemetry::{Class, Counter, Histogram, Registry};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which objective vector the DSE minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObjectiveMode {
    /// Expected power only (§5.2).
    #[default]
    Power,
    /// Expected power and lost service — the bi-objective co-optimization
    /// of Fig. 5.
    PowerService,
}

/// Fault-tolerance knobs of one exploration run (the `mcmap-resilience`
/// integration): panic isolation with bounded retries, generation-boundary
/// checkpointing, resume, deterministic chaos injection, and cooperative
/// stop. None of these affect the search itself — a run with checkpointing
/// enabled, interrupted anywhere, and resumed produces the same Pareto
/// front and canonical trace as one that was never interrupted.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Write a checkpoint to this path after every completed generation
    /// (atomically, rotating the previous one to `<path>.bak`).
    pub checkpoint: Option<PathBuf>,
    /// Resume from the checkpoint at this path (falling back to its
    /// `.bak` when the primary is corrupt).
    pub resume: Option<PathBuf>,
    /// How many times a candidate whose evaluation panicked is retried
    /// before it is degraded to an infeasible placeholder (default 1).
    pub eval_retries: u32,
    /// Deterministic fault-injection plan for chaos testing.
    pub chaos: Option<FaultPlan>,
    /// Cooperative stop flag (e.g. from
    /// [`mcmap_resilience::install_stop_flag`], or a per-job flag handed
    /// out by a job server): when set, the run stops at the next
    /// generation boundary after writing its checkpoint.
    pub stop: Option<Arc<AtomicBool>>,
    /// Stop after this generation completes (testing hook for
    /// deterministic kill-and-resume sweeps).
    pub stop_after_generation: Option<usize>,
    /// Stop after this many generation boundaries have been observed *by
    /// this process* — the budget-slice primitive of the job server's
    /// round-robin scheduler. Unlike [`stop_after_generation`], which is
    /// an absolute generation index, this counts boundaries relative to
    /// where the (possibly resumed) run started, so a sequence of
    /// one-slice runs walks the exact same boundaries as one long run.
    /// The initial-population boundary (generation 0) of a fresh run
    /// counts as a slice boundary too.
    ///
    /// [`stop_after_generation`]: ResilienceConfig::stop_after_generation
    pub stop_after_slice: Option<usize>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            checkpoint: None,
            resume: None,
            eval_retries: 1,
            chaos: None,
            stop: None,
            stop_after_generation: None,
            stop_after_slice: None,
        }
    }
}

/// Configuration of one exploration run.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// The evolutionary engine's parameters.
    pub ga: GaConfig,
    /// Objective vector.
    pub objectives: ObjectiveMode,
    /// When `false`, the dropped set is forced empty (the paper's
    /// "without task dropping" comparison point).
    pub allow_dropping: bool,
    /// When `true`, every candidate is additionally analyzed with an empty
    /// dropped set so the §5.2 "rescued by dropping" ratio can be reported.
    pub audit: bool,
    /// Per-processor scheduling policies (`None` = uniform fixed-priority
    /// preemptive).
    pub policies: Option<Vec<SchedPolicy>>,
    /// Maximum re-execution degree explored.
    pub max_reexec: u8,
    /// Maximum additional replicas per task explored.
    pub max_replicas: u8,
    /// Iteration budget of the reliability repair.
    pub repair_iters: usize,
    /// Weight of the critical mode in the expected-power objective (the
    /// paper's "considering all possible cases"): dropped applications
    /// consume nothing in the critical mode, so any weight > 0 makes
    /// dropping a power lever (Fig. 5).
    pub critical_weight: f64,
    /// Entry bound of the candidate-evaluation memoization cache
    /// (`mcmap-eval`); 0 disables caching. Purely a speed/memory knob —
    /// evaluation is a pure function of the genome, so cached and fresh
    /// results are identical.
    pub cache_cap: usize,
    /// Observability recorder. The disabled default records nothing; an
    /// enabled recorder traces the exploration (`dse.*` spans, `ga.*` /
    /// `eval.*` / `sched.*` events) without changing any result — the
    /// canonical event stream is itself deterministic for any thread
    /// count or cache capacity.
    pub obs: Recorder,
    /// Fault-tolerance knobs (checkpointing, resume, panic isolation,
    /// chaos injection). All default off; none affect search results.
    pub resilience: ResilienceConfig,
    /// Scenario-level WCRT fast-path knobs (warm starts, dominance
    /// pruning, per-candidate scenario threads). Every combination yields
    /// bit-identical windows, fronts, and canonical traces, so — like the
    /// thread and cache knobs — these are excluded from the context and
    /// run fingerprints.
    pub analysis: AnalysisOptions,
    /// Incremental genome-delta analysis (`--no-delta` disables it): each
    /// GA child is evaluated with its designated parent's fixed-point
    /// solutions as a reuse hint, skipping backend runs whose inputs are
    /// bit-identical to the parent's. Pure speed knob — reused and fresh
    /// runs are bit-equal by construction, so results, audit counters, and
    /// canonical traces never change and, like [`DseConfig::analysis`],
    /// this is excluded from the context and run fingerprints.
    pub delta: bool,
    /// An externally owned memoization store shared across runs (the job
    /// server's cross-tenant cache). When set, [`DseConfig::cache_cap`] is
    /// ignored and the exploration's evaluation engine reads and writes
    /// this store instead of building its own. Memo keys mix the run's
    /// context fingerprint, so two runs only ever exchange records when
    /// their model, configuration, and seed are identical — a pure speed
    /// knob, excluded from the fingerprints like `cache_cap`.
    pub shared_cache: Option<SharedEvalCache>,
    /// Telemetry registry. The disabled default meters nothing; an enabled
    /// registry accumulates fleet metrics (`eval.*` batch/cache counters,
    /// `sched.*` analysis-effort counters and histograms) alongside — and
    /// under the same determinism contract as — the [`DseConfig::obs`]
    /// trace: `Class::Det` instruments are replay-stable for any thread
    /// count or cache capacity, timing rides in `Class::Nondet`. Like the
    /// recorder, it never changes a result.
    pub telemetry: Registry,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            ga: GaConfig::default(),
            objectives: ObjectiveMode::Power,
            allow_dropping: true,
            audit: false,
            policies: None,
            max_reexec: 2,
            max_replicas: 2,
            repair_iters: 20,
            critical_weight: 0.3,
            cache_cap: 65_536,
            obs: Recorder::default(),
            resilience: ResilienceConfig::default(),
            analysis: AnalysisOptions::default(),
            delta: true,
            shared_cache: None,
            telemetry: Registry::default(),
        }
    }
}

/// A process-wide candidate-evaluation store shared across exploration
/// runs — the [`ShardedCache`] promoted to a server-wide resource so that
/// identical candidates submitted by different tenants evaluate once.
///
/// The cached record type is internal to this crate, so the handle is
/// opaque: build one with [`SharedEvalCache::with_capacity`], clone it
/// into each run's [`DseConfig::shared_cache`], and read the global
/// traffic counters with [`SharedEvalCache::stats`]. Per-run hit/miss
/// counters stay on each run's own [`EvalStats`].
///
/// Sharing is always sound: memo keys embed each run's context
/// fingerprint (model, configuration, seed), so runs with different
/// inputs can collide on capacity but never on content.
#[derive(Debug, Clone)]
pub struct SharedEvalCache {
    cache: Arc<ShardedCache<EvalRecord>>,
}

impl SharedEvalCache {
    /// Builds a store bounded to roughly `capacity` records with the
    /// engine's default shard count.
    pub fn with_capacity(capacity: usize) -> Self {
        SharedEvalCache {
            cache: Arc::new(ShardedCache::new(capacity.max(1), 16)),
        }
    }

    /// Global traffic counters, aggregated over every run that used this
    /// store (hits, misses, insertions, evictions, resident entries).
    pub fn stats(&self) -> mcmap_eval::CacheStats {
        self.cache.global_stats()
    }
}

/// Cumulative statistics over every evaluated candidate (the §5.2
/// solution-audit instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditSnapshot {
    /// Total candidates evaluated.
    pub evaluated: usize,
    /// Candidates satisfying all constraints.
    pub feasible: usize,
    /// Candidates audited against the no-dropping protocol (requires
    /// `audit = true` and a non-empty dropped set).
    pub audited: usize,
    /// Candidates infeasible without dropping but feasible with their
    /// decoded dropped set (the paper's rescue ratio numerator).
    pub rescued_by_dropping: usize,
    /// Tasks hardened by re-execution across all evaluations.
    pub reexecutions: usize,
    /// Tasks hardened by active replication across all evaluations.
    pub active_replications: usize,
    /// Tasks hardened by passive replication across all evaluations.
    pub passive_replications: usize,
}

impl AuditSnapshot {
    /// Share of audited candidates rescued by dropping (§5.2: 0.02 % for
    /// Synth-1 up to 99.98 % for Cruise).
    pub fn rescue_ratio(&self) -> f64 {
        if self.audited == 0 {
            0.0
        } else {
            self.rescued_by_dropping as f64 / self.audited as f64
        }
    }

    /// Share of re-execution among all applied hardening techniques.
    pub fn reexecution_share(&self) -> f64 {
        let total = self.reexecutions + self.active_replications + self.passive_replications;
        if total == 0 {
            0.0
        } else {
            self.reexecutions as f64 / total as f64
        }
    }

    /// A multi-line human rendering (the CLI's `--audit` output).
    pub fn render_text(&self) -> String {
        format!(
            "audit: {} evaluated, {} feasible ({:.2} %)\n\
             audit: {} audited against no-dropping, {} rescued by dropping ({:.2} %)\n\
             audit: hardening mix: {} re-executions, {} active, {} passive \
             ({:.2} % re-execution)\n",
            self.evaluated,
            self.feasible,
            if self.evaluated == 0 {
                0.0
            } else {
                100.0 * self.feasible as f64 / self.evaluated as f64
            },
            self.audited,
            self.rescued_by_dropping,
            100.0 * self.rescue_ratio(),
            self.reexecutions,
            self.active_replications,
            self.passive_replications,
            100.0 * self.reexecution_share(),
        )
    }

    /// A single-line JSON object (for `--audit json` and scripting), in the
    /// same hand-rolled style as [`EvalStats::to_json`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"evaluated\":{},\"feasible\":{},\"audited\":{},\
             \"rescued_by_dropping\":{},\"rescue_ratio\":{:.6},\
             \"reexecutions\":{},\"active_replications\":{},\
             \"passive_replications\":{},\"reexecution_share\":{:.6}}}",
            self.evaluated,
            self.feasible,
            self.audited,
            self.rescued_by_dropping,
            self.rescue_ratio(),
            self.reexecutions,
            self.active_replications,
            self.passive_replications,
            self.reexecution_share(),
        )
    }
}

/// Cumulative scenario-analysis effort over every evaluated candidate —
/// the aggregate view of the per-candidate `sched.analyze` telemetry.
///
/// All fields except `analysis_nanos` are deterministic for a fixed
/// configuration (replayed from cached [`EvalRecord`]s on hits, so thread
/// count and cache capacity never shift them); `analysis_nanos` is wall
/// time and varies run to run. Like [`EvalStats`], this aggregate is not
/// checkpointed: a resumed run reports the effort it actually performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisStats {
    /// Candidates whose Algorithm 1 analysis was accounted (cache hits
    /// replay their cached effort and count here too).
    pub candidates: u64,
    /// Transition scenarios enumerated across all candidates.
    pub scenarios: u64,
    /// Schedulability-backend invocations actually performed.
    pub backend_calls: u64,
    /// Fixed-point iterations summed over all backend runs.
    pub fixedpoint_iters: u64,
    /// Distinct scenario bound-vectors skipped by dominance pruning.
    pub scenarios_pruned: u64,
    /// Estimated fixed-point sweeps avoided by warm-started runs.
    pub warm_iters_saved: u64,
    /// Wall nanoseconds inside Algorithm 1 (fresh evaluations only —
    /// cache hits replay the nanos their miss originally spent).
    pub analysis_nanos: u64,
    /// Backend runs (out of `backend_calls`) satisfied bit-identically
    /// from stored fixed-point solutions — the phenotype pool (merged
    /// runs of every earlier candidate with the same repaired genes) or
    /// the designated parent — instead of being recomputed. Like
    /// `analysis_nanos`, this is availability-dependent (a cache hit
    /// replays the reuse its miss achieved), so it is reported but
    /// excluded from the deterministic-replay contract.
    pub backend_reused: u64,
    /// Candidates whose delta source (phenotype pool or designated
    /// parent) satisfied at least one backend run.
    pub delta_reuses: u64,
    /// Candidates that had a delta source but fell back to a fully cold
    /// analysis (repaired phenotype diverged, or no stored run's inputs
    /// matched).
    pub delta_cold_fallbacks: u64,
    /// Summed size of the predicted may-affect sets (interference-closure
    /// apps whose verdict the parent→child edit could change).
    pub affect_set_size: u64,
}

impl AnalysisStats {
    /// Backend runs avoided per enumerated scenario (0 when nothing ran).
    pub fn prune_rate(&self) -> f64 {
        if self.scenarios == 0 {
            0.0
        } else {
            self.scenarios_pruned as f64 / self.scenarios as f64
        }
    }

    /// Multi-line human-readable report (the CLI's `--eval-stats` sibling).
    pub fn render_text(&self) -> String {
        format!(
            "analysis-stats: {} candidates, {} scenarios, {} backend calls\n\
             analysis-stats: fast path: {} scenarios pruned ({:.2} %), \
             {} warm iters saved, {} fixed-point iters total\n\
             analysis-stats: delta: {} backend runs reused, {} candidate \
             reuses, {} cold fallbacks, {} affect-set apps\n\
             analysis-stats: {} ns inside Algorithm 1\n",
            self.candidates,
            self.scenarios,
            self.backend_calls,
            self.scenarios_pruned,
            100.0 * self.prune_rate(),
            self.warm_iters_saved,
            self.fixedpoint_iters,
            self.backend_reused,
            self.delta_reuses,
            self.delta_cold_fallbacks,
            self.affect_set_size,
            self.analysis_nanos,
        )
    }

    /// Single-object JSON report, in the same hand-rolled style as
    /// [`EvalStats::to_json`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"candidates\":{},\"scenarios\":{},\"backend_calls\":{},\
             \"fixedpoint_iters\":{},\"scenarios_pruned\":{},\
             \"prune_rate\":{:.6},\"warm_iters_saved\":{},\
             \"backend_reused\":{},\"delta_reuses\":{},\
             \"delta_cold_fallbacks\":{},\"affect_set_size\":{},\
             \"analysis_nanos\":{}}}",
            self.candidates,
            self.scenarios,
            self.backend_calls,
            self.fixedpoint_iters,
            self.scenarios_pruned,
            self.prune_rate(),
            self.warm_iters_saved,
            self.backend_reused,
            self.delta_reuses,
            self.delta_cold_fallbacks,
            self.affect_set_size,
            self.analysis_nanos,
        )
    }
}

#[derive(Debug, Default)]
struct Counters {
    evaluated: AtomicUsize,
    feasible: AtomicUsize,
    audited: AtomicUsize,
    rescued: AtomicUsize,
    reexec: AtomicUsize,
    active: AtomicUsize,
    passive: AtomicUsize,
    an_candidates: AtomicU64,
    an_scenarios: AtomicU64,
    an_backend_calls: AtomicU64,
    an_fixedpoint_iters: AtomicU64,
    an_pruned: AtomicU64,
    an_warm_saved: AtomicU64,
    an_nanos: AtomicU64,
    an_backend_reused: AtomicU64,
    an_delta_reuses: AtomicU64,
    an_delta_cold: AtomicU64,
    an_affect_size: AtomicU64,
}

/// Detailed description of one (repaired) design point, for reporting.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Expected power (mW).
    pub power: f64,
    /// Retained service `Σ_{t ∉ T_d} sv_t`.
    pub service: f64,
    /// Lost service (the minimized form).
    pub lost_service: f64,
    /// The dropped application set `T_d`.
    pub dropped: Vec<AppId>,
    /// All constraints satisfied.
    pub feasible: bool,
    /// Worst-case response time per application under the protocol.
    pub app_wcrt: Vec<Time>,
    /// Hardening technique mix of the plan.
    pub histogram: TechniqueHistogram,
}

/// The fault-tolerant mixed-criticality mapping problem.
///
/// Implements [`Problem`] so the generic GA can drive it; every evaluation
/// runs the repair heuristics, the hardening transform, the reliability
/// check, and the full Algorithm 1 analysis.
#[derive(Debug)]
pub struct MappingProblem<'a> {
    apps: &'a AppSet,
    arch: &'a Architecture,
    cfg: DseConfig,
    space: GenomeSpace,
    policies: Vec<SchedPolicy>,
    context: u64,
    counters: Counters,
    engine: EvalEngine<EvalRecord>,
    /// Parent-artifact store of the genome-delta fast path: the repaired
    /// phenotype and fixed-point solutions of recently evaluated
    /// candidates, keyed by the memo key of their *original* genome (the
    /// driver designates parents by archive genotype). Bounded FIFO; a
    /// miss only costs a cold analysis, never correctness.
    parents: ShardedCache<std::sync::Arc<ParentArtifacts>>,
    /// Phenotype pool of the genome-delta fast path: merged fixed-point
    /// solutions keyed by the memo key of the *repaired genes* — the exact
    /// projection of the chromosome that determines the hardened system
    /// and the mapping. Every keep/alloc variant of one phenotype lands on
    /// the same entry, so a candidate can reuse runs from *any* earlier
    /// variant, not just its designated parent. Bounded FIFO; entries are
    /// verified by bit-comparing the stored genes before use.
    pool: ShardedCache<std::sync::Arc<ParentArtifacts>>,
    /// Batch coordinate for fault addressing: 0 = initial population,
    /// `g` = generation `g`'s offspring. Restored on resume.
    batch_index: AtomicU64,
    /// Candidates degraded after exhausting their evaluation retries.
    failures: Mutex<Vec<EvalFailure>>,
    /// Registered scheduling-analysis instruments (`None` when the
    /// config's telemetry registry is disabled).
    metrics: Option<SchedMetrics>,
}

/// The scheduling-analysis telemetry instruments. All observations happen
/// in [`MappingProblem::record_audit`] — the sequential per-submitted-
/// candidate replay path, with values carried in cached evaluation
/// records — so every `Class::Det` instrument accumulates identically for
/// any thread count or cache capacity. Analysis wall time is host timing
/// and rides in `Class::Nondet`.
#[derive(Debug)]
struct SchedMetrics {
    candidates: Arc<Counter>,
    scenarios: Arc<Counter>,
    backend_calls: Arc<Counter>,
    warm_iters_saved: Arc<Counter>,
    fixedpoint_iters: Arc<Histogram>,
    analysis_ns: Arc<Histogram>,
}

impl SchedMetrics {
    fn register(registry: &Registry) -> Self {
        SchedMetrics {
            candidates: registry.counter("sched.candidates", Class::Det),
            scenarios: registry.counter("sched.scenarios", Class::Det),
            backend_calls: registry.counter("sched.backend_calls", Class::Det),
            warm_iters_saved: registry.counter("sched.warm_iters_saved", Class::Det),
            fixedpoint_iters: registry.histogram("sched.fixedpoint_iters", Class::Det),
            analysis_ns: registry.histogram("sched.analysis_ns", Class::Nondet),
        }
    }

    fn observe_candidate(&self, r: &EvalRecord) {
        let e = &r.effort;
        self.candidates.inc();
        self.scenarios.add(e.scenarios as u64);
        self.backend_calls.add(e.backend_calls as u64);
        self.warm_iters_saved.add(e.warm_iters_saved as u64);
        self.fixedpoint_iters.observe(e.fixedpoint_iters as u64);
        self.analysis_ns.observe(r.analysis_nanos);
    }
}

/// Everything one evaluation produces: the GA-facing [`Evaluation`]
/// (objective vector + WCRT/schedulability verdict) plus the audit deltas
/// that must be replayed per candidate, cache hit or not, so the audit
/// counters stay deterministic and consistent with the driver's
/// evaluation count.
#[derive(Debug, Clone)]
struct EvalRecord {
    eval: Evaluation,
    rescued: Option<bool>,
    reexec: usize,
    active: usize,
    passive: usize,
    effort: AnalysisEffort,
    repair_codes: Vec<&'static str>,
    /// Wall nanoseconds spent inside Algorithm 1 for this candidate
    /// (protocol analysis plus the optional no-dropping audit run).
    /// Timing, not content: replayed from the cache on hits, emitted only
    /// in non-deterministic telemetry payloads, and excluded from
    /// [`AnalysisEffort`]'s pure-function equality.
    analysis_nanos: u64,
    /// Backend runs satisfied from a delta source (the phenotype pool or
    /// the designated parent's solutions). Availability-class like
    /// `analysis_nanos`: depends on what the stores held when the record
    /// was computed, replayed verbatim on cache hits, excluded from
    /// [`AnalysisEffort`] equality.
    backend_reused: usize,
    /// The candidate had a delta source and reused ≥ 1 backend run.
    delta_reused: bool,
    /// The candidate had a delta source but analyzed fully cold.
    delta_cold: bool,
    /// Size of the predicted may-affect set of the parent→child edit.
    affect_set_size: usize,
}

/// Deterministic effort counters of one candidate's Algorithm 1 analysis.
///
/// These are a pure function of the genome (and fixed config), so they ride
/// inside the cached [`EvalRecord`] and replay identically on cache hits —
/// the emitted `sched.analyze` telemetry is the same whether a record was
/// computed fresh or served from the memo cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct AnalysisEffort {
    /// Fault scenarios enumerated (Algorithm 1 outer loop).
    scenarios: usize,
    /// Schedulability-backend invocations (including memoized-analysis
    /// cache misses only).
    backend_calls: usize,
    /// Fixed-point iterations summed over all backend runs.
    fixedpoint_iters: usize,
    /// Tasks classified as completing before the fault (normal mode).
    class_normal: usize,
    /// Tasks classified as certainly dropped.
    class_dropped: usize,
    /// Tasks classified as maybe-dropped (mode-transition window).
    class_transition: usize,
    /// Tasks classified through the critical-mode bounds (Eq. 1).
    class_critical: usize,
    /// Distinct scenario bound-vectors skipped by dominance pruning.
    scenarios_pruned: usize,
    /// Estimated fixed-point sweeps avoided by warm-started runs.
    warm_iters_saved: usize,
}

/// Content fingerprint of the non-genome evaluation inputs: the memo key
/// of a candidate is (genome, appset, architecture, config), and this
/// folds the fixed three into one 64-bit context so per-candidate hashing
/// only touches the genome.
fn context_fingerprint(
    apps: &AppSet,
    arch: &Architecture,
    policies: &[SchedPolicy],
    cfg: &DseConfig,
) -> u64 {
    let mut h = DefaultHasher::new();
    // The model types expose no Hash; their Debug forms are complete,
    // deterministic renderings of the content, computed once per engine.
    format!("{apps:?}").hash(&mut h);
    format!("{arch:?}").hash(&mut h);
    format!("{policies:?}").hash(&mut h);
    cfg.ga.seed.hash(&mut h);
    format!("{:?}", cfg.objectives).hash(&mut h);
    cfg.allow_dropping.hash(&mut h);
    cfg.audit.hash(&mut h);
    cfg.max_reexec.hash(&mut h);
    cfg.max_replicas.hash(&mut h);
    cfg.repair_iters.hash(&mut h);
    cfg.critical_weight.to_bits().hash(&mut h);
    h.finish()
}

/// Fingerprint of everything a checkpoint's bit-identical-resume contract
/// depends on: the evaluation context plus the GA's search-shape
/// parameters. Speed knobs (threads, cache capacity) and the resilience
/// configuration itself are deliberately excluded — a run may be resumed
/// with a different thread count, or with chaos switched off, and still
/// reproduce the uninterrupted result.
fn run_fingerprint(apps: &AppSet, arch: &Architecture, cfg: &DseConfig) -> u64 {
    let policies = cfg
        .policies
        .clone()
        .unwrap_or_else(|| uniform_policies(arch.num_processors(), SchedPolicy::default()));
    let mut h = DefaultHasher::new();
    context_fingerprint(apps, arch, &policies, cfg).hash(&mut h);
    cfg.ga.population.hash(&mut h);
    cfg.ga.generations.hash(&mut h);
    cfg.ga.crossover_rate.to_bits().hash(&mut h);
    cfg.ga.mutation_rate.to_bits().hash(&mut h);
    format!("{:?}", cfg.ga.selector).hash(&mut h);
    h.finish()
}

fn hash_of(value: &impl fmt::Debug) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{value:?}").hash(&mut h);
    h.finish()
}

/// The labeled, human-readable projection of everything
/// [`run_fingerprint`] hashes. Stored alongside the fingerprint in each
/// checkpoint so a resume refused for a mismatching fingerprint can name
/// *which* fields diverged instead of two opaque hashes. The model inputs
/// are summarized as content hashes (their full `Debug` renderings would
/// bloat every checkpoint); the scalar knobs are stored verbatim.
pub(crate) fn config_summary(
    apps: &AppSet,
    arch: &Architecture,
    cfg: &DseConfig,
) -> Vec<(String, String)> {
    let policies = cfg
        .policies
        .clone()
        .unwrap_or_else(|| uniform_policies(arch.num_processors(), SchedPolicy::default()));
    let entries: Vec<(&str, String)> = vec![
        ("model.apps", format!("{:016x}", hash_of(apps))),
        ("model.arch", format!("{:016x}", hash_of(arch))),
        ("model.policies", format!("{:016x}", hash_of(&policies))),
        ("ga.seed", cfg.ga.seed.to_string()),
        ("ga.population", cfg.ga.population.to_string()),
        ("ga.generations", cfg.ga.generations.to_string()),
        (
            "ga.crossover_rate",
            format!("{:016x}", cfg.ga.crossover_rate.to_bits()),
        ),
        (
            "ga.mutation_rate",
            format!("{:016x}", cfg.ga.mutation_rate.to_bits()),
        ),
        ("ga.selector", format!("{:?}", cfg.ga.selector)),
        ("objectives", format!("{:?}", cfg.objectives)),
        ("allow_dropping", cfg.allow_dropping.to_string()),
        ("audit", cfg.audit.to_string()),
        ("max_reexec", cfg.max_reexec.to_string()),
        ("max_replicas", cfg.max_replicas.to_string()),
        ("repair_iters", cfg.repair_iters.to_string()),
        (
            "critical_weight",
            format!("{:016x}", cfg.critical_weight.to_bits()),
        ),
    ];
    entries
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Field-level differences between a checkpoint's recorded configuration
/// summary and the current one, one rendered line per diverging field.
/// Fields present on only one side (older checkpoint formats, or a future
/// summary revision) render as `<absent>`.
fn diff_config_summaries(
    checkpoint: &[(String, String)],
    current: &[(String, String)],
) -> Vec<String> {
    let mut diff = Vec::new();
    for (key, new) in current {
        match checkpoint.iter().find(|(k, _)| k == key) {
            Some((_, old)) if old == new => {}
            Some((_, old)) => diff.push(format!("{key}: checkpoint={old} current={new}")),
            None if checkpoint.is_empty() => {} // pre-summary checkpoint: no field info
            None => diff.push(format!("{key}: checkpoint=<absent> current={new}")),
        }
    }
    for (key, old) in checkpoint {
        if !current.iter().any(|(k, _)| k == key) {
            diff.push(format!("{key}: checkpoint={old} current=<absent>"));
        }
    }
    diff
}

struct Assessment {
    dropped: Vec<AppId>,
    power: f64,
    lost: f64,
    feasible: bool,
    penalty: f64,
    rescued: Option<bool>,
    histogram: TechniqueHistogram,
    app_wcrt: Vec<Time>,
    effort: AnalysisEffort,
    repair_codes: Vec<&'static str>,
    analysis_nanos: u64,
    backend_reused: usize,
    delta_reused: bool,
    delta_cold: bool,
    affect_set_size: usize,
    /// The artifacts children of this candidate may reuse (fresh
    /// evaluations under `cfg.delta` only — never cached in the memo
    /// engine, only published to the parent store).
    artifacts: Option<std::sync::Arc<ParentArtifacts>>,
}

impl<'a> MappingProblem<'a> {
    /// Builds the problem for one benchmark system.
    pub fn new(apps: &'a AppSet, arch: &'a Architecture, cfg: DseConfig) -> Self {
        let space = GenomeSpace::new(apps, arch)
            .with_max_reexec(cfg.max_reexec)
            .with_max_replicas(cfg.max_replicas);
        let policies = cfg
            .policies
            .clone()
            .unwrap_or_else(|| uniform_policies(arch.num_processors(), SchedPolicy::default()));
        let context = context_fingerprint(apps, arch, &policies, &cfg);
        let engine = match &cfg.shared_cache {
            Some(shared) => EvalEngine::with_shared_cache(Arc::clone(&shared.cache), &context),
            None => EvalEngine::new(EvalCacheConfig::with_capacity(cfg.cache_cap), &context),
        }
        .with_recorder(cfg.obs.clone())
        .with_metrics(&cfg.telemetry);
        let metrics = cfg
            .telemetry
            .enabled()
            .then(|| SchedMetrics::register(&cfg.telemetry));
        MappingProblem {
            apps,
            arch,
            cfg,
            space,
            policies,
            context,
            counters: Counters::default(),
            engine,
            parents: ShardedCache::new(4096, 16),
            pool: ShardedCache::new(4096, 16),
            batch_index: AtomicU64::new(0),
            failures: Mutex::new(Vec::new()),
            metrics,
        }
    }

    /// The chromosome space (useful for seeding or inspecting candidates).
    pub fn space(&self) -> &GenomeSpace {
        &self.space
    }

    /// The application set this problem maps.
    pub fn apps(&self) -> &AppSet {
        self.apps
    }

    /// The target architecture.
    pub fn arch(&self) -> &Architecture {
        self.arch
    }

    /// The 64-bit evaluation-context fingerprint (model, policies,
    /// configuration, seed). Two problems share a fingerprint exactly when
    /// their genomes decode to identical designs, which is what lets a
    /// sealed [`Portfolio`](crate::Portfolio) refuse to materialize
    /// against a problem it was not extracted from.
    pub fn context(&self) -> u64 {
        self.context
    }

    /// A snapshot of the evaluation-engine instrumentation (cache hits /
    /// misses / evictions, per-phase nanos, genomes/sec).
    pub fn eval_stats(&self) -> EvalStats {
        self.engine.stats()
    }

    /// A snapshot of the cumulative scenario-analysis effort counters.
    pub fn analysis_stats(&self) -> AnalysisStats {
        AnalysisStats {
            candidates: self.counters.an_candidates.load(Ordering::Relaxed),
            scenarios: self.counters.an_scenarios.load(Ordering::Relaxed),
            backend_calls: self.counters.an_backend_calls.load(Ordering::Relaxed),
            fixedpoint_iters: self.counters.an_fixedpoint_iters.load(Ordering::Relaxed),
            scenarios_pruned: self.counters.an_pruned.load(Ordering::Relaxed),
            warm_iters_saved: self.counters.an_warm_saved.load(Ordering::Relaxed),
            analysis_nanos: self.counters.an_nanos.load(Ordering::Relaxed),
            backend_reused: self.counters.an_backend_reused.load(Ordering::Relaxed),
            delta_reuses: self.counters.an_delta_reuses.load(Ordering::Relaxed),
            delta_cold_fallbacks: self.counters.an_delta_cold.load(Ordering::Relaxed),
            affect_set_size: self.counters.an_affect_size.load(Ordering::Relaxed),
        }
    }

    /// A snapshot of the cumulative audit counters.
    pub fn audit(&self) -> AuditSnapshot {
        AuditSnapshot {
            evaluated: self.counters.evaluated.load(Ordering::Relaxed),
            feasible: self.counters.feasible.load(Ordering::Relaxed),
            audited: self.counters.audited.load(Ordering::Relaxed),
            rescued_by_dropping: self.counters.rescued.load(Ordering::Relaxed),
            reexecutions: self.counters.reexec.load(Ordering::Relaxed),
            active_replications: self.counters.active.load(Ordering::Relaxed),
            passive_replications: self.counters.passive.load(Ordering::Relaxed),
        }
    }

    /// The evaluation failures recorded so far (candidates degraded to
    /// infeasible placeholders after exhausting their retries).
    pub fn failures(&self) -> Vec<EvalFailure> {
        self.failures.lock().expect("failure log poisoned").clone()
    }

    /// Restores the audit counters from a checkpoint, so the cumulative
    /// [`AuditSnapshot`] of a resumed run matches the uninterrupted one.
    pub fn restore_audit(&self, snapshot: &AuditSnapshot) {
        self.counters
            .evaluated
            .store(snapshot.evaluated, Ordering::Relaxed);
        self.counters
            .feasible
            .store(snapshot.feasible, Ordering::Relaxed);
        self.counters
            .audited
            .store(snapshot.audited, Ordering::Relaxed);
        self.counters
            .rescued
            .store(snapshot.rescued_by_dropping, Ordering::Relaxed);
        self.counters
            .reexec
            .store(snapshot.reexecutions, Ordering::Relaxed);
        self.counters
            .active
            .store(snapshot.active_replications, Ordering::Relaxed);
        self.counters
            .passive
            .store(snapshot.passive_replications, Ordering::Relaxed);
    }

    /// Sets the next batch coordinate for fault addressing (resume path:
    /// generation `g`'s offspring are batch `g`).
    pub fn set_next_batch(&self, batch: u64) {
        self.batch_index.store(batch, Ordering::Relaxed);
    }

    /// Runs the deterministic repair pipeline on a genome and returns the
    /// decoded design pieces — the hardening plan, the dropped set, and the
    /// per-original-task primary bindings. This is the hand-off point to
    /// [`Sensitivity`](crate::Sensitivity) and to custom evaluations.
    pub fn decode_repaired(
        &self,
        genome: &Genome,
    ) -> (mcmap_hardening::HardeningPlan, Vec<AppId>, Vec<ProcId>) {
        let mut rng = self.repair_rng(genome);
        let mut g = genome.clone();
        repair_structure(&mut g, &self.space, &mut rng);
        let _ = repair_reliability(
            &mut g,
            &self.space,
            self.apps,
            self.arch,
            &mut rng,
            self.cfg.repair_iters,
        );
        let (plan, mut dropped, bindings) = self.space.decode(&g);
        if !self.cfg.allow_dropping {
            dropped.clear();
        }
        (plan, dropped, bindings)
    }

    /// The per-processor scheduling policies this problem analyzes with.
    pub fn policies(&self) -> &[SchedPolicy] {
        &self.policies
    }

    /// Produces a human-readable report for a genome (running the same
    /// repair + evaluation pipeline, without touching the audit counters).
    pub fn report(&self, genome: &Genome) -> DesignReport {
        let a = self.assess(genome, false, None);
        DesignReport {
            power: a.power,
            service: self.apps.total_service() - a.lost,
            lost_service: a.lost,
            dropped: a.dropped,
            feasible: a.feasible,
            app_wcrt: a.app_wcrt,
            histogram: a.histogram,
        }
    }

    /// The deterministic repair RNG of one genome, so that evaluation
    /// stays a pure function (required for parallel and repeatable
    /// evaluation). Seeded from the *repair-relevant projection* of the
    /// chromosome — the allocation bits and the genes, exactly the inputs
    /// the repair heuristics read — so genomes differing only in keep bits
    /// repair identically. That stability is what lets the genome-delta
    /// pass prove a mutant's phenotype equal to its parent's: a
    /// repair-irrelevant edit can no longer reroll every randomized fix.
    fn repair_rng(&self, genome: &Genome) -> StdRng {
        let mut hasher = DefaultHasher::new();
        genome.alloc.hash(&mut hasher);
        genome.genes.hash(&mut hasher);
        self.cfg.ga.seed.hash(&mut hasher);
        StdRng::seed_from_u64(hasher.finish())
    }

    fn assess(&self, genome: &Genome, audit: bool, parent: Option<&ParentArtifacts>) -> Assessment {
        let mut rng = self.repair_rng(genome);

        let mut g = genome.clone();
        let repair_codes = repair_structure_logged(&mut g, &self.space, &mut rng);
        let rel_repaired = repair_reliability(
            &mut g,
            &self.space,
            self.apps,
            self.arch,
            &mut rng,
            self.cfg.repair_iters,
        );

        let (plan, mut dropped, bindings) = self.space.decode(&g);
        if !self.cfg.allow_dropping {
            dropped.clear();
        }
        let histogram = plan.technique_histogram();

        // Genome-delta fast path: only a designated parent whose repaired
        // phenotype carries bit-equal genes can have its solutions
        // attached (the genes determine the hardening plan and primary
        // bindings, hence the hardened system, the mapping, and every
        // bound vector; keep/alloc bits only move the scenario set and the
        // power term). `analyze_delta`'s per-run gates re-verify
        // bit-equality of the actual analysis inputs, so the prediction
        // here can only cost reuse, never correctness. The interference
        // closure is the *advisory* half: it sizes the predicted
        // may-affect set of the edit for the delta telemetry and lint.
        let parent = parent.filter(|_| self.cfg.delta);
        let (eligible, affect_set_size) = match parent {
            Some(p) => {
                let edits = diff_genomes(&self.space, &p.repaired, &g);
                let affect = may_affect(self.apps, self.arch, &p.repaired, &g, &edits)
                    .map_or(self.apps.num_apps(), |a| a.size());
                (p.repaired.genes == g.genes, affect)
            }
            None => (false, 0),
        };
        // Phenotype-pool lookup: merged solutions of *any* earlier
        // candidate whose repaired genes are bit-equal to this one's. The
        // hash key is verified by comparing the stored genes, so a
        // collision only costs the lookup.
        let pool_hit = if self.cfg.delta {
            self.pool
                .get(self.engine.key_of(&g.genes))
                .filter(|e| e.repaired.genes == g.genes)
        } else {
            None
        };
        let had_source = parent.is_some() || pool_hit.is_some();

        let degenerate = |penalty: f64| Assessment {
            dropped: dropped.clone(),
            power: f64::MAX / 1e6,
            lost: lost_service(self.apps, &dropped),
            feasible: false,
            penalty,
            rescued: None,
            histogram,
            app_wcrt: vec![Time::MAX; self.apps.num_apps()],
            effort: AnalysisEffort::default(),
            repair_codes: repair_codes.clone(),
            analysis_nanos: 0,
            backend_reused: 0,
            delta_reused: false,
            delta_cold: had_source,
            affect_set_size,
            artifacts: None,
        };

        let hsys = match harden(self.apps, &plan, self.arch) {
            Ok(h) => h,
            Err(_) => return degenerate(1e9),
        };
        let placement: Vec<ProcId> = hsys
            .tasks()
            .map(|(_, t)| match t.fixed_proc {
                Some(p) => p,
                None => {
                    let flat = hsys
                        .flat_of_origin(t.origin)
                        .expect("primary origins are tracked");
                    bindings[flat]
                }
            })
            .collect();
        let mapping = match Mapping::new(&hsys, self.arch, placement) {
            Ok(m) => m,
            Err(_) => return degenerate(1e9),
        };

        let mut penalty = 0.0;
        if !rel_repaired {
            let rel = Reliability::new(&hsys, self.arch);
            for v in rel.check_all(mapping.placement()) {
                if !v.satisfied {
                    penalty += ((v.failure_probability / v.bound).log10()).clamp(0.0, 100.0);
                }
            }
        }

        // Pick the reuse source. The phenotype pool merges the runs of
        // every earlier variant of these exact genes (across dropped
        // sets), so it is a superset of what the designated parent can
        // offer; fall back to the parent's solutions when the pool has no
        // entry yet. Either way `analyze_delta`'s per-run gates re-verify
        // bit-equality of the actual inputs.
        let delta_source: Option<&AnalysisSolutions> =
            pool_hit.as_deref().map(|e| &*e.solutions).or_else(|| {
                if eligible {
                    parent.map(|p| &*p.solutions)
                } else {
                    None
                }
            });
        let t_analysis = std::time::Instant::now();
        let (mc, solutions, mut backend_reused) = analyze_delta(
            &hsys,
            self.arch,
            &mapping,
            &self.policies,
            &dropped,
            self.cfg.analysis,
            delta_source,
        );
        let mut analysis_nanos = t_analysis.elapsed().as_nanos() as u64;
        let mut effort = AnalysisEffort {
            scenarios: mc.scenarios,
            backend_calls: mc.backend_calls,
            fixedpoint_iters: mc.fixedpoint_iters,
            class_normal: mc.class_normal,
            class_dropped: mc.class_dropped,
            class_transition: mc.class_transition,
            class_critical: mc.class_critical,
            scenarios_pruned: mc.scenarios_pruned,
            warm_iters_saved: mc.warm_iters_saved,
        };
        let app_wcrt: Vec<Time> = self
            .apps
            .app_ids()
            .map(|a| mc.app_wcrt(&hsys, a, &dropped))
            .collect();
        let schedulable = mc.schedulable(&hsys, &dropped);
        if !schedulable {
            for happ in hsys.apps() {
                let wcrt = mc.app_wcrt(&hsys, happ.app, &dropped);
                let ratio = if wcrt == Time::MAX {
                    10.0
                } else {
                    (wcrt.as_f64() / happ.deadline.as_f64() - 1.0).clamp(0.0, 10.0)
                };
                penalty += ratio;
            }
        }

        let mut audit_solutions: Option<AnalysisSolutions> = None;
        let rescued = if audit && !dropped.is_empty() {
            // The no-dropping audit re-analysis shares the candidate's own
            // hardened system and mapping. Under `cfg.delta` it is seeded
            // from the same pool/parent source (whose merged runs include
            // earlier no-dropping analyses of these genes — then *every*
            // bound vector coincides), falling back to the just-computed
            // protocol solutions (the normal run always matches; only
            // scenario vectors the empty dropped set changes are
            // recomputed).
            let t_audit = std::time::Instant::now();
            let (mc0, mc0_sols, mc0_reused) = analyze_delta(
                &hsys,
                self.arch,
                &mapping,
                &self.policies,
                &[],
                self.cfg.analysis,
                self.cfg.delta.then_some(delta_source.unwrap_or(&solutions)),
            );
            audit_solutions = Some(mc0_sols);
            backend_reused += mc0_reused;
            analysis_nanos += t_audit.elapsed().as_nanos() as u64;
            // The no-dropping re-analysis is real backend effort; fold it
            // into the enumeration counters (classification counts stay
            // those of the protocol analysis).
            effort.scenarios += mc0.scenarios;
            effort.backend_calls += mc0.backend_calls;
            effort.fixedpoint_iters += mc0.fixedpoint_iters;
            effort.scenarios_pruned += mc0.scenarios_pruned;
            effort.warm_iters_saved += mc0.warm_iters_saved;
            let feasible_without = mc0.schedulable(&hsys, &[]);
            Some(schedulable && penalty == 0.0 && !feasible_without)
        } else {
            None
        };

        let power = expected_power(
            &hsys,
            self.arch,
            &mapping,
            &g.alloc,
            &dropped,
            self.cfg.critical_weight,
        );
        let lost = lost_service(self.apps, &dropped);
        let feasible = schedulable && penalty == 0.0;

        let artifacts = self.cfg.delta.then(|| {
            // Publish everything this phenotype's backend computed: the
            // protocol runs plus the audit's no-dropping runs. Children
            // (and keep/alloc variants via the phenotype pool) match
            // per-vector, so the union can only widen reuse.
            let mut all = solutions;
            if let Some(extra) = &audit_solutions {
                all.absorb(extra);
            }
            std::sync::Arc::new(ParentArtifacts {
                repaired: g,
                solutions: std::sync::Arc::new(all),
            })
        });

        Assessment {
            dropped,
            power,
            lost,
            feasible,
            penalty,
            rescued,
            histogram,
            app_wcrt,
            effort,
            repair_codes,
            analysis_nanos,
            backend_reused,
            delta_reused: had_source && backend_reused > 0,
            delta_cold: had_source && backend_reused == 0,
            affect_set_size,
            artifacts,
        }
    }

    fn objectives(&self, a: &Assessment) -> Vec<f64> {
        match self.cfg.objectives {
            ObjectiveMode::Power => vec![a.power],
            ObjectiveMode::PowerService => vec![a.power, a.lost],
        }
    }

    /// The full (cacheable) evaluation of one genome. Fresh evaluations
    /// under `cfg.delta` also publish the candidate's artifacts to the
    /// parent store (keyed by the *original* genome's memo key — that is
    /// how the driver designates parents); the artifacts themselves never
    /// enter the memo cache.
    fn assess_record(&self, g: &Genome, parent: Option<&ParentArtifacts>) -> EvalRecord {
        let a = self.assess(g, self.cfg.audit, parent);
        if let Some(artifacts) = &a.artifacts {
            self.parents
                .insert(self.engine.key_of(g), artifacts.clone());
            // Merge into the phenotype pool keyed by the repaired genes:
            // later variants of this phenotype (any keep/alloc setting)
            // see the union of every run computed for it so far. A lost
            // race between get and insert only drops reuse, never
            // correctness.
            let key = self.engine.key_of(&artifacts.repaired.genes);
            let entry = match self.pool.get(key) {
                Some(prev) if prev.repaired.genes == artifacts.repaired.genes => {
                    let mut merged = (*artifacts.solutions).clone();
                    merged.absorb(&prev.solutions);
                    std::sync::Arc::new(ParentArtifacts {
                        repaired: artifacts.repaired.clone(),
                        solutions: std::sync::Arc::new(merged),
                    })
                }
                _ => artifacts.clone(),
            };
            self.pool.insert(key, entry);
        }
        let objectives = self.objectives(&a);
        let eval = if a.feasible {
            Evaluation::feasible(objectives)
        } else {
            Evaluation::infeasible(objectives, a.penalty.max(f64::MIN_POSITIVE))
        };
        EvalRecord {
            eval,
            rescued: a.rescued,
            reexec: a.histogram.reexecution,
            active: a.histogram.active,
            passive: a.histogram.passive,
            effort: a.effort,
            repair_codes: a.repair_codes,
            analysis_nanos: a.analysis_nanos,
            backend_reused: a.backend_reused,
            delta_reused: a.delta_reused,
            delta_cold: a.delta_cold,
            affect_set_size: a.affect_set_size,
        }
    }

    /// Applies one candidate's audit deltas. Called once per *submitted*
    /// candidate — whether its record came from the cache or from a fresh
    /// evaluation — so `AuditSnapshot::evaluated` keeps matching the
    /// driver's evaluation count exactly.
    fn record_audit(&self, r: &EvalRecord) {
        self.counters.evaluated.fetch_add(1, Ordering::Relaxed);
        if r.eval.feasible {
            self.counters.feasible.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(rescued) = r.rescued {
            self.counters.audited.fetch_add(1, Ordering::Relaxed);
            if rescued {
                self.counters.rescued.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.counters.reexec.fetch_add(r.reexec, Ordering::Relaxed);
        self.counters.active.fetch_add(r.active, Ordering::Relaxed);
        self.counters
            .passive
            .fetch_add(r.passive, Ordering::Relaxed);
        let e = &r.effort;
        self.counters.an_candidates.fetch_add(1, Ordering::Relaxed);
        self.counters
            .an_scenarios
            .fetch_add(e.scenarios as u64, Ordering::Relaxed);
        self.counters
            .an_backend_calls
            .fetch_add(e.backend_calls as u64, Ordering::Relaxed);
        self.counters
            .an_fixedpoint_iters
            .fetch_add(e.fixedpoint_iters as u64, Ordering::Relaxed);
        self.counters
            .an_pruned
            .fetch_add(e.scenarios_pruned as u64, Ordering::Relaxed);
        self.counters
            .an_warm_saved
            .fetch_add(e.warm_iters_saved as u64, Ordering::Relaxed);
        self.counters
            .an_nanos
            .fetch_add(r.analysis_nanos, Ordering::Relaxed);
        self.counters
            .an_backend_reused
            .fetch_add(r.backend_reused as u64, Ordering::Relaxed);
        self.counters
            .an_delta_reuses
            .fetch_add(u64::from(r.delta_reused), Ordering::Relaxed);
        self.counters
            .an_delta_cold
            .fetch_add(u64::from(r.delta_cold), Ordering::Relaxed);
        self.counters
            .an_affect_size
            .fetch_add(r.affect_set_size as u64, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.observe_candidate(r);
        }
        if self.cfg.obs.enabled() {
            // Emitted on the sequential replay path, from cached effort
            // counters: the event stream is identical for hits and misses,
            // hence for any thread count or cache capacity. The wall time
            // of the analysis is timing, not content — it rides in the
            // non-deterministic payload (and replays from the cached
            // record, like the effort counters).
            self.cfg.obs.counter_with_nondet(
                "sched.analyze",
                &[
                    ("scenarios", Value::from(e.scenarios)),
                    ("backend_calls", Value::from(e.backend_calls)),
                    ("fixedpoint_iters", Value::from(e.fixedpoint_iters)),
                    ("scenarios_pruned", Value::from(e.scenarios_pruned)),
                    ("warm_iters_saved", Value::from(e.warm_iters_saved)),
                    ("class_normal", Value::from(e.class_normal)),
                    ("class_dropped", Value::from(e.class_dropped)),
                    ("class_transition", Value::from(e.class_transition)),
                    ("class_critical", Value::from(e.class_critical)),
                    ("feasible", Value::from(r.eval.feasible)),
                ],
                // Delta-reuse outcomes are availability-class (they depend
                // on parent-store state, like wall time), so they ride in
                // the non-deterministic payload and never perturb the
                // canonical trace.
                &[
                    ("analysis_ns", Value::from(r.analysis_nanos)),
                    ("backend_reused", Value::from(r.backend_reused)),
                    ("delta_reused", Value::from(r.delta_reused)),
                    ("delta_cold", Value::from(r.delta_cold)),
                    ("affect_set_size", Value::from(r.affect_set_size)),
                ],
            );
            if !r.repair_codes.is_empty() {
                self.cfg.obs.counter(
                    "repair.structure",
                    &[
                        ("fixes", Value::from(r.repair_codes.len())),
                        ("codes", Value::from(r.repair_codes.join(","))),
                    ],
                );
            }
        }
    }
}

impl Problem for MappingProblem<'_> {
    type Genotype = Genome;

    fn random(&self, rng: &mut dyn RngCore) -> Genome {
        // Mix ~15 % clustered heuristic seeds into the otherwise uniform
        // initial population (see [`GenomeSpace::clustered`]).
        let mut buf = [0u8; 1];
        rng.fill_bytes(&mut buf);
        if buf[0] < 38 {
            self.space.clustered(rng)
        } else {
            self.space.random(rng)
        }
    }

    fn crossover(&self, a: &Genome, b: &Genome, rng: &mut dyn RngCore) -> Genome {
        self.space.crossover(a, b, rng)
    }

    fn mutate(&self, g: &mut Genome, rng: &mut dyn RngCore) {
        self.space.mutate(g, rng)
    }

    fn evaluate(&self, g: &Genome) -> Evaluation {
        let record = self.engine.evaluate_one(g, |g| self.assess_record(g, None));
        self.record_audit(&record);
        record.eval
    }

    fn evaluate_batch(&self, genotypes: &[Genome], threads: usize) -> Vec<Evaluation> {
        self.batch_eval(genotypes, threads, &[])
    }

    fn evaluate_batch_with_parents(
        &self,
        genotypes: &[Genome],
        parents: &[Option<&Genome>],
        threads: usize,
    ) -> Vec<Evaluation> {
        // Resolve each designated parent to its stored artifacts up front
        // (cheap u128 lookups); a miss — evicted, never evaluated, or
        // delta disabled — just means that child analyzes cold.
        let artifacts: Vec<Option<std::sync::Arc<ParentArtifacts>>> = if self.cfg.delta {
            parents
                .iter()
                .map(|p| p.and_then(|g| self.parents.get(self.engine.key_of(g))))
                .collect()
        } else {
            Vec::new()
        };
        self.batch_eval(genotypes, threads, &artifacts)
    }

    fn num_objectives(&self) -> usize {
        match self.cfg.objectives {
            ObjectiveMode::Power => 1,
            ObjectiveMode::PowerService => 2,
        }
    }
}

impl MappingProblem<'_> {
    /// The shared batch-evaluation path: memoized, panic-isolated, with
    /// optional per-candidate parent artifacts as a reuse hint
    /// (`artifacts` may be empty — then every candidate analyzes cold).
    fn batch_eval(
        &self,
        genotypes: &[Genome],
        threads: usize,
        artifacts: &[Option<std::sync::Arc<ParentArtifacts>>],
    ) -> Vec<Evaluation> {
        let batch = self.batch_index.fetch_add(1, Ordering::Relaxed);
        let chaos = self.cfg.resilience.chaos.as_ref();
        let records = self.engine.evaluate_batch_isolated_with(
            genotypes,
            threads,
            self.cfg.resilience.eval_retries,
            |ctx| {
                // The injection hook fires before the memo-cache lookup so
                // chaos faults hit their addressed coordinates regardless
                // of cache state; it is a no-op without a fault plan.
                if let Some(plan) = chaos {
                    let micros = plan.delay_micros(batch, ctx.index);
                    if micros > 0 {
                        std::thread::sleep(std::time::Duration::from_micros(micros));
                    }
                    assert!(
                        !plan.should_panic(batch, ctx.index, ctx.attempt),
                        "chaos: injected panic at batch {batch}, item {}, attempt {}",
                        ctx.index,
                        ctx.attempt
                    );
                }
            },
            |g, ctx| self.assess_record(g, artifacts.get(ctx.index).and_then(|o| o.as_deref())),
        );
        // Audit deltas are replayed sequentially in submission order, so
        // the snapshot is deterministic for any thread count.
        records
            .into_iter()
            .map(|r| match r {
                Ok(record) => {
                    self.record_audit(&record);
                    record.eval
                }
                Err(failure) => {
                    // A candidate whose evaluation kept panicking degrades
                    // to a strongly penalized infeasible placeholder: the
                    // search loses one candidate, not the whole run. It
                    // still counts as evaluated so the audit stays in sync
                    // with the driver's evaluation count.
                    self.counters.evaluated.fetch_add(1, Ordering::Relaxed);
                    let eval =
                        Evaluation::infeasible(vec![f64::MAX / 1e6; self.num_objectives()], 1e12);
                    self.failures
                        .lock()
                        .expect("failure log poisoned")
                        .push(failure);
                    eval
                }
            })
            .collect()
    }
}

/// Typed error of the library-level exploration entry points.
///
/// Both [`explore_checked`] (which returns it) and [`explore`] (which
/// panics with its rendering) go through the same pre-flight path, so the
/// two can never drift in what they accept.
#[derive(Debug)]
#[non_exhaustive]
pub enum DseError {
    /// The input system failed the mandatory `mcmap-lint` pre-flight with
    /// error-level diagnostics.
    Preflight(Box<mcmap_lint::LintReport>),
    /// A checkpoint/resume operation failed: unreadable, corrupt beyond
    /// the `.bak` fallback, or written for a different configuration.
    Resilience(ResilienceError),
}

impl DseError {
    /// The underlying lint report, when the pre-flight refused the input.
    pub fn lint_report(&self) -> Option<&mcmap_lint::LintReport> {
        match self {
            DseError::Preflight(report) => Some(report),
            _ => None,
        }
    }

    /// The underlying resilience error, when checkpoint/resume failed.
    pub fn resilience(&self) -> Option<&ResilienceError> {
        match self {
            DseError::Resilience(err) => Some(err),
            _ => None,
        }
    }
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::Preflight(report) => write!(
                f,
                "input system rejected by lint pre-flight ({})",
                report.error_codes().join(", ")
            ),
            DseError::Resilience(err) => write!(f, "checkpoint/resume failed: {err}"),
        }
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Preflight(_) => None,
            DseError::Resilience(err) => Some(err),
        }
    }
}

/// Outcome of one exploration: the GA result, reports for the final Pareto
/// front, and the audit counters.
#[derive(Debug)]
pub struct DseOutcome {
    /// The raw GA result (archive, history, evaluation count).
    pub result: GaResult<Genome>,
    /// One report per front member, in front order.
    pub reports: Vec<DesignReport>,
    /// Cumulative audit statistics over the whole run.
    pub audit: AuditSnapshot,
    /// Evaluation-engine instrumentation (cache traffic, per-phase nanos,
    /// throughput) over the whole run.
    pub eval_stats: EvalStats,
    /// Scenario-analysis effort (Algorithm 1 enumeration, fast-path
    /// pruning and warm-start savings) over the whole run.
    pub analysis: AnalysisStats,
    /// The recorder the run traced into (a clone of `DseConfig::obs`,
    /// already flushed). Query its in-memory ring with
    /// [`Recorder::events`](mcmap_obs::Recorder::events) or render a
    /// profile with [`mcmap_obs::TraceProfile`].
    pub obs: Recorder,
    /// Whether the run was stopped before its generation budget was spent
    /// (cooperative stop flag, `stop_after_generation`, or a checkpoint
    /// write failure). The front/audit reflect the last completed
    /// generation; resuming from the checkpoint continues bit-identically.
    pub interrupted: bool,
    /// Candidates degraded to infeasible placeholders after their
    /// evaluation panicked through every retry.
    pub failures: Vec<EvalFailure>,
    /// When this run resumed from a checkpoint, the generation it was
    /// written at.
    pub resumed_from: Option<usize>,
}

impl DseOutcome {
    /// The lowest feasible power found, if any candidate was feasible.
    pub fn best_power(&self) -> Option<f64> {
        self.reports
            .iter()
            .filter(|r| r.feasible)
            .map(|r| r.power)
            .min_by(|a, b| a.partial_cmp(b).expect("power is finite"))
    }
}

/// Runs the full design-space exploration for one benchmark system.
///
/// # Panics
///
/// Panics when the input system fails the `mcmap-lint` pre-flight with
/// error-level diagnostics (the message cites the `MC0xxx` codes). Use
/// [`explore_checked`] to handle the typed [`DseError`] gracefully.
pub fn explore(apps: &AppSet, arch: &Architecture, cfg: DseConfig) -> DseOutcome {
    match explore_checked(apps, arch, cfg) {
        Ok(outcome) => outcome,
        Err(err) => panic!("explore: {err}; run `mcmap_cli lint` for details"),
    }
}

/// Runs [`explore`] after a mandatory `mcmap-lint` pre-flight.
///
/// The linter walks the application set and architecture (with the
/// exploration's hardening limits) before any GA work starts; if it reports
/// error-level diagnostics the exploration is refused and the full
/// [`mcmap_lint::LintReport`] is returned so callers can surface the same
/// `MC0xxx` codes the CLI prints. Warnings and hints do not block.
///
/// # Errors
///
/// Returns [`DseError::Preflight`] when the lint report contains at least
/// one error-level diagnostic.
pub fn explore_checked(
    apps: &AppSet,
    arch: &Architecture,
    cfg: DseConfig,
) -> Result<DseOutcome, DseError> {
    let obs = cfg.obs.clone();
    // Resume bookkeeping happens before any event is emitted: the resumed
    // process re-emits the deterministic trace preamble below (rebuilding
    // span parentage), then advances its sequence counter past the
    // checkpoint's high-water mark so part-2 events continue the stream.
    let resumed = match &cfg.resilience.resume {
        Some(path) => {
            let (ckpt, from_backup) =
                read_checkpoint_with_fallback(path).map_err(DseError::Resilience)?;
            let fingerprint = run_fingerprint(apps, arch, &cfg);
            if ckpt.fingerprint != fingerprint {
                return Err(DseError::Resilience(ResilienceError::ConfigMismatch {
                    path: path.clone(),
                    expected: ckpt.fingerprint,
                    actual: fingerprint,
                    diff: diff_config_summaries(&ckpt.config, &config_summary(apps, arch, &cfg)),
                }));
            }
            Some((ckpt, from_backup))
        }
        None => None,
    };
    let report = mcmap_lint::Linter::new(apps, arch)
        .with_limits(cfg.max_reexec, cfg.max_replicas)
        .lint();
    if obs.enabled() {
        obs.mark(
            "lint.preflight",
            &[
                ("passed", Value::from(!report.has_errors())),
                (
                    "errors",
                    Value::from(report.count(mcmap_lint::Severity::Error)),
                ),
                (
                    "warnings",
                    Value::from(report.count(mcmap_lint::Severity::Warning)),
                ),
                ("codes", Value::from(report.codes().join(","))),
            ],
        );
    }
    if report.has_errors() {
        obs.flush();
        return Err(DseError::Preflight(Box::new(report)));
    }
    let mut ga_cfg = cfg.ga.clone();
    ga_cfg.obs = obs.clone();
    // Thread count and cache capacity are speed knobs that must not leak
    // into the canonical trace, so the span's deterministic fields carry
    // only the problem shape and search budget.
    let mut span = obs.span(
        "dse.explore",
        &[
            ("apps", Value::from(apps.num_apps())),
            ("procs", Value::from(arch.num_processors())),
            ("population", Value::from(ga_cfg.population)),
            ("generations", Value::from(ga_cfg.generations)),
            ("seed", Value::from(ga_cfg.seed)),
            ("objectives", Value::from(format!("{:?}", cfg.objectives))),
            ("allow_dropping", Value::from(cfg.allow_dropping)),
            ("audit", Value::from(cfg.audit)),
        ],
    );
    let fingerprint = run_fingerprint(apps, arch, &cfg);
    let resilience = cfg.resilience.clone();
    let problem = MappingProblem::new(apps, arch, cfg);
    let mut resume_state = None;
    let mut resumed_from = None;
    if let Some((ckpt, from_backup)) = resumed {
        problem.restore_audit(&ckpt.audit);
        problem.set_next_batch(ckpt.generation as u64 + 1);
        if from_backup && obs.enabled() {
            // Suppressed from a resumed trace file (its seq sits below the
            // high-water mark) but visible in the in-memory ring.
            obs.mark(
                "resilience.recover",
                &[("generation", Value::from(ckpt.generation))],
            );
        }
        obs.advance_seq_to(ckpt.trace_seq);
        resumed_from = Some(ckpt.generation);
        resume_state = Some(ckpt.state);
    }
    let config = config_summary(apps, arch, &problem.cfg);
    let mut hook = CheckpointHook {
        problem: &problem,
        obs: obs.clone(),
        fingerprint,
        config,
        path: resilience.checkpoint,
        chaos: resilience.chaos,
        stop: resilience.stop,
        stop_after: resilience.stop_after_generation,
        stop_after_slice: resilience.stop_after_slice,
        boundaries: 0,
        error: None,
    };
    let result = optimize_resumable(&problem, &ga_cfg, resume_state, &mut hook);
    if let Some(err) = hook.error.take() {
        obs.flush();
        return Err(DseError::Resilience(err));
    }
    let reports: Vec<DesignReport> = result
        .front
        .iter()
        .map(|ind| problem.report(&ind.genotype))
        .collect();
    let audit = problem.audit();
    span.field("evaluations", result.evaluations);
    span.field("front_size", result.front.len());
    span.end();
    if obs.enabled() {
        obs.counter(
            "dse.audit",
            &[
                ("evaluated", Value::from(audit.evaluated)),
                ("feasible", Value::from(audit.feasible)),
                ("audited", Value::from(audit.audited)),
                (
                    "rescued_by_dropping",
                    Value::from(audit.rescued_by_dropping),
                ),
                ("reexecutions", Value::from(audit.reexecutions)),
                (
                    "active_replications",
                    Value::from(audit.active_replications),
                ),
                (
                    "passive_replications",
                    Value::from(audit.passive_replications),
                ),
            ],
        );
    }
    obs.flush();
    Ok(DseOutcome {
        audit,
        eval_stats: problem.eval_stats(),
        analysis: problem.analysis_stats(),
        reports,
        failures: problem.failures(),
        interrupted: result.interrupted,
        result,
        resumed_from,
        obs,
    })
}

/// The per-generation resilience hook: checkpoints the driver state at
/// every generation boundary and honors cooperative stop requests.
///
/// The `resilience.checkpoint` mark is emitted (and the trace flushed)
/// *before* the sequence high-water mark is captured, so the mark itself
/// is covered by the checkpoint it precedes — a resumed trace contains it
/// exactly once.
struct CheckpointHook<'p, 'a> {
    problem: &'p MappingProblem<'a>,
    obs: Recorder,
    fingerprint: u64,
    config: Vec<(String, String)>,
    path: Option<PathBuf>,
    chaos: Option<FaultPlan>,
    stop: Option<Arc<AtomicBool>>,
    stop_after: Option<usize>,
    stop_after_slice: Option<usize>,
    boundaries: usize,
    error: Option<ResilienceError>,
}

impl GenerationObserver<Genome> for CheckpointHook<'_, '_> {
    fn after_generation(&mut self, snap: &GenerationSnapshot<'_, Genome>) -> LoopControl {
        self.boundaries += 1;
        if let Some(path) = &self.path {
            if self.obs.enabled() {
                self.obs.mark(
                    "resilience.checkpoint",
                    &[("generation", Value::from(snap.generation))],
                );
            }
            self.obs.sync();
            let ckpt = DseCheckpoint {
                fingerprint: self.fingerprint,
                generation: snap.generation,
                trace_seq: self.obs.emitted(),
                state: snap.to_state(),
                audit: self.problem.audit(),
                config: self.config.clone(),
            };
            if let Err(err) = write_checkpoint(path, &ckpt) {
                // Losing durability silently would defeat the point of
                // checkpointing; stop at this (consistent) boundary and
                // surface the typed error instead.
                self.error = Some(err);
                return LoopControl::Stop;
            }
            if let Some(plan) = &self.chaos {
                if plan.truncate_checkpoint(snap.generation) {
                    // Simulate a torn write of the primary (the previous
                    // good checkpoint survived the rotation as `.bak`).
                    if let Ok(bytes) = std::fs::read(path) {
                        let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
                    }
                }
            }
        }
        let stop = self.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst))
            || self.stop_after.is_some_and(|k| snap.generation >= k)
            || self.stop_after_slice.is_some_and(|k| self.boundaries >= k);
        if stop {
            LoopControl::Stop
        } else {
            LoopControl::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_model::{Criticality, ExecBounds, ProcKind, Processor, Task, TaskGraph};

    fn small_system() -> (AppSet, Architecture) {
        let arch = Architecture::builder()
            .homogeneous(3, Processor::new("p", ProcKind::new(0), 5.0, 50.0, 1e-7))
            .build()
            .unwrap();
        let hi = TaskGraph::builder("hi", Time::from_ticks(1_000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1e-4,
            })
            .task(
                Task::new("h0")
                    .with_uniform_exec(
                        1,
                        ExecBounds::new(Time::from_ticks(40), Time::from_ticks(80)),
                    )
                    .with_detect_overhead(Time::from_ticks(4))
                    .with_voting_overhead(Time::from_ticks(4)),
            )
            .task(
                Task::new("h1")
                    .with_uniform_exec(
                        1,
                        ExecBounds::new(Time::from_ticks(40), Time::from_ticks(80)),
                    )
                    .with_detect_overhead(Time::from_ticks(4))
                    .with_voting_overhead(Time::from_ticks(4)),
            )
            .channel(0, 1, 16)
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(1_000))
            .criticality(Criticality::Droppable { service: 2.0 })
            .task(Task::new("l0").with_uniform_exec(
                1,
                ExecBounds::new(Time::from_ticks(50), Time::from_ticks(100)),
            ))
            .build()
            .unwrap();
        (AppSet::new(vec![hi, lo]).unwrap(), arch)
    }

    fn tiny_cfg() -> DseConfig {
        DseConfig {
            ga: GaConfig {
                population: 12,
                generations: 6,
                ..GaConfig::default()
            },
            repair_iters: 10,
            ..DseConfig::default()
        }
    }

    #[test]
    fn exploration_finds_feasible_designs() {
        let (apps, arch) = small_system();
        let outcome = explore(&apps, &arch, tiny_cfg());
        assert!(outcome.audit.evaluated > 0);
        assert!(
            outcome.best_power().is_some(),
            "the small system is easily feasible"
        );
        let best = outcome.best_power().unwrap();
        // At most 3 PEs fully loaded: sanity range.
        assert!(best > 0.0 && best < 3.0 * (5.0 + 50.0));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (apps, arch) = small_system();
        let problem = MappingProblem::new(&apps, &arch, tiny_cfg());
        let mut rng = StdRng::seed_from_u64(11);
        let g = problem.space().random(&mut rng);
        let a = problem.evaluate(&g);
        let b = problem.evaluate(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn disallowing_dropping_forces_empty_dropped_set() {
        let (apps, arch) = small_system();
        let cfg = DseConfig {
            allow_dropping: false,
            ..tiny_cfg()
        };
        let problem = MappingProblem::new(&apps, &arch, cfg);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = problem.space().random(&mut rng);
            let report = problem.report(&g);
            assert!(report.dropped.is_empty());
        }
    }

    #[test]
    fn audit_counts_accumulate() {
        let (apps, arch) = small_system();
        let cfg = DseConfig {
            audit: true,
            ..tiny_cfg()
        };
        let outcome = explore(&apps, &arch, cfg);
        let a = outcome.audit;
        assert_eq!(a.evaluated, outcome.result.evaluations);
        assert!(a.feasible <= a.evaluated);
        assert!(a.rescued_by_dropping <= a.audited);
        // Ratios are well-defined.
        assert!((0.0..=1.0).contains(&a.rescue_ratio()));
        assert!((0.0..=1.0).contains(&a.reexecution_share()));
    }

    #[test]
    fn bi_objective_mode_produces_two_dimensional_front() {
        let (apps, arch) = small_system();
        let cfg = DseConfig {
            objectives: ObjectiveMode::PowerService,
            ..tiny_cfg()
        };
        let outcome = explore(&apps, &arch, cfg);
        for ind in &outcome.result.front {
            assert_eq!(ind.eval.objectives.len(), 2);
        }
        // Keeping everything has lost service 0; dropping has positive lost
        // service but (usually) lower power — at minimum the reports are
        // internally consistent.
        for r in &outcome.reports {
            assert!((r.service + r.lost_service - apps.total_service()).abs() < 1e-9);
        }
    }

    #[test]
    fn preflight_accepts_clean_systems() {
        let (apps, arch) = small_system();
        let outcome = explore_checked(&apps, &arch, tiny_cfg());
        assert!(outcome.is_ok(), "the small system lints clean");
    }

    #[test]
    fn preflight_rejects_defective_systems_with_codes() {
        let (apps, arch) = small_system();
        for (broken, code) in [
            (mcmap_lint::inject::with_cycle(&apps), "MC0001"),
            (
                mcmap_lint::inject::with_unsatisfiable_reliability(&apps),
                "MC0101",
            ),
            (mcmap_lint::inject::with_inverted_bounds(&apps), "MC0005"),
        ] {
            let Err(err) = explore_checked(&broken, &arch, tiny_cfg()) else {
                panic!("the {code} defect must be refused before the GA starts");
            };
            let report = err
                .lint_report()
                .expect("pre-flight errors carry the report");
            assert!(report.has_errors());
            assert!(
                report.error_codes().contains(&code),
                "the refusal cites {code}: {:?}",
                report.error_codes()
            );
            assert!(
                err.to_string().contains(code),
                "the typed error renders the code: {err}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "MC0001")]
    fn explore_panics_citing_the_code() {
        let (apps, arch) = small_system();
        let broken = mcmap_lint::inject::with_cycle(&apps);
        let _ = explore(&broken, &arch, tiny_cfg());
    }

    #[test]
    fn cached_reevaluation_replays_audit_counters() {
        let (apps, arch) = small_system();
        let problem = MappingProblem::new(&apps, &arch, tiny_cfg());
        let mut rng = StdRng::seed_from_u64(23);
        let g = problem.space().random(&mut rng);
        let a = problem.evaluate(&g);
        let b = problem.evaluate(&g);
        assert_eq!(a, b);
        // The second call is a cache hit, yet both count as evaluations.
        assert_eq!(problem.audit().evaluated, 2);
        let stats = problem.eval_stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
    }

    #[test]
    fn batch_evaluation_matches_serial_for_any_thread_count() {
        let (apps, arch) = small_system();
        let problem = MappingProblem::new(&apps, &arch, tiny_cfg());
        let mut rng = StdRng::seed_from_u64(5);
        let genomes: Vec<Genome> = (0..10).map(|_| problem.space().random(&mut rng)).collect();
        let uncached = MappingProblem::new(
            &apps,
            &arch,
            DseConfig {
                cache_cap: 0,
                ..tiny_cfg()
            },
        );
        let reference = uncached.evaluate_batch(&genomes, 1);
        for threads in [1, 4] {
            let p = MappingProblem::new(&apps, &arch, tiny_cfg());
            assert_eq!(p.evaluate_batch(&genomes, threads), reference);
            assert_eq!(p.audit().evaluated, genomes.len());
        }
    }

    #[test]
    fn outcome_exposes_eval_stats() {
        let (apps, arch) = small_system();
        let outcome = explore(&apps, &arch, tiny_cfg());
        let s = &outcome.eval_stats;
        assert_eq!(s.genomes as usize, outcome.result.evaluations);
        // One batch per generation plus the initial population.
        assert_eq!(s.batches as usize, tiny_cfg().ga.generations + 1);
        assert!(
            s.cache_hits > 0,
            "a multi-generation run re-visits genomes: {s:?}"
        );
        assert!(s.to_json().contains("\"genomes\""));
    }

    #[test]
    fn tracing_emits_events_without_changing_results() {
        let (apps, arch) = small_system();
        let plain = explore(&apps, &arch, tiny_cfg());
        let traced = explore(
            &apps,
            &arch,
            DseConfig {
                obs: Recorder::ring(1 << 16),
                audit: true,
                ..tiny_cfg()
            },
        );
        let audited = explore(
            &apps,
            &arch,
            DseConfig {
                audit: true,
                ..tiny_cfg()
            },
        );
        // Tracing must not perturb the search.
        assert_eq!(plain.result.front.len(), traced.result.front.len());
        for (a, b) in plain.result.front.iter().zip(&traced.result.front) {
            assert_eq!(a.eval, b.eval);
        }
        assert_eq!(traced.audit, audited.audit);

        let events = traced.obs.events();
        for name in [
            "lint.preflight",
            "dse.explore",
            "ga.generation",
            "eval.batch",
            "sched.analyze",
            "dse.audit",
        ] {
            assert!(
                events.iter().any(|e| e.name == name),
                "missing {name} in trace"
            );
        }
        // One analyze event per submitted candidate, cache hit or miss.
        assert_eq!(
            events.iter().filter(|e| e.name == "sched.analyze").count(),
            traced.result.evaluations
        );
        // Sequence numbers are gapless from 1.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64 + 1);
        }
        // The untraced run records nothing.
        assert!(!plain.obs.enabled());
        assert!(plain.obs.events().is_empty());
    }

    #[test]
    fn delta_reuse_is_bit_identical_and_actually_reuses() {
        let (apps, arch) = small_system();
        // Mutation-heavy budget: many children are single-edit deltas of
        // their designated parents, so the parent store gets real traffic.
        let mk = |delta: bool| {
            let mut cfg = tiny_cfg();
            cfg.ga.mutation_rate = 0.9;
            cfg.ga.crossover_rate = 0.2;
            cfg.audit = true;
            cfg.delta = delta;
            cfg
        };
        let with = explore(&apps, &arch, mk(true));
        let without = explore(&apps, &arch, mk(false));
        // Results are bit-identical for any delta setting: fronts, audit,
        // and the deterministic (as-if-fresh) effort counters.
        assert_eq!(with.result.front.len(), without.result.front.len());
        for (a, b) in with.result.front.iter().zip(&without.result.front) {
            assert_eq!(a.eval, b.eval);
            assert_eq!(a.genotype, b.genotype);
        }
        assert_eq!(with.audit, without.audit);
        assert_eq!(with.analysis.candidates, without.analysis.candidates);
        assert_eq!(with.analysis.scenarios, without.analysis.scenarios);
        assert_eq!(with.analysis.backend_calls, without.analysis.backend_calls);
        assert_eq!(
            with.analysis.fixedpoint_iters,
            without.analysis.fixedpoint_iters
        );
        assert_eq!(
            with.analysis.warm_iters_saved,
            without.analysis.warm_iters_saved
        );
        // The disabled run records zero delta activity; the enabled run
        // must have genuinely reused backend work.
        assert_eq!(without.analysis.backend_reused, 0);
        assert_eq!(without.analysis.delta_reuses, 0);
        assert_eq!(without.analysis.delta_cold_fallbacks, 0);
        assert_eq!(without.analysis.affect_set_size, 0);
        assert!(
            with.analysis.backend_reused > 0,
            "delta must reuse backend runs: {:?}",
            with.analysis
        );
        assert!(with.analysis.delta_reuses > 0);
        // The report formats carry the delta counters.
        let json = with.analysis.to_json();
        let parsed = mcmap_obs::parse_json(&json).expect("analysis JSON parses");
        for key in [
            "backend_reused",
            "delta_reuses",
            "delta_cold_fallbacks",
            "affect_set_size",
        ] {
            assert!(parsed.get(key).is_some(), "missing {key} in {json}");
        }
        assert!(with.analysis.render_text().contains("cold fallbacks"));
    }

    #[test]
    fn analysis_stats_replay_identically_across_speed_knobs() {
        let (apps, arch) = small_system();
        let reference = explore(&apps, &arch, tiny_cfg());
        assert!(reference.analysis.candidates > 0);
        assert!(reference.analysis.scenarios > 0);
        // The deterministic effort counters must not shift with thread
        // count or cache capacity — cache hits replay their cached effort.
        for (threads, cache_cap) in [(4usize, 65_536usize), (1, 0), (3, 8)] {
            let mut cfg = tiny_cfg();
            cfg.ga.threads = threads;
            cfg.cache_cap = cache_cap;
            let run = explore(&apps, &arch, cfg);
            assert_eq!(
                (
                    run.analysis.candidates,
                    run.analysis.scenarios,
                    run.analysis.backend_calls,
                    run.analysis.fixedpoint_iters,
                    run.analysis.scenarios_pruned,
                    run.analysis.warm_iters_saved,
                ),
                (
                    reference.analysis.candidates,
                    reference.analysis.scenarios,
                    reference.analysis.backend_calls,
                    reference.analysis.fixedpoint_iters,
                    reference.analysis.scenarios_pruned,
                    reference.analysis.warm_iters_saved,
                ),
                "threads={threads} cache_cap={cache_cap}"
            );
        }
        // The reference enumeration performs at least as much backend work
        // and fronts stay identical with the fast path off.
        let mut cold_cfg = tiny_cfg();
        cold_cfg.analysis = AnalysisOptions::reference();
        let cold = explore(&apps, &arch, cold_cfg);
        assert_eq!(cold.analysis.scenarios_pruned, 0);
        assert_eq!(cold.analysis.warm_iters_saved, 0);
        assert!(cold.analysis.backend_calls >= reference.analysis.backend_calls);
        assert_eq!(cold.result.front.len(), reference.result.front.len());
        for (a, b) in cold.result.front.iter().zip(&reference.result.front) {
            assert_eq!(a.eval, b.eval);
            assert_eq!(a.genotype, b.genotype);
        }
        // The report formats carry the fast-path numbers.
        let text = reference.analysis.render_text();
        assert!(text.contains("backend calls"));
        assert!(text.contains("scenarios pruned"));
        let json = reference.analysis.to_json();
        let parsed = mcmap_obs::parse_json(&json).expect("analysis JSON parses");
        assert_eq!(
            parsed
                .get("backend_calls")
                .and_then(mcmap_obs::Json::as_u64),
            Some(reference.analysis.backend_calls)
        );
        assert!(parsed.get("prune_rate").is_some());
    }

    #[test]
    fn audit_snapshot_renders_text_and_json() {
        let (apps, arch) = small_system();
        let outcome = explore(
            &apps,
            &arch,
            DseConfig {
                audit: true,
                ..tiny_cfg()
            },
        );
        let text = outcome.audit.render_text();
        assert!(text.contains("evaluated"));
        assert!(text.contains("rescued by dropping"));
        let json = outcome.audit.to_json();
        let parsed = mcmap_obs::parse_json(&json).expect("audit JSON parses");
        assert_eq!(
            parsed.get("evaluated").and_then(mcmap_obs::Json::as_u64),
            Some(outcome.audit.evaluated as u64)
        );
        assert!(parsed.get("rescue_ratio").is_some());
    }

    #[test]
    fn slice_scheduling_reconverges_to_the_uninterrupted_run() {
        let (apps, arch) = small_system();
        let solo = explore(&apps, &arch, tiny_cfg());
        let path =
            std::env::temp_dir().join(format!("mcmap_dse_slice_test_{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Drive the same run as a chain of one-boundary slices, the way a
        // job server timeslices tenants: each slice resumes the previous
        // checkpoint, observes exactly one generation boundary, and stops.
        let mut slices = 0;
        let mut resume = None;
        loop {
            let mut cfg = tiny_cfg();
            cfg.resilience.checkpoint = Some(path.clone());
            cfg.resilience.resume = resume.clone();
            cfg.resilience.stop_after_slice = Some(1);
            let out = explore(&apps, &arch, cfg);
            slices += 1;
            assert!(slices <= tiny_cfg().ga.generations + 1, "must terminate");
            if !out.interrupted {
                assert_eq!(
                    format!("{:?}", out.reports),
                    format!("{:?}", solo.reports),
                    "sliced run must reproduce the solo front"
                );
                assert_eq!(out.audit, solo.audit);
                break;
            }
            resume = Some(path.clone());
        }
        // One boundary per slice: initial population + one per generation.
        assert_eq!(slices, tiny_cfg().ga.generations + 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(mcmap_resilience::backup_path(&path));
    }

    #[test]
    fn shared_cache_dedupes_identical_runs_without_changing_results() {
        let (apps, arch) = small_system();
        let shared = SharedEvalCache::with_capacity(65_536);
        let mk = || DseConfig {
            shared_cache: Some(shared.clone()),
            ..tiny_cfg()
        };
        let first = explore(&apps, &arch, mk());
        let second = explore(&apps, &arch, mk());
        assert_eq!(
            format!("{:?}", second.reports),
            format!("{:?}", first.reports),
            "a warm shared cache must not perturb results"
        );
        assert_eq!(second.audit, first.audit);
        // The second tenant's identical run resolves entirely from the
        // first tenant's work.
        assert_eq!(second.eval_stats.cache_misses, 0);
        assert_eq!(second.eval_stats.cache_hits, second.eval_stats.genomes);
        let g = shared.stats();
        assert!(g.hits >= second.eval_stats.cache_hits);
        assert_eq!(g.insertions, first.eval_stats.cache_misses);
        assert!(g.entries > 0);
    }

    #[test]
    fn config_mismatch_on_resume_names_the_diverging_fields() {
        let (apps, arch) = small_system();
        let path = std::env::temp_dir().join(format!(
            "mcmap_dse_mismatch_test_{}.ckpt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut cfg = tiny_cfg();
        cfg.resilience.checkpoint = Some(path.clone());
        cfg.resilience.stop_after_generation = Some(1);
        let _ = explore(&apps, &arch, cfg);

        let mut resumed = tiny_cfg();
        resumed.ga.population = 24;
        resumed.ga.seed = 99;
        resumed.resilience.resume = Some(path.clone());
        let err = explore_checked(&apps, &arch, resumed).expect_err("mismatch must refuse");
        let Some(ResilienceError::ConfigMismatch { diff, .. }) = err.resilience() else {
            panic!("expected ConfigMismatch, got {err}");
        };
        assert!(
            diff.iter().any(|d| d.starts_with("ga.population:")),
            "diff names the population change: {diff:?}"
        );
        assert!(
            diff.iter().any(|d| d.starts_with("ga.seed:")),
            "diff names the seed change: {diff:?}"
        );
        assert!(
            !diff.iter().any(|d| d.starts_with("ga.generations:")),
            "unchanged fields stay out of the diff: {diff:?}"
        );
        let rendered = err.to_string();
        assert!(rendered.contains("mismatching fields"));
        assert!(rendered.contains("ga.seed"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(mcmap_resilience::backup_path(&path));
    }

    #[test]
    fn reports_expose_wcrt_per_app() {
        let (apps, arch) = small_system();
        let problem = MappingProblem::new(&apps, &arch, tiny_cfg());
        let mut rng = StdRng::seed_from_u64(17);
        let g = problem.space().random(&mut rng);
        let report = problem.report(&g);
        assert_eq!(report.app_wcrt.len(), 2);
        if report.feasible {
            for (a, wcrt) in apps.app_ids().zip(&report.app_wcrt) {
                if !report.dropped.contains(&a) {
                    assert!(*wcrt <= apps.app(a).deadline());
                }
            }
        }
    }
}
