//! Mixed-criticality, fault-tolerance-aware WCRT analysis.
//!
//! This module is the heart of the reproduction: Algorithm 1 of the paper
//! ([`proposed_analysis`]) together with the two static comparison points of
//! §5.1, [`naive_analysis`] and [`adhoc_analysis`].
//!
//! All three are *wrappers* over a pluggable [`SchedBackend`]; the proposed
//! analysis enumerates the possible normal→critical state transitions and
//! re-runs the backend with per-task execution bounds modified according to
//! the chronological information of each transition, which is exactly what
//! removes the pessimism of the naive treatment.

use mcmap_eval::parallel_map;
use mcmap_hardening::{HTaskId, HardenedSystem};
use mcmap_model::{AppId, Architecture, ExecBounds, Time};
use mcmap_sched::{
    nominal_bounds, HolisticAnalysis, Mapping, SchedBackend, SchedPolicy, TaskWindows,
};
use mcmap_sim::{ExhaustiveReexecution, SimConfig, Simulator};
use std::collections::HashMap;

/// Tuning knobs of the scenario-level WCRT fast path.
///
/// Every combination of knobs produces **bit-identical** [`McAnalysis`]
/// windows and verdicts (see `DESIGN.md` §15 for the argument); the knobs
/// only trade wall time for backend work, so they are deliberately *not*
/// part of any result fingerprint. The exceptions are the effort counters
/// ([`McAnalysis::backend_calls`], [`McAnalysis::fixedpoint_iters`],
/// [`McAnalysis::scenarios_pruned`], [`McAnalysis::warm_iters_saved`]),
/// which report the work *actually performed* and therefore change — still
/// deterministically — with `warm_start`/`prune` (never with
/// `scenario_threads`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Seed each scenario fixed point from the normal-state solution
    /// whenever the scenario's bounds pointwise contain the normal-state
    /// bounds ([`SchedBackend::analyze_from`]).
    pub warm_start: bool,
    /// Skip backend runs for scenarios whose bound vector is pointwise
    /// dominated by another scenario's: by backend monotonicity the
    /// dominating run's windows contain the dominated one's, so folding the
    /// dominated scenario into the worst case is a no-op.
    pub prune: bool,
    /// Worker threads for independent scenario runs of one candidate
    /// (`<= 1` runs inline). Results are order-preserved and identical for
    /// any thread count.
    pub scenario_threads: usize,
}

impl Default for AnalysisOptions {
    /// The fast path: warm starts and pruning on, serial scenario runs.
    fn default() -> Self {
        Self {
            warm_start: true,
            prune: true,
            scenario_threads: 1,
        }
    }
}

impl AnalysisOptions {
    /// The cold, prune-free reference enumeration — one cold backend run
    /// per distinct scenario, exactly the pre-fast-path behavior. Used by
    /// the equivalence proptests and the `wcrt_analysis` bench baseline.
    pub fn reference() -> Self {
        Self {
            warm_start: false,
            prune: false,
            scenario_threads: 1,
        }
    }
}

/// `true` when every `[bcet, wcet]` interval of `a` contains the
/// corresponding interval of `b` — the pointwise-dominance order of the
/// scenario fast path (`a` dominates `b`).
fn dominates(a: &[ExecBounds], b: &[ExecBounds]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| x.bcet <= y.bcet && x.wcet >= y.wcet)
}

/// The reusable fixed-point solutions of one candidate's analysis: the
/// normal-state run plus every scenario run the backend actually performed,
/// each keyed by the exact bound vector it solved.
///
/// Captured by [`proposed_analysis_delta`] / [`analyze_delta`] and fed back
/// as the `parent` of a later analysis. A solution is reused **only** when
/// its bound vector is bit-equal to the one the child is about to solve —
/// and scenario solutions additionally require the normal-state vectors to
/// coincide *and* the stored warm-gate decision to match the child's,
/// because a warm-started run's iteration counters depend on the seeding
/// solution. The caller must guarantee the parent solutions were
/// produced by an identically-behaving backend (same hardened system,
/// architecture, mapping, and policies); the DSE establishes this by
/// checking repaired-genome gene equality before attaching a parent.
///
/// Under those gates the backend — a deterministic pure function of its
/// bound vector (and warm seed) — would return exactly the stored windows,
/// *including* `outer_iters`, so every deterministic effort counter of the
/// resulting [`McAnalysis`] keeps its as-if-freshly-computed value, even
/// when the parent was analyzed under different [`AnalysisOptions`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisSolutions {
    /// The normal-state bound vector the `normal` solution solves.
    pub normal_bounds: Vec<ExecBounds>,
    /// The normal-state fixed-point solution.
    pub normal: TaskWindows,
    /// Every scenario run performed: `(bound vector, solution, warmed)`,
    /// where `warmed` records whether the run was warm-started from the
    /// normal-state solution.
    pub runs: Vec<(Vec<ExecBounds>, TaskWindows, bool)>,
}

impl AnalysisSolutions {
    /// Folds `extra`'s scenario runs into `self`, skipping runs whose
    /// `(bound vector, warmed)` key is already present. A no-op when the
    /// normal-state vectors differ (the sets then stem from different
    /// systems and must not be mixed). Callers must uphold the same
    /// same-backend obligation as [`proposed_analysis_delta`]'s `parent`:
    /// under it, equal keys imply bit-equal windows, so merging variants
    /// of one phenotype (e.g. across dropped sets) is lossless.
    pub fn absorb(&mut self, extra: &AnalysisSolutions) {
        if self.normal_bounds != extra.normal_bounds {
            return;
        }
        for (v, w, warmed) in &extra.runs {
            if !self.runs.iter().any(|(v2, _, w2)| v2 == v && w2 == warmed) {
                self.runs.push((v.clone(), w.clone(), *warmed));
            }
        }
    }
}

/// Result of the mixed-criticality analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct McAnalysis {
    /// Windows of the fault-free (normal) state: passive replicas pinned to
    /// `[0, 0]`, no re-executions, nothing dropped.
    pub normal: TaskWindows,
    /// Per-task worst case over the normal state **and** every possible
    /// state transition (the return value of Algorithm 1, computed for all
    /// tasks at once).
    pub worst: TaskWindows,
    /// Number of transition scenarios analyzed (one per trigger task).
    pub scenarios: usize,
    /// Number of backend invocations actually performed: the normal-state
    /// run plus one per *distinct, non-pruned* scenario bound-vector —
    /// triggers whose transitions classify every task identically share one
    /// run, and dominated vectors are skipped entirely when pruning is on.
    pub backend_calls: usize,
    /// Per analyzed scenario: the trigger task and the per-application
    /// worst-case response times of that scenario (diagnostic only). For a
    /// pruned scenario these are the *dominating* run's response times — a
    /// safe upper bound on the scenario's own.
    pub scenario_app_wcrt: Vec<(HTaskId, Vec<Time>)>,
    /// Task classifications across all transition scenarios: completed
    /// before the fault could occur (normal bounds kept).
    pub class_normal: usize,
    /// Classifications: certainly dropped (`[0, 0]`).
    pub class_dropped: usize,
    /// Classifications: in transition — maybe dropped (`[0, wcet]`).
    pub class_transition: usize,
    /// Classifications: critical (Eq. 1 bounds), including the triggers.
    pub class_critical: usize,
    /// Total fixed-point iterations across the normal-state run and every
    /// *distinct* scenario the backend actually analyzed.
    pub fixedpoint_iters: usize,
    /// Distinct scenario bound-vectors whose backend run was skipped
    /// because another analyzed scenario pointwise dominates them (their
    /// windows are bounded by — and their diagnostics taken from — the
    /// dominating run). Always 0 with [`AnalysisOptions::reference`].
    pub scenarios_pruned: usize,
    /// Estimated fixed-point sweeps avoided by warm-starting scenario runs
    /// from the normal-state solution, using the normal-state run's
    /// iteration count as the cold-run proxy (a cold scenario run starts
    /// from the same floor). Deterministic; 0 when warm starts are off.
    pub warm_iters_saved: usize,
}

impl McAnalysis {
    /// Worst-case response time of an application under the
    /// mixed-criticality protocol: applications in the dropped set only
    /// answer for their *normal-state* response (once dropped they provide
    /// no service and have no deadline to meet); everything else answers
    /// over all scenarios.
    pub fn app_wcrt(&self, hsys: &HardenedSystem, app: AppId, dropped: &[AppId]) -> Time {
        if dropped.contains(&app) {
            self.normal.app_wcrt(hsys, app)
        } else {
            self.worst.app_wcrt(hsys, app)
        }
    }

    /// The trigger task whose transition scenario produces the largest
    /// response time for `app` — `None` when the fault-free state already
    /// binds the WCRT (or the app has no tasks). Useful for explaining a
    /// design: "the binding fault is in `wheel_pulse`".
    pub fn binding_trigger(&self, hsys: &HardenedSystem, app: AppId) -> Option<HTaskId> {
        let normal = self.normal.app_wcrt(hsys, app);
        self.scenario_app_wcrt
            .iter()
            .map(|(trigger, wcrt)| (*trigger, wcrt[app.index()]))
            .filter(|&(_, w)| w > normal)
            .max_by_key(|&(_, w)| w)
            .map(|(trigger, _)| trigger)
    }

    /// `true` when every application meets its deadline under the protocol
    /// (dropped applications in the normal state, all others in every
    /// scenario).
    pub fn schedulable(&self, hsys: &HardenedSystem, dropped: &[AppId]) -> bool {
        self.normal.converged
            && self.worst.converged
            && hsys
                .apps()
                .iter()
                .all(|happ| self.app_wcrt(hsys, happ.app, dropped) <= happ.deadline)
    }
}

/// Execution bounds of the normal (fault-free) state: nominal bounds with
/// passive replicas pinned to `[0, 0]` (Algorithm 1, lines 2–6).
pub fn normal_state_bounds(hsys: &HardenedSystem, nominal: &[ExecBounds]) -> Vec<ExecBounds> {
    let mut bounds = nominal.to_vec();
    for (id, t) in hsys.tasks() {
        if t.is_passive() {
            bounds[id.index()] = ExecBounds::ZERO;
        }
    }
    bounds
}

/// Critical-state WCET of a task on its mapped processor: Eq. (1).
fn critical_wcet(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    id: HTaskId,
) -> Time {
    let kind = arch.processor(mapping.proc_of(id)).kind;
    hsys.task(id)
        .critical_wcet(kind)
        .expect("mapped processors are kind-compatible")
}

/// **Algorithm 1** of the paper, generic over the schedulability backend.
///
/// For every task `v` that may trigger a normal→critical transition
/// (re-execution hardened or passively replicated), the bounds of every
/// other task `w` are rewritten based on the *normal-state* windows:
///
/// * `maxFinish_w < minStart_v` — `w` completed before the first fault
///   could occur: normal bounds (passive replicas stay `[0, 0]`);
/// * otherwise, if `w` belongs to a dropped application:
///   `minStart_w > maxFinish_v` — certainly dropped, `[0, 0]`; else in
///   transition, `[0, wcet_w]`;
/// * otherwise (non-droppable in the critical state): `[bcet_w, Eq. (1)]`
///   (passive replicas get `[0, Eq. (1)]` — they may or may not be
///   invoked).
///
/// The trigger `v` itself executes through its fault: `[bcet_v, Eq. (1)]`.
///
/// Returns the per-task maximum over the normal state and all transitions.
///
/// Runs with the default [`AnalysisOptions`] (the fast path); see
/// [`proposed_analysis_with`] to pick different knobs.
pub fn proposed_analysis<B: SchedBackend + Sync + ?Sized>(
    backend: &B,
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    nominal: &[ExecBounds],
    dropped: &[AppId],
) -> McAnalysis {
    proposed_analysis_with(
        backend,
        hsys,
        arch,
        mapping,
        nominal,
        dropped,
        AnalysisOptions::default(),
    )
}

/// [`proposed_analysis`] with explicit fast-path knobs.
///
/// The enumeration runs in three deterministic stages: (1) classify every
/// trigger's transition scenario into a bound vector and deduplicate the
/// vectors (borrowed-slice lookups — the scratch vector is only cloned into
/// the table on a miss); (2) when pruning is on, drop every vector that is
/// pointwise dominated by another and remember its first *maximal*
/// dominator; (3) run the backend once per surviving vector — warm-started
/// from the normal-state solution when the vector contains the normal-state
/// bounds — optionally fanned out over the order-preserving worker pool,
/// then fold the worst case and resolve per-scenario diagnostics (pruned
/// scenarios report their dominator's windows).
pub fn proposed_analysis_with<B: SchedBackend + Sync + ?Sized>(
    backend: &B,
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    nominal: &[ExecBounds],
    dropped: &[AppId],
    opts: AnalysisOptions,
) -> McAnalysis {
    proposed_analysis_delta(backend, hsys, arch, mapping, nominal, dropped, opts, None).0
}

/// [`proposed_analysis_with`] with incremental solution reuse.
///
/// In addition to the [`McAnalysis`], returns the candidate's own
/// [`AnalysisSolutions`] (for reuse by *its* children) and the number of
/// backend runs satisfied from `parent` instead of being recomputed. The
/// result — every field of the `McAnalysis`, including all deterministic
/// effort counters — is **bit-identical** with or without a parent; reuse
/// only skips recomputing values the bit-equality gates prove equal (see
/// [`AnalysisSolutions`] for the argument and the caller obligation).
#[allow(clippy::too_many_arguments)]
pub fn proposed_analysis_delta<B: SchedBackend + Sync + ?Sized>(
    backend: &B,
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    nominal: &[ExecBounds],
    dropped: &[AppId],
    opts: AnalysisOptions,
    parent: Option<&AnalysisSolutions>,
) -> (McAnalysis, AnalysisSolutions, usize) {
    let n = hsys.num_tasks();
    assert_eq!(nominal.len(), n, "one bound per hardened task required");

    let normal_bounds = normal_state_bounds(hsys, nominal);
    // The parent's solutions apply only when the normal-state vectors
    // coincide bit-for-bit; scenario reuse is gated on the same check
    // because warm-started runs are seeded from the normal solution.
    let reusable = parent.filter(|p| p.normal_bounds == normal_bounds);
    let (normal, normal_reused) = match reusable {
        Some(p) => (p.normal.clone(), true),
        None => (backend.analyze(&normal_bounds), false),
    };

    let mut scenarios = 0usize;
    let mut class_normal = 0usize;
    let mut class_dropped = 0usize;
    let mut class_transition = 0usize;
    let mut class_critical = 0usize;
    // Distinct bound-vectors, in first-occurrence order. Two triggers with
    // identical windows produce identical scenarios; analyzing one suffices.
    let mut index_of: HashMap<Vec<ExecBounds>, usize> = HashMap::new();
    let mut distinct: Vec<Vec<ExecBounds>> = Vec::new();
    // Per scenario: the trigger and its distinct-vector index.
    let mut scenario_vec: Vec<(HTaskId, usize)> = Vec::new();
    let mut scratch = vec![ExecBounds::ZERO; n];

    for (v, vt) in hsys.tasks() {
        if !vt.is_trigger() {
            continue;
        }
        scenarios += 1;
        let v_min_start = normal.min_start[v.index()];
        let v_max_finish = normal.max_finish[v.index()];

        for (w, wt) in hsys.tasks() {
            if w == v {
                // The trigger executes through its fault: full re-execution
                // budget (Eq. 1). A passive trigger is invoked and runs.
                // Exception: a trigger belonging to a *dropped* application
                // is discarded instead of re-executed the moment its fault
                // is detected — it runs at most its nominal execution.
                let wcet = if dropped.contains(&wt.app) {
                    nominal[w.index()].wcet
                } else {
                    critical_wcet(hsys, arch, mapping, v)
                };
                scratch[w.index()] = ExecBounds::new(
                    if wt.is_passive() || dropped.contains(&wt.app) {
                        Time::ZERO
                    } else {
                        nominal[w.index()].bcet
                    },
                    wcet,
                );
                class_critical += 1;
                continue;
            }
            let w_normal = normal_bounds[w.index()];
            if normal.max_finish[w.index()] < v_min_start {
                // Completed before the fault: normal state.
                scratch[w.index()] = w_normal;
                class_normal += 1;
            } else if dropped.contains(&wt.app) {
                if normal.min_start[w.index()] > v_max_finish {
                    // Starts after the transition completed: never released.
                    scratch[w.index()] = ExecBounds::ZERO;
                    class_dropped += 1;
                } else {
                    // Transition: either executed or dropped.
                    scratch[w.index()] = ExecBounds::new(Time::ZERO, nominal[w.index()].wcet);
                    class_transition += 1;
                }
            } else {
                class_critical += 1;
                // Critical, non-droppable: may re-execute (Eq. 1); passive
                // replicas may or may not be invoked.
                let bcet = if wt.is_passive() {
                    Time::ZERO
                } else {
                    nominal[w.index()].bcet
                };
                scratch[w.index()] = ExecBounds::new(bcet, critical_wcet(hsys, arch, mapping, w));
            }
        }

        // Borrowed lookup first; the scratch vector is cloned only when the
        // vector has not been seen before.
        let di = match index_of.get(scratch.as_slice()) {
            Some(&i) => i,
            None => {
                let i = distinct.len();
                distinct.push(scratch.clone());
                index_of.insert(scratch.clone(), i);
                i
            }
        };
        scenario_vec.push((v, di));
    }
    drop(index_of);

    // Dominance pruning: a vector pointwise dominated by another needs no
    // backend run — by monotonicity the dominating run's windows contain
    // its own, so its fold into the worst case is a no-op. Dominance over
    // *distinct* vectors is a strict partial order (mutual dominance would
    // mean equality), so every dominated vector has a maximal dominator.
    let m = distinct.len();
    let mut maximal = vec![true; m];
    if opts.prune {
        for i in 0..m {
            maximal[i] = !(0..m).any(|j| j != i && dominates(&distinct[j], &distinct[i]));
        }
    }
    let to_run: Vec<usize> = (0..m).filter(|&i| maximal[i]).collect();

    // Backend runs for the surviving vectors, warm-started from the
    // normal-state solution whenever the scenario's bounds pointwise
    // contain the normal-state bounds (the `analyze_from` contract; the
    // gate fails exactly for scenarios with certainly-dropped `[0, 0]`
    // tasks). Identical results for any thread count: the pool preserves
    // order and each run is a pure function of its vector.
    // A stored solution is reused only when its recorded warm-gate decision
    // matches the one this run would make — then the fresh invocation would
    // be the identical pure-function call, so the stored windows (including
    // `outer_iters`, and with it `warm_iters_saved`) keep their
    // as-if-freshly-computed values.
    let run_one = |&i: &usize| -> (TaskWindows, bool, bool) {
        let b = &distinct[i];
        let warmed = opts.warm_start && normal.converged && dominates(b, &normal_bounds);
        let stored = reusable.and_then(|p| {
            p.runs
                .iter()
                .find(|(v, _, was_warmed)| v == b && *was_warmed == warmed)
                .map(|(_, w, _)| w.clone())
        });
        match stored {
            Some(w) => (w, warmed, true),
            None if warmed => (backend.analyze_from(b, &normal), true, false),
            None => (backend.analyze(b), false, false),
        }
    };
    let results: Vec<(TaskWindows, bool, bool)> = if opts.scenario_threads > 1 && to_run.len() > 1 {
        parallel_map(&to_run, opts.scenario_threads, run_one)
    } else {
        to_run.iter().map(run_one).collect()
    };
    let backend_reused =
        usize::from(normal_reused) + results.iter().filter(|(_, _, reused)| *reused).count();

    // Fold the worst case over the runs actually performed and resolve the
    // windows each distinct vector is bounded by.
    let mut worst = normal.clone();
    let mut fixedpoint_iters = normal.outer_iters;
    let mut warm_iters_saved = 0usize;
    let mut resolved: Vec<Option<usize>> = vec![None; m];
    for (k, &i) in to_run.iter().enumerate() {
        let (windows, warmed, _) = &results[k];
        fixedpoint_iters += windows.outer_iters;
        if *warmed {
            warm_iters_saved += normal.outer_iters.saturating_sub(windows.outer_iters);
        }
        worst.converged &= windows.converged;
        for t in 0..n {
            worst.max_finish[t] = worst.max_finish[t].max(windows.max_finish[t]);
            worst.min_start[t] = worst.min_start[t].min(windows.min_start[t]);
        }
        resolved[i] = Some(k);
    }
    for i in 0..m {
        if resolved[i].is_none() {
            let dominator = to_run
                .iter()
                .position(|&j| dominates(&distinct[j], &distinct[i]))
                .expect("every pruned vector has a maximal dominator");
            resolved[i] = Some(dominator);
        }
    }

    let scenario_app_wcrt = scenario_vec
        .iter()
        .map(|&(v, di)| {
            let windows = &results[resolved[di].expect("all vectors resolved")].0;
            (
                v,
                hsys.apps()
                    .iter()
                    .map(|happ| windows.app_wcrt(hsys, happ.app))
                    .collect(),
            )
        })
        .collect();

    let solutions = AnalysisSolutions {
        runs: to_run
            .iter()
            .enumerate()
            .map(|(k, &i)| (distinct[i].clone(), results[k].0.clone(), results[k].1))
            .collect(),
        normal: normal.clone(),
        normal_bounds,
    };

    let mc = McAnalysis {
        normal,
        worst,
        scenarios,
        backend_calls: 1 + to_run.len(),
        scenario_app_wcrt,
        class_normal,
        class_dropped,
        class_transition,
        class_critical,
        fixedpoint_iters,
        scenarios_pruned: m - to_run.len(),
        warm_iters_saved,
    };
    (mc, solutions, backend_reused)
}

/// The **Naive** analysis of §3/§5.1: a single backend run where every task
/// of a dropped application gets `[0, wcet]`, every other task gets its full
/// critical-state bounds (`[bcet, Eq. (1)]`, passive replicas `[0, Eq. (1)]`).
/// Safe but pessimistic — it ignores all chronological information.
pub fn naive_analysis<B: SchedBackend + ?Sized>(
    backend: &B,
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    nominal: &[ExecBounds],
    dropped: &[AppId],
) -> TaskWindows {
    let bounds: Vec<ExecBounds> = hsys
        .tasks()
        .map(|(w, wt)| {
            if dropped.contains(&wt.app) {
                ExecBounds::new(Time::ZERO, nominal[w.index()].wcet)
            } else {
                let bcet = if wt.is_passive() {
                    Time::ZERO
                } else {
                    nominal[w.index()].bcet
                };
                ExecBounds::new(bcet, critical_wcet(hsys, arch, mapping, w))
            }
        })
        .collect();
    backend.analyze(&bounds)
}

/// The **Adhoc** estimator of §5.1: an artificial worst-case *scheduling
/// trace* (not an analysis) where the system is critical from the beginning
/// of the hyperperiod, every re-execution-hardened task is maximally
/// re-executed, and dropped applications never release work. The paper uses
/// it to show that such hand-built traces are **not** safe bounds.
///
/// Returns the per-application observed response times.
pub fn adhoc_analysis(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    policies: &[SchedPolicy],
    dropped: &[AppId],
) -> Vec<Time> {
    let sim = Simulator::new(hsys, arch, mapping, policies.to_vec());
    let cfg = SimConfig {
        dropped: dropped.to_vec(),
        start_critical: true,
        ..SimConfig::default()
    };
    let mut faults = ExhaustiveReexecution::new(hsys);
    sim.run(&cfg, &mut faults).app_wcrt
}

/// Convenience wrapper running [`proposed_analysis`] with the library's
/// holistic backend.
pub fn analyze(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    policies: &[SchedPolicy],
    dropped: &[AppId],
) -> McAnalysis {
    analyze_with(
        hsys,
        arch,
        mapping,
        policies,
        dropped,
        AnalysisOptions::default(),
    )
}

/// [`analyze`] with explicit [`AnalysisOptions`] — the entry point the DSE
/// uses to honor `--no-warm-start`/`--no-prune`/`--scenario-threads`.
pub fn analyze_with(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    policies: &[SchedPolicy],
    dropped: &[AppId],
    opts: AnalysisOptions,
) -> McAnalysis {
    analyze_delta(hsys, arch, mapping, policies, dropped, opts, None).0
}

/// [`analyze_with`] with incremental solution reuse: runs the holistic
/// backend, feeding in a parent candidate's [`AnalysisSolutions`] when one
/// is available, and returns this candidate's own solutions plus the number
/// of backend runs reused. Bit-identical to [`analyze_with`] for any
/// `parent` (see [`AnalysisSolutions`]); the caller must only attach a
/// parent whose hardened system, mapping, and policies coincide.
pub fn analyze_delta(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    policies: &[SchedPolicy],
    dropped: &[AppId],
    opts: AnalysisOptions,
    parent: Option<&AnalysisSolutions>,
) -> (McAnalysis, AnalysisSolutions, usize) {
    let backend = HolisticAnalysis::new(hsys, arch, mapping, policies.to_vec());
    let nominal = nominal_bounds(hsys, arch, mapping);
    proposed_analysis_delta(
        &backend, hsys, arch, mapping, &nominal, dropped, opts, parent,
    )
}

/// Convenience wrapper running [`naive_analysis`] with the library's
/// holistic backend.
pub fn analyze_naive(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    policies: &[SchedPolicy],
    dropped: &[AppId],
) -> TaskWindows {
    let backend = HolisticAnalysis::new(hsys, arch, mapping, policies.to_vec());
    let nominal = nominal_bounds(hsys, arch, mapping);
    naive_analysis(&backend, hsys, arch, mapping, &nominal, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{
        AppSet, Criticality, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph,
    };
    use mcmap_sched::uniform_policies;

    fn arch(n: usize) -> Architecture {
        Architecture::builder()
            .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap()
    }

    fn task(name: &str, bcet: u64, wcet: u64) -> Task {
        Task::new(name)
            .with_uniform_exec(
                1,
                ExecBounds::new(Time::from_ticks(bcet), Time::from_ticks(wcet)),
            )
            .with_detect_overhead(Time::from_ticks(2))
    }

    /// hi: one re-executed task (wcet 30, k=1); lo: droppable task (wcet 20),
    /// both on one PE, periods 200.
    pub(super) fn mixed_system(
        drop_lo: bool,
    ) -> (
        Architecture,
        HardenedSystem,
        Mapping,
        Vec<SchedPolicy>,
        Vec<AppId>,
    ) {
        let hi = TaskGraph::builder("hi", Time::from_ticks(200))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1.0,
            })
            .task(task("h", 30, 30))
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(200))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(task("l", 20, 20))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![hi, lo]).unwrap();
        let arch = arch(1);
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0); 2]).unwrap();
        let policies = uniform_policies(1, SchedPolicy::FixedPriorityPreemptive);
        let dropped = if drop_lo { vec![AppId::new(1)] } else { vec![] };
        (arch, hsys, mapping, policies, dropped)
    }

    #[test]
    fn normal_state_pins_passive_replicas_to_zero() {
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(
                Task::new("a")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10)))
                    .with_voting_overhead(Time::from_ticks(1)),
            )
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let arch = arch(3);
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::passive(vec![ProcId::new(1)], vec![ProcId::new(2)], ProcId::new(0)),
        );
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(
            &hsys,
            &arch,
            hsys.tasks()
                .map(|(_, t)| t.fixed_proc.unwrap_or(ProcId::new(0)))
                .collect(),
        )
        .unwrap();
        let nominal = nominal_bounds(&hsys, &arch, &mapping);
        let bounds = normal_state_bounds(&hsys, &nominal);
        let passive = hsys
            .tasks()
            .find(|(_, t)| t.is_passive())
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(bounds[passive.index()], ExecBounds::ZERO);
        // Non-passive tasks keep their nominal bounds.
        assert_eq!(bounds[0], nominal[0]);
    }

    #[test]
    fn proposed_covers_reexecution_worst_case() {
        let (arch, hsys, mapping, policies, dropped) = mixed_system(false);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
        assert_eq!(mc.scenarios, 1);
        // hi normal: 32 (wcet+dt); critical: 64.
        let hi_wcrt = mc.app_wcrt(&hsys, AppId::new(0), &dropped);
        assert!(hi_wcrt >= Time::from_ticks(64), "got {hi_wcrt}");
        // Normal state is tighter than the merged worst case.
        assert!(mc.normal.app_wcrt(&hsys, AppId::new(0)) < hi_wcrt);
        // The binding fault is attributed to the (only) re-executed task.
        assert_eq!(
            mc.binding_trigger(&hsys, AppId::new(0)),
            Some(mcmap_hardening::HTaskId::new(0))
        );
    }

    #[test]
    fn dropping_tightens_the_nondroppable_wcrt() {
        let (arch, hsys, mapping, policies, _) = mixed_system(false);
        let keep = analyze(&hsys, &arch, &mapping, &policies, &[]);
        let drop = analyze(&hsys, &arch, &mapping, &policies, &[AppId::new(1)]);
        let hi = AppId::new(0);
        assert!(
            drop.app_wcrt(&hsys, hi, &[AppId::new(1)]) <= keep.app_wcrt(&hsys, hi, &[]),
            "dropping low-criticality work can only help the critical app"
        );
    }

    #[test]
    fn naive_upper_bounds_proposed() {
        for drop_lo in [false, true] {
            let (arch, hsys, mapping, policies, dropped) = mixed_system(drop_lo);
            let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
            let naive = analyze_naive(&hsys, &arch, &mapping, &policies, &dropped);
            for i in 0..hsys.num_tasks() {
                assert!(
                    naive.max_finish[i] >= mc.worst.max_finish[i],
                    "naive must dominate proposed at task {i}"
                );
            }
        }
    }

    #[test]
    fn proposed_upper_bounds_adhoc_trace() {
        let (arch, hsys, mapping, policies, dropped) = mixed_system(true);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
        let adhoc = adhoc_analysis(&hsys, &arch, &mapping, &policies, &dropped);
        // The critical app's trace response is below the analysis bound.
        assert!(adhoc[0] <= mc.app_wcrt(&hsys, AppId::new(0), &dropped));
    }

    #[test]
    fn schedulable_verdict_respects_dropping_semantics() {
        // Two pipelines over two PEs, mirroring Fig. 1's rescue: hi's head
        // h0 (p0, re-executed) feeds h1 (p1); lo's head l0 (p0) feeds the
        // expensive l1 (p1), which outranks h1 locally. Because l1 cannot
        // start before l0's best case (40) — after the fault detection
        // window of h0 (maxFinish 32) — a critical transition certainly
        // drops l1, rescuing h1's deadline. Without dropping, l1's
        // interference pushes hi past its 150-tick deadline.
        let hi = TaskGraph::builder("hi", Time::from_ticks(400))
            .deadline(Time::from_ticks(150))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1.0,
            })
            .task(task("h0", 30, 30))
            .task(task("h1", 30, 30))
            .channel(0, 1, 0)
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(400))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(task("l0", 40, 40))
            .task(task("l1", 80, 80))
            .channel(0, 1, 0)
            .build()
            .unwrap();
        let apps = AppSet::new(vec![hi, lo]).unwrap();
        let arch = arch(2);
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(
            &hsys,
            &arch,
            vec![
                ProcId::new(0),
                ProcId::new(1),
                ProcId::new(0),
                ProcId::new(1),
            ],
        )
        .unwrap()
        .with_priorities(vec![0, 3, 1, 2]);
        let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);

        let without = analyze(&hsys, &arch, &mapping, &policies, &[]);
        let with = analyze(&hsys, &arch, &mapping, &policies, &[AppId::new(1)]);
        assert!(with.schedulable(&hsys, &[AppId::new(1)]));
        assert!(!without.schedulable(&hsys, &[]));
    }

    #[test]
    fn analysis_is_safe_against_the_simulator() {
        use mcmap_sim::{RandomFaults, Simulator};
        let (arch, hsys, mapping, policies, dropped) = mixed_system(true);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
        let sim = Simulator::new(&hsys, &arch, &mapping, policies.clone());
        for seed in 0..40 {
            let mut faults = RandomFaults::new(&hsys, &arch, &mapping, seed).with_boost(1e5);
            let r = sim.run(&SimConfig::worst_case(dropped.clone()), &mut faults);
            // Non-dropped app: simulated response within the analysis bound.
            assert!(
                r.app_wcrt[0] <= mc.app_wcrt(&hsys, AppId::new(0), &dropped),
                "seed {seed}: sim {} > bound {}",
                r.app_wcrt[0],
                mc.app_wcrt(&hsys, AppId::new(0), &dropped)
            );
        }
    }
}

#[cfg(test)]
mod dedup_tests {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{
        AppSet, Criticality, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph,
    };
    use mcmap_sched::uniform_policies;

    /// Two identical independent re-executed tasks produce identical
    /// transition scenarios: one backend call covers both.
    #[test]
    fn identical_scenarios_share_backend_calls() {
        let arch = Architecture::builder()
            .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap();
        let mk = |name: &str| {
            TaskGraph::builder(name, Time::from_ticks(1_000))
                .criticality(Criticality::NonDroppable {
                    max_failure_rate: 0.9,
                })
                .task(
                    Task::new(name)
                        .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(50)))
                        .with_detect_overhead(Time::from_ticks(5)),
                )
                .build()
                .unwrap()
        };
        let apps = AppSet::new(vec![mk("a"), mk("b")]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        plan.set_by_flat_index(1, TaskHardening::reexecution(1));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0), ProcId::new(1)]).unwrap();
        let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &[]);
        assert_eq!(mc.scenarios, 2);
        // Scenario of `a`: a at Eq1, b at Eq1 (overlapping) — scenario of
        // `b` is the mirror image with identical bounds on an isomorphic
        // system? Not identical here (a's Eq1 vs b's Eq1 occupy different
        // slots), so both run…
        assert!(mc.backend_calls <= 3);
        // …but a degenerate case with one trigger costs exactly 2 calls.
        let mut plan2 = HardeningPlan::unhardened(&apps);
        plan2.set_by_flat_index(0, TaskHardening::reexecution(1));
        let hsys2 = harden(&apps, &plan2, &arch).unwrap();
        let mapping2 = Mapping::new(&hsys2, &arch, vec![ProcId::new(0), ProcId::new(1)]).unwrap();
        let mc2 = analyze(&hsys2, &arch, &mapping2, &policies, &[]);
        assert_eq!(mc2.scenarios, 1);
        assert_eq!(mc2.backend_calls, 2);
    }

    /// Triggers whose bound-vectors coincide exactly (same task, same
    /// windows — e.g. symmetric replicas) are analyzed once.
    #[test]
    fn coinciding_bound_vectors_hit_the_cache() {
        let arch = Architecture::builder()
            .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap();
        // Two re-executed tasks with identical parameters on ONE PE, same
        // app, no precedence: their scenarios classify tasks identically
        // only if the bound vectors match; with symmetric windows they do
        // not in general, so simply assert the call count never exceeds
        // scenarios + 1 and results are unchanged by caching.
        let g = TaskGraph::builder("g", Time::from_ticks(1_000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 0.9,
            })
            .task(
                Task::new("x")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(40)))
                    .with_detect_overhead(Time::from_ticks(4)),
            )
            .task(
                Task::new("y")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(40)))
                    .with_detect_overhead(Time::from_ticks(4)),
            )
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        plan.set_by_flat_index(1, TaskHardening::reexecution(1));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0); 2]).unwrap();
        let policies = uniform_policies(1, SchedPolicy::FixedPriorityPreemptive);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &[]);
        assert!(mc.backend_calls <= mc.scenarios + 1);
        // Both tasks inflated in both scenarios → identical bound vectors →
        // exactly one scenario analysis. The second scenario is a *dedup*
        // hit (borrowed-slice lookup, no key clone), not a prune.
        assert_eq!(mc.backend_calls, 2);
        assert_eq!(mc.scenarios_pruned, 0);
    }

    /// A pipelined pair of re-executed tasks across two PEs with a real
    /// channel delay: the head's scenario classifies everything critical
    /// and pointwise dominates the tail's (which sees the head finished
    /// normally), so pruning skips the tail's backend run while the merged
    /// windows stay bit-identical to the reference enumeration.
    #[test]
    fn dominated_scenarios_are_pruned_without_changing_windows() {
        let arch = Architecture::builder()
            .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .fabric(mcmap_model::Fabric::new(8))
            .build()
            .unwrap();
        let g = TaskGraph::builder("g", Time::from_ticks(1_000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 0.9,
            })
            .task(
                Task::new("head")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(40)))
                    .with_detect_overhead(Time::from_ticks(4)),
            )
            .task(
                Task::new("tail")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(40)))
                    .with_detect_overhead(Time::from_ticks(4)),
            )
            .channel(0, 1, 64)
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        plan.set_by_flat_index(1, TaskHardening::reexecution(1));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0), ProcId::new(1)]).unwrap();
        let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);

        let reference = analyze_with(
            &hsys,
            &arch,
            &mapping,
            &policies,
            &[],
            AnalysisOptions::reference(),
        );
        let fast = analyze(&hsys, &arch, &mapping, &policies, &[]);

        assert_eq!(fast.normal, reference.normal);
        assert_eq!(fast.worst, reference.worst);
        assert_eq!(fast.scenarios, reference.scenarios);
        assert_eq!(reference.scenarios_pruned, 0);
        assert!(
            fast.scenarios_pruned > 0,
            "the tail scenario must be dominated"
        );
        assert!(
            fast.backend_calls < reference.backend_calls,
            "pruning must strictly reduce backend work ({} vs {})",
            fast.backend_calls,
            reference.backend_calls
        );
    }

    /// Re-analyzing a candidate with its *own* solutions as the parent
    /// reuses every backend run and changes nothing, for any knob setting.
    #[test]
    fn self_parent_reuses_every_run_bit_identically() {
        let (arch, hsys, mapping, policies, dropped) = super::tests::mixed_system(true);
        for opts in [
            AnalysisOptions::default(),
            AnalysisOptions::reference(),
            AnalysisOptions {
                warm_start: true,
                prune: false,
                scenario_threads: 3,
            },
        ] {
            let (cold, sols, reused0) =
                analyze_delta(&hsys, &arch, &mapping, &policies, &dropped, opts, None);
            assert_eq!(reused0, 0);
            let (warm, sols2, reused) = analyze_delta(
                &hsys,
                &arch,
                &mapping,
                &policies,
                &dropped,
                opts,
                Some(&sols),
            );
            assert_eq!(warm, cold, "{opts:?}");
            assert_eq!(sols2, sols, "{opts:?}");
            assert_eq!(reused, cold.backend_calls, "{opts:?}");
        }
    }

    /// Changing the dropped set keeps the normal-state vector (dropping
    /// only affects scenario classification), so the normal run is reused
    /// while the scenario vectors differ — and the result still matches a
    /// cold analysis bit-for-bit.
    #[test]
    fn cross_dropped_reuse_keeps_results_bit_identical() {
        let (arch, hsys, mapping, policies, _) = super::tests::mixed_system(false);
        let opts = AnalysisOptions::default();
        let (_, parent_sols, _) = analyze_delta(&hsys, &arch, &mapping, &policies, &[], opts, None);
        let dropped = vec![AppId::new(1)];
        let (cold, _, _) = analyze_delta(&hsys, &arch, &mapping, &policies, &dropped, opts, None);
        let (warm, _, reused) = analyze_delta(
            &hsys,
            &arch,
            &mapping,
            &policies,
            &dropped,
            opts,
            Some(&parent_sols),
        );
        assert_eq!(warm, cold);
        assert!(reused >= 1, "the normal run must be reused");
        assert!(reused <= cold.backend_calls);
    }

    /// A parent whose normal-state vector differs is ignored wholesale:
    /// zero reuse, identical results.
    #[test]
    fn mismatched_parent_is_ignored() {
        let (arch, hsys, mapping, policies, dropped) = super::tests::mixed_system(true);
        let opts = AnalysisOptions::default();
        let (cold, sols, _) =
            analyze_delta(&hsys, &arch, &mapping, &policies, &dropped, opts, None);
        let mut bogus = sols.clone();
        bogus.normal_bounds[0] = ExecBounds::exact(Time::from_ticks(12345));
        let (warm, _, reused) = analyze_delta(
            &hsys,
            &arch,
            &mapping,
            &policies,
            &dropped,
            opts,
            Some(&bogus),
        );
        assert_eq!(warm, cold);
        assert_eq!(reused, 0);
    }

    /// All knob combinations (and any scenario thread count) produce the
    /// same windows, verdicts, and classification counts.
    #[test]
    fn fast_path_knobs_never_change_the_result() {
        let arch = Architecture::builder()
            .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap();
        let mk = |name: &str, wcet: u64, crit: Criticality| {
            TaskGraph::builder(name, Time::from_ticks(2_000))
                .criticality(crit)
                .task(
                    Task::new(name)
                        .with_uniform_exec(
                            1,
                            ExecBounds::new(Time::from_ticks(wcet / 2), Time::from_ticks(wcet)),
                        )
                        .with_detect_overhead(Time::from_ticks(3)),
                )
                .build()
                .unwrap()
        };
        let apps = AppSet::new(vec![
            mk(
                "a",
                60,
                Criticality::NonDroppable {
                    max_failure_rate: 0.9,
                },
            ),
            mk("b", 80, Criticality::Droppable { service: 1.0 }),
            mk(
                "c",
                40,
                Criticality::NonDroppable {
                    max_failure_rate: 0.9,
                },
            ),
        ])
        .unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        plan.set_by_flat_index(2, TaskHardening::reexecution(2));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(
            &hsys,
            &arch,
            vec![ProcId::new(0), ProcId::new(1), ProcId::new(0)],
        )
        .unwrap();
        let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
        let dropped = vec![AppId::new(1)];

        let reference = analyze_with(
            &hsys,
            &arch,
            &mapping,
            &policies,
            &dropped,
            AnalysisOptions::reference(),
        );
        for warm_start in [false, true] {
            for prune in [false, true] {
                for scenario_threads in [1, 4] {
                    let opts = AnalysisOptions {
                        warm_start,
                        prune,
                        scenario_threads,
                    };
                    let mc = analyze_with(&hsys, &arch, &mapping, &policies, &dropped, opts);
                    assert_eq!(mc.normal, reference.normal, "{opts:?}");
                    assert_eq!(mc.worst, reference.worst, "{opts:?}");
                    assert_eq!(
                        mc.schedulable(&hsys, &dropped),
                        reference.schedulable(&hsys, &dropped),
                        "{opts:?}"
                    );
                    assert_eq!(
                        (
                            mc.scenarios,
                            mc.class_normal,
                            mc.class_dropped,
                            mc.class_transition,
                            mc.class_critical
                        ),
                        (
                            reference.scenarios,
                            reference.class_normal,
                            reference.class_dropped,
                            reference.class_transition,
                            reference.class_critical
                        ),
                        "{opts:?}"
                    );
                    if !warm_start {
                        assert_eq!(mc.warm_iters_saved, 0, "{opts:?}");
                    }
                    if !prune {
                        assert_eq!(mc.scenarios_pruned, 0, "{opts:?}");
                        assert_eq!(
                            mc.scenario_app_wcrt, reference.scenario_app_wcrt,
                            "{opts:?}"
                        );
                    }
                }
            }
        }
    }
}
