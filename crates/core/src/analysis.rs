//! Mixed-criticality, fault-tolerance-aware WCRT analysis.
//!
//! This module is the heart of the reproduction: Algorithm 1 of the paper
//! ([`proposed_analysis`]) together with the two static comparison points of
//! §5.1, [`naive_analysis`] and [`adhoc_analysis`].
//!
//! All three are *wrappers* over a pluggable [`SchedBackend`]; the proposed
//! analysis enumerates the possible normal→critical state transitions and
//! re-runs the backend with per-task execution bounds modified according to
//! the chronological information of each transition, which is exactly what
//! removes the pessimism of the naive treatment.

use mcmap_hardening::{HTaskId, HardenedSystem};
use mcmap_model::{AppId, Architecture, ExecBounds, Time};
use mcmap_sched::{
    nominal_bounds, HolisticAnalysis, Mapping, SchedBackend, SchedPolicy, TaskWindows,
};
use mcmap_sim::{ExhaustiveReexecution, SimConfig, Simulator};
use std::collections::HashMap;

/// Result of the mixed-criticality analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct McAnalysis {
    /// Windows of the fault-free (normal) state: passive replicas pinned to
    /// `[0, 0]`, no re-executions, nothing dropped.
    pub normal: TaskWindows,
    /// Per-task worst case over the normal state **and** every possible
    /// state transition (the return value of Algorithm 1, computed for all
    /// tasks at once).
    pub worst: TaskWindows,
    /// Number of transition scenarios analyzed (one per trigger task).
    pub scenarios: usize,
    /// Number of backend invocations actually performed (the normal-state
    /// run plus one per *distinct* scenario bound-vector — triggers whose
    /// transitions classify every task identically share one run).
    pub backend_calls: usize,
    /// Per analyzed scenario: the trigger task and the per-application
    /// worst-case response times of that scenario (diagnostic only).
    pub scenario_app_wcrt: Vec<(HTaskId, Vec<Time>)>,
    /// Task classifications across all transition scenarios: completed
    /// before the fault could occur (normal bounds kept).
    pub class_normal: usize,
    /// Classifications: certainly dropped (`[0, 0]`).
    pub class_dropped: usize,
    /// Classifications: in transition — maybe dropped (`[0, wcet]`).
    pub class_transition: usize,
    /// Classifications: critical (Eq. 1 bounds), including the triggers.
    pub class_critical: usize,
    /// Total fixed-point iterations across the normal-state run and every
    /// *distinct* scenario the backend actually analyzed.
    pub fixedpoint_iters: usize,
}

impl McAnalysis {
    /// Worst-case response time of an application under the
    /// mixed-criticality protocol: applications in the dropped set only
    /// answer for their *normal-state* response (once dropped they provide
    /// no service and have no deadline to meet); everything else answers
    /// over all scenarios.
    pub fn app_wcrt(&self, hsys: &HardenedSystem, app: AppId, dropped: &[AppId]) -> Time {
        if dropped.contains(&app) {
            self.normal.app_wcrt(hsys, app)
        } else {
            self.worst.app_wcrt(hsys, app)
        }
    }

    /// The trigger task whose transition scenario produces the largest
    /// response time for `app` — `None` when the fault-free state already
    /// binds the WCRT (or the app has no tasks). Useful for explaining a
    /// design: "the binding fault is in `wheel_pulse`".
    pub fn binding_trigger(&self, hsys: &HardenedSystem, app: AppId) -> Option<HTaskId> {
        let normal = self.normal.app_wcrt(hsys, app);
        self.scenario_app_wcrt
            .iter()
            .map(|(trigger, wcrt)| (*trigger, wcrt[app.index()]))
            .filter(|&(_, w)| w > normal)
            .max_by_key(|&(_, w)| w)
            .map(|(trigger, _)| trigger)
    }

    /// `true` when every application meets its deadline under the protocol
    /// (dropped applications in the normal state, all others in every
    /// scenario).
    pub fn schedulable(&self, hsys: &HardenedSystem, dropped: &[AppId]) -> bool {
        self.normal.converged
            && self.worst.converged
            && hsys
                .apps()
                .iter()
                .all(|happ| self.app_wcrt(hsys, happ.app, dropped) <= happ.deadline)
    }
}

/// Execution bounds of the normal (fault-free) state: nominal bounds with
/// passive replicas pinned to `[0, 0]` (Algorithm 1, lines 2–6).
pub fn normal_state_bounds(hsys: &HardenedSystem, nominal: &[ExecBounds]) -> Vec<ExecBounds> {
    let mut bounds = nominal.to_vec();
    for (id, t) in hsys.tasks() {
        if t.is_passive() {
            bounds[id.index()] = ExecBounds::ZERO;
        }
    }
    bounds
}

/// Critical-state WCET of a task on its mapped processor: Eq. (1).
fn critical_wcet(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    id: HTaskId,
) -> Time {
    let kind = arch.processor(mapping.proc_of(id)).kind;
    hsys.task(id)
        .critical_wcet(kind)
        .expect("mapped processors are kind-compatible")
}

/// **Algorithm 1** of the paper, generic over the schedulability backend.
///
/// For every task `v` that may trigger a normal→critical transition
/// (re-execution hardened or passively replicated), the bounds of every
/// other task `w` are rewritten based on the *normal-state* windows:
///
/// * `maxFinish_w < minStart_v` — `w` completed before the first fault
///   could occur: normal bounds (passive replicas stay `[0, 0]`);
/// * otherwise, if `w` belongs to a dropped application:
///   `minStart_w > maxFinish_v` — certainly dropped, `[0, 0]`; else in
///   transition, `[0, wcet_w]`;
/// * otherwise (non-droppable in the critical state): `[bcet_w, Eq. (1)]`
///   (passive replicas get `[0, Eq. (1)]` — they may or may not be
///   invoked).
///
/// The trigger `v` itself executes through its fault: `[bcet_v, Eq. (1)]`.
///
/// Returns the per-task maximum over the normal state and all transitions.
pub fn proposed_analysis<B: SchedBackend + ?Sized>(
    backend: &B,
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    nominal: &[ExecBounds],
    dropped: &[AppId],
) -> McAnalysis {
    let n = hsys.num_tasks();
    assert_eq!(nominal.len(), n, "one bound per hardened task required");

    let normal_bounds = normal_state_bounds(hsys, nominal);
    let normal = backend.analyze(&normal_bounds);

    let mut worst = normal.clone();
    let mut scenarios = 0usize;
    let mut backend_calls = 1usize; // the normal-state run
    let mut scenario_app_wcrt = Vec::new();
    let mut class_normal = 0usize;
    let mut class_dropped = 0usize;
    let mut class_transition = 0usize;
    let mut class_critical = 0usize;
    let mut fixedpoint_iters = normal.outer_iters;
    // Distinct bound-vectors → cached backend results. Two triggers with
    // identical windows produce identical scenarios; analyzing one suffices.
    let mut cache: HashMap<Vec<ExecBounds>, TaskWindows> = HashMap::new();

    for (v, vt) in hsys.tasks() {
        if !vt.is_trigger() {
            continue;
        }
        scenarios += 1;
        let v_min_start = normal.min_start[v.index()];
        let v_max_finish = normal.max_finish[v.index()];

        let mut bounds = vec![ExecBounds::ZERO; n];
        for (w, wt) in hsys.tasks() {
            if w == v {
                // The trigger executes through its fault: full re-execution
                // budget (Eq. 1). A passive trigger is invoked and runs.
                // Exception: a trigger belonging to a *dropped* application
                // is discarded instead of re-executed the moment its fault
                // is detected — it runs at most its nominal execution.
                let wcet = if dropped.contains(&wt.app) {
                    nominal[w.index()].wcet
                } else {
                    critical_wcet(hsys, arch, mapping, v)
                };
                bounds[w.index()] = ExecBounds::new(
                    if wt.is_passive() || dropped.contains(&wt.app) {
                        Time::ZERO
                    } else {
                        nominal[w.index()].bcet
                    },
                    wcet,
                );
                class_critical += 1;
                continue;
            }
            let w_normal = normal_bounds[w.index()];
            if normal.max_finish[w.index()] < v_min_start {
                // Completed before the fault: normal state.
                bounds[w.index()] = w_normal;
                class_normal += 1;
            } else if dropped.contains(&wt.app) {
                if normal.min_start[w.index()] > v_max_finish {
                    // Starts after the transition completed: never released.
                    bounds[w.index()] = ExecBounds::ZERO;
                    class_dropped += 1;
                } else {
                    // Transition: either executed or dropped.
                    bounds[w.index()] = ExecBounds::new(Time::ZERO, nominal[w.index()].wcet);
                    class_transition += 1;
                }
            } else {
                class_critical += 1;
                // Critical, non-droppable: may re-execute (Eq. 1); passive
                // replicas may or may not be invoked.
                let bcet = if wt.is_passive() {
                    Time::ZERO
                } else {
                    nominal[w.index()].bcet
                };
                bounds[w.index()] = ExecBounds::new(bcet, critical_wcet(hsys, arch, mapping, w));
            }
        }

        let prior_calls = backend_calls;
        let scenario = cache.entry(bounds).or_insert_with_key(|b| {
            backend_calls += 1;
            backend.analyze(b)
        });
        if backend_calls > prior_calls {
            fixedpoint_iters += scenario.outer_iters;
        }
        worst.converged &= scenario.converged;
        for i in 0..n {
            worst.max_finish[i] = worst.max_finish[i].max(scenario.max_finish[i]);
            worst.min_start[i] = worst.min_start[i].min(scenario.min_start[i]);
        }
        scenario_app_wcrt.push((
            v,
            hsys.apps()
                .iter()
                .map(|happ| scenario.app_wcrt(hsys, happ.app))
                .collect(),
        ));
    }

    McAnalysis {
        normal,
        worst,
        scenarios,
        backend_calls,
        scenario_app_wcrt,
        class_normal,
        class_dropped,
        class_transition,
        class_critical,
        fixedpoint_iters,
    }
}

/// The **Naive** analysis of §3/§5.1: a single backend run where every task
/// of a dropped application gets `[0, wcet]`, every other task gets its full
/// critical-state bounds (`[bcet, Eq. (1)]`, passive replicas `[0, Eq. (1)]`).
/// Safe but pessimistic — it ignores all chronological information.
pub fn naive_analysis<B: SchedBackend + ?Sized>(
    backend: &B,
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    nominal: &[ExecBounds],
    dropped: &[AppId],
) -> TaskWindows {
    let bounds: Vec<ExecBounds> = hsys
        .tasks()
        .map(|(w, wt)| {
            if dropped.contains(&wt.app) {
                ExecBounds::new(Time::ZERO, nominal[w.index()].wcet)
            } else {
                let bcet = if wt.is_passive() {
                    Time::ZERO
                } else {
                    nominal[w.index()].bcet
                };
                ExecBounds::new(bcet, critical_wcet(hsys, arch, mapping, w))
            }
        })
        .collect();
    backend.analyze(&bounds)
}

/// The **Adhoc** estimator of §5.1: an artificial worst-case *scheduling
/// trace* (not an analysis) where the system is critical from the beginning
/// of the hyperperiod, every re-execution-hardened task is maximally
/// re-executed, and dropped applications never release work. The paper uses
/// it to show that such hand-built traces are **not** safe bounds.
///
/// Returns the per-application observed response times.
pub fn adhoc_analysis(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    policies: &[SchedPolicy],
    dropped: &[AppId],
) -> Vec<Time> {
    let sim = Simulator::new(hsys, arch, mapping, policies.to_vec());
    let cfg = SimConfig {
        dropped: dropped.to_vec(),
        start_critical: true,
        ..SimConfig::default()
    };
    let mut faults = ExhaustiveReexecution::new(hsys);
    sim.run(&cfg, &mut faults).app_wcrt
}

/// Convenience wrapper running [`proposed_analysis`] with the library's
/// holistic backend.
pub fn analyze(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    policies: &[SchedPolicy],
    dropped: &[AppId],
) -> McAnalysis {
    let backend = HolisticAnalysis::new(hsys, arch, mapping, policies.to_vec());
    let nominal = nominal_bounds(hsys, arch, mapping);
    proposed_analysis(&backend, hsys, arch, mapping, &nominal, dropped)
}

/// Convenience wrapper running [`naive_analysis`] with the library's
/// holistic backend.
pub fn analyze_naive(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    policies: &[SchedPolicy],
    dropped: &[AppId],
) -> TaskWindows {
    let backend = HolisticAnalysis::new(hsys, arch, mapping, policies.to_vec());
    let nominal = nominal_bounds(hsys, arch, mapping);
    naive_analysis(&backend, hsys, arch, mapping, &nominal, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{
        AppSet, Criticality, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph,
    };
    use mcmap_sched::uniform_policies;

    fn arch(n: usize) -> Architecture {
        Architecture::builder()
            .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap()
    }

    fn task(name: &str, bcet: u64, wcet: u64) -> Task {
        Task::new(name)
            .with_uniform_exec(
                1,
                ExecBounds::new(Time::from_ticks(bcet), Time::from_ticks(wcet)),
            )
            .with_detect_overhead(Time::from_ticks(2))
    }

    /// hi: one re-executed task (wcet 30, k=1); lo: droppable task (wcet 20),
    /// both on one PE, periods 200.
    fn mixed_system(
        drop_lo: bool,
    ) -> (
        Architecture,
        HardenedSystem,
        Mapping,
        Vec<SchedPolicy>,
        Vec<AppId>,
    ) {
        let hi = TaskGraph::builder("hi", Time::from_ticks(200))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1.0,
            })
            .task(task("h", 30, 30))
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(200))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(task("l", 20, 20))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![hi, lo]).unwrap();
        let arch = arch(1);
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0); 2]).unwrap();
        let policies = uniform_policies(1, SchedPolicy::FixedPriorityPreemptive);
        let dropped = if drop_lo { vec![AppId::new(1)] } else { vec![] };
        (arch, hsys, mapping, policies, dropped)
    }

    #[test]
    fn normal_state_pins_passive_replicas_to_zero() {
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(
                Task::new("a")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10)))
                    .with_voting_overhead(Time::from_ticks(1)),
            )
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let arch = arch(3);
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::passive(vec![ProcId::new(1)], vec![ProcId::new(2)], ProcId::new(0)),
        );
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(
            &hsys,
            &arch,
            hsys.tasks()
                .map(|(_, t)| t.fixed_proc.unwrap_or(ProcId::new(0)))
                .collect(),
        )
        .unwrap();
        let nominal = nominal_bounds(&hsys, &arch, &mapping);
        let bounds = normal_state_bounds(&hsys, &nominal);
        let passive = hsys
            .tasks()
            .find(|(_, t)| t.is_passive())
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(bounds[passive.index()], ExecBounds::ZERO);
        // Non-passive tasks keep their nominal bounds.
        assert_eq!(bounds[0], nominal[0]);
    }

    #[test]
    fn proposed_covers_reexecution_worst_case() {
        let (arch, hsys, mapping, policies, dropped) = mixed_system(false);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
        assert_eq!(mc.scenarios, 1);
        // hi normal: 32 (wcet+dt); critical: 64.
        let hi_wcrt = mc.app_wcrt(&hsys, AppId::new(0), &dropped);
        assert!(hi_wcrt >= Time::from_ticks(64), "got {hi_wcrt}");
        // Normal state is tighter than the merged worst case.
        assert!(mc.normal.app_wcrt(&hsys, AppId::new(0)) < hi_wcrt);
        // The binding fault is attributed to the (only) re-executed task.
        assert_eq!(
            mc.binding_trigger(&hsys, AppId::new(0)),
            Some(mcmap_hardening::HTaskId::new(0))
        );
    }

    #[test]
    fn dropping_tightens_the_nondroppable_wcrt() {
        let (arch, hsys, mapping, policies, _) = mixed_system(false);
        let keep = analyze(&hsys, &arch, &mapping, &policies, &[]);
        let drop = analyze(&hsys, &arch, &mapping, &policies, &[AppId::new(1)]);
        let hi = AppId::new(0);
        assert!(
            drop.app_wcrt(&hsys, hi, &[AppId::new(1)]) <= keep.app_wcrt(&hsys, hi, &[]),
            "dropping low-criticality work can only help the critical app"
        );
    }

    #[test]
    fn naive_upper_bounds_proposed() {
        for drop_lo in [false, true] {
            let (arch, hsys, mapping, policies, dropped) = mixed_system(drop_lo);
            let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
            let naive = analyze_naive(&hsys, &arch, &mapping, &policies, &dropped);
            for i in 0..hsys.num_tasks() {
                assert!(
                    naive.max_finish[i] >= mc.worst.max_finish[i],
                    "naive must dominate proposed at task {i}"
                );
            }
        }
    }

    #[test]
    fn proposed_upper_bounds_adhoc_trace() {
        let (arch, hsys, mapping, policies, dropped) = mixed_system(true);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
        let adhoc = adhoc_analysis(&hsys, &arch, &mapping, &policies, &dropped);
        // The critical app's trace response is below the analysis bound.
        assert!(adhoc[0] <= mc.app_wcrt(&hsys, AppId::new(0), &dropped));
    }

    #[test]
    fn schedulable_verdict_respects_dropping_semantics() {
        // Two pipelines over two PEs, mirroring Fig. 1's rescue: hi's head
        // h0 (p0, re-executed) feeds h1 (p1); lo's head l0 (p0) feeds the
        // expensive l1 (p1), which outranks h1 locally. Because l1 cannot
        // start before l0's best case (40) — after the fault detection
        // window of h0 (maxFinish 32) — a critical transition certainly
        // drops l1, rescuing h1's deadline. Without dropping, l1's
        // interference pushes hi past its 150-tick deadline.
        let hi = TaskGraph::builder("hi", Time::from_ticks(400))
            .deadline(Time::from_ticks(150))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1.0,
            })
            .task(task("h0", 30, 30))
            .task(task("h1", 30, 30))
            .channel(0, 1, 0)
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(400))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(task("l0", 40, 40))
            .task(task("l1", 80, 80))
            .channel(0, 1, 0)
            .build()
            .unwrap();
        let apps = AppSet::new(vec![hi, lo]).unwrap();
        let arch = arch(2);
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(
            &hsys,
            &arch,
            vec![
                ProcId::new(0),
                ProcId::new(1),
                ProcId::new(0),
                ProcId::new(1),
            ],
        )
        .unwrap()
        .with_priorities(vec![0, 3, 1, 2]);
        let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);

        let without = analyze(&hsys, &arch, &mapping, &policies, &[]);
        let with = analyze(&hsys, &arch, &mapping, &policies, &[AppId::new(1)]);
        assert!(with.schedulable(&hsys, &[AppId::new(1)]));
        assert!(!without.schedulable(&hsys, &[]));
    }

    #[test]
    fn analysis_is_safe_against_the_simulator() {
        use mcmap_sim::{RandomFaults, Simulator};
        let (arch, hsys, mapping, policies, dropped) = mixed_system(true);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
        let sim = Simulator::new(&hsys, &arch, &mapping, policies.clone());
        for seed in 0..40 {
            let mut faults = RandomFaults::new(&hsys, &arch, &mapping, seed).with_boost(1e5);
            let r = sim.run(&SimConfig::worst_case(dropped.clone()), &mut faults);
            // Non-dropped app: simulated response within the analysis bound.
            assert!(
                r.app_wcrt[0] <= mc.app_wcrt(&hsys, AppId::new(0), &dropped),
                "seed {seed}: sim {} > bound {}",
                r.app_wcrt[0],
                mc.app_wcrt(&hsys, AppId::new(0), &dropped)
            );
        }
    }
}

#[cfg(test)]
mod dedup_tests {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{
        AppSet, Criticality, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph,
    };
    use mcmap_sched::uniform_policies;

    /// Two identical independent re-executed tasks produce identical
    /// transition scenarios: one backend call covers both.
    #[test]
    fn identical_scenarios_share_backend_calls() {
        let arch = Architecture::builder()
            .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap();
        let mk = |name: &str| {
            TaskGraph::builder(name, Time::from_ticks(1_000))
                .criticality(Criticality::NonDroppable {
                    max_failure_rate: 0.9,
                })
                .task(
                    Task::new(name)
                        .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(50)))
                        .with_detect_overhead(Time::from_ticks(5)),
                )
                .build()
                .unwrap()
        };
        let apps = AppSet::new(vec![mk("a"), mk("b")]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        plan.set_by_flat_index(1, TaskHardening::reexecution(1));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0), ProcId::new(1)]).unwrap();
        let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &[]);
        assert_eq!(mc.scenarios, 2);
        // Scenario of `a`: a at Eq1, b at Eq1 (overlapping) — scenario of
        // `b` is the mirror image with identical bounds on an isomorphic
        // system? Not identical here (a's Eq1 vs b's Eq1 occupy different
        // slots), so both run…
        assert!(mc.backend_calls <= 3);
        // …but a degenerate case with one trigger costs exactly 2 calls.
        let mut plan2 = HardeningPlan::unhardened(&apps);
        plan2.set_by_flat_index(0, TaskHardening::reexecution(1));
        let hsys2 = harden(&apps, &plan2, &arch).unwrap();
        let mapping2 = Mapping::new(&hsys2, &arch, vec![ProcId::new(0), ProcId::new(1)]).unwrap();
        let mc2 = analyze(&hsys2, &arch, &mapping2, &policies, &[]);
        assert_eq!(mc2.scenarios, 1);
        assert_eq!(mc2.backend_calls, 2);
    }

    /// Triggers whose bound-vectors coincide exactly (same task, same
    /// windows — e.g. symmetric replicas) are analyzed once.
    #[test]
    fn coinciding_bound_vectors_hit_the_cache() {
        let arch = Architecture::builder()
            .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap();
        // Two re-executed tasks with identical parameters on ONE PE, same
        // app, no precedence: their scenarios classify tasks identically
        // only if the bound vectors match; with symmetric windows they do
        // not in general, so simply assert the call count never exceeds
        // scenarios + 1 and results are unchanged by caching.
        let g = TaskGraph::builder("g", Time::from_ticks(1_000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 0.9,
            })
            .task(
                Task::new("x")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(40)))
                    .with_detect_overhead(Time::from_ticks(4)),
            )
            .task(
                Task::new("y")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(40)))
                    .with_detect_overhead(Time::from_ticks(4)),
            )
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(1));
        plan.set_by_flat_index(1, TaskHardening::reexecution(1));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0); 2]).unwrap();
        let policies = uniform_policies(1, SchedPolicy::FixedPriorityPreemptive);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &[]);
        assert!(mc.backend_calls <= mc.scenarios + 1);
        // Both tasks inflated in both scenarios → identical bound vectors →
        // exactly one scenario analysis.
        assert_eq!(mc.backend_calls, 2);
    }
}
