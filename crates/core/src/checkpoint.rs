//! Checkpointing for the design-space exploration driver.
//!
//! A [`DseCheckpoint`] captures the complete generational-loop state at a
//! generation boundary — RNG words, archive, history, telemetry
//! carry-overs, audit counters, and the trace high-water mark — such that
//! a resumed run reproduces the uninterrupted run **bit-identically**
//! (same Pareto front, same canonical trace).
//!
//! ## On-disk format
//!
//! The payload is a single JSON object wrapped in the `mcmap-resilience`
//! envelope (version tag + length + FNV-1a checksum), written atomically
//! with rotation: the previous good checkpoint survives as `<path>.bak`,
//! so a crash mid-write (or a corrupted primary) falls back one
//! generation instead of losing the run.
//!
//! All `f64` values are serialized as their IEEE-754 bit patterns
//! (`u64`), not as decimal text — decimal round-trips are approximate and
//! would break the bit-identical resume contract.

use std::path::Path;

use mcmap_ga::{DriverState, Evaluation, GenerationStats, Individual};
use mcmap_obs::{parse_json, Json};
use mcmap_resilience::{atomic_write_rotating, backup_path, seal, unseal, ResilienceError};

use crate::dse::AuditSnapshot;
use crate::genome::{GeneHardening, Genome, TaskGene};
use mcmap_model::ProcId;

/// Envelope kind tag for DSE checkpoints.
const KIND: &str = "dse-checkpoint";

/// The complete state of an interrupted exploration at a generation
/// boundary, sufficient for a bit-identical resume.
#[derive(Debug, Clone)]
pub struct DseCheckpoint {
    /// Fingerprint of the problem context and GA parameters the run was
    /// started with. Resume refuses a checkpoint whose fingerprint does
    /// not match the current configuration.
    pub fingerprint: u64,
    /// Index of the last completed generation.
    pub generation: usize,
    /// Trace high-water mark: the highest event `seq` emitted (and
    /// flushed) before this checkpoint was written. On resume, the
    /// salvaged trace prefix keeps events up to this mark and the
    /// re-emitted preamble below it is suppressed.
    pub trace_seq: u64,
    /// The generational-loop state to hand back to the GA driver.
    pub state: DriverState<Genome>,
    /// Audit counters at the boundary, restored into the problem so the
    /// final [`AuditSnapshot`] matches the uninterrupted run.
    pub audit: AuditSnapshot,
    /// Labeled summary of the fingerprinted configuration fields (see
    /// `config_summary` in the DSE module), so a fingerprint mismatch on
    /// resume can report *which* fields diverged. Empty for checkpoints
    /// written before this field existed; purely diagnostic — the
    /// fingerprint remains the gate.
    pub config: Vec<(String, String)>,
}

impl DseCheckpoint {
    /// Serializes to the sealed envelope byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        seal(KIND, encode(self).as_bytes())
    }

    /// Deserializes from sealed envelope bytes. `path` is used only for
    /// error reporting.
    ///
    /// # Errors
    ///
    /// Returns a corruption-class [`ResilienceError`] (truncated payload,
    /// checksum mismatch, version mismatch, malformed JSON).
    pub fn from_bytes(path: &Path, bytes: &[u8]) -> Result<Self, ResilienceError> {
        let payload = unseal(KIND, path, bytes)?;
        let text = std::str::from_utf8(&payload).map_err(|_| ResilienceError::Malformed {
            path: path.to_path_buf(),
            detail: "payload is not valid UTF-8".into(),
        })?;
        decode(path, text)
    }
}

/// Writes `ckpt` to `path` atomically, rotating any existing checkpoint
/// to `<path>.bak` first.
///
/// # Errors
///
/// Returns [`ResilienceError::Io`] when staging, renaming, or syncing
/// fails.
pub fn write_checkpoint(path: &Path, ckpt: &DseCheckpoint) -> Result<(), ResilienceError> {
    atomic_write_rotating(path, &ckpt.to_bytes())
}

/// Reads and validates the checkpoint at `path`.
///
/// # Errors
///
/// Returns [`ResilienceError::Io`] when the file cannot be read, or a
/// corruption-class error when it fails envelope or schema validation.
pub fn read_checkpoint(path: &Path) -> Result<DseCheckpoint, ResilienceError> {
    let bytes = std::fs::read(path).map_err(|e| ResilienceError::io(path, "read", e))?;
    DseCheckpoint::from_bytes(path, &bytes)
}

/// Reads the checkpoint at `path`, falling back to `<path>.bak` when the
/// primary is corrupt (truncated write, bad checksum, wrong version).
///
/// Returns the checkpoint and whether the backup was used. A missing or
/// unreadable primary is an I/O error, not corruption, and does not
/// trigger the fallback.
///
/// # Errors
///
/// Propagates the primary's error when there is no usable backup.
pub fn read_checkpoint_with_fallback(
    path: &Path,
) -> Result<(DseCheckpoint, bool), ResilienceError> {
    match read_checkpoint(path) {
        Ok(ckpt) => Ok((ckpt, false)),
        Err(primary) if primary.is_corruption() => {
            match read_checkpoint(&backup_path(path)) {
                Ok(ckpt) => Ok((ckpt, true)),
                // The primary's diagnosis is the interesting one.
                Err(_) => Err(primary),
            }
        }
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) fn push_u64s(out: &mut String, values: impl IntoIterator<Item = u64>) {
    out.push('[');
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_bits(out: &mut String, values: &[f64]) {
    push_u64s(out, values.iter().map(|v| v.to_bits()));
}

fn push_eval(out: &mut String, eval: &Evaluation) {
    out.push_str("{\"objectives\":");
    push_bits(out, &eval.objectives);
    out.push_str(",\"feasible\":");
    out.push_str(if eval.feasible { "true" } else { "false" });
    out.push_str(",\"penalty\":");
    out.push_str(&eval.penalty.to_bits().to_string());
    out.push('}');
}

pub(crate) fn push_genome(out: &mut String, genome: &Genome) {
    out.push_str("{\"alloc\":");
    push_u64s(out, genome.alloc.iter().map(|&b| u64::from(b)));
    out.push_str(",\"keep\":");
    push_u64s(out, genome.keep.iter().map(|&b| u64::from(b)));
    out.push_str(",\"genes\":[");
    for (i, gene) in genome.genes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&gene.binding.index().to_string());
        out.push(',');
        match &gene.hardening {
            GeneHardening::None => out.push_str("[\"n\"]"),
            GeneHardening::Reexec(k) => {
                out.push_str("[\"r\",");
                out.push_str(&k.to_string());
                out.push(']');
            }
            GeneHardening::Active { replicas, voter } => {
                out.push_str("[\"a\",");
                push_u64s(out, replicas.iter().map(|p| p.index() as u64));
                out.push(',');
                out.push_str(&voter.index().to_string());
                out.push(']');
            }
            GeneHardening::Passive {
                actives,
                standbys,
                voter,
            } => {
                out.push_str("[\"p\",");
                push_u64s(out, actives.iter().map(|p| p.index() as u64));
                out.push(',');
                push_u64s(out, standbys.iter().map(|p| p.index() as u64));
                out.push(',');
                out.push_str(&voter.index().to_string());
                out.push(']');
            }
        }
        out.push(']');
    }
    out.push_str("]}");
}

fn encode(ckpt: &DseCheckpoint) -> String {
    let st = &ckpt.state;
    let mut out = String::with_capacity(4096);
    out.push_str("{\"fingerprint\":");
    out.push_str(&ckpt.fingerprint.to_string());
    out.push_str(",\"generation\":");
    out.push_str(&ckpt.generation.to_string());
    out.push_str(",\"trace_seq\":");
    out.push_str(&ckpt.trace_seq.to_string());
    out.push_str(",\"evaluations\":");
    out.push_str(&st.evaluations.to_string());
    out.push_str(",\"rng\":");
    push_u64s(&mut out, st.rng_state);
    out.push_str(",\"reference\":");
    match st.hv_reference {
        Some((a, b)) => push_u64s(&mut out, [a.to_bits(), b.to_bits()]),
        None => out.push_str("null"),
    }
    out.push_str(",\"archive\":[");
    for (i, ind) in st.archive.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"genome\":");
        push_genome(&mut out, &ind.genotype);
        out.push_str(",\"eval\":");
        push_eval(&mut out, &ind.eval);
        out.push('}');
    }
    out.push_str("],\"prev_evals\":[");
    for (i, eval) in st.prev_evals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_eval(&mut out, eval);
    }
    out.push_str("],\"history\":[");
    for (i, row) in st.history.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"generation\":");
        out.push_str(&row.generation.to_string());
        out.push_str(",\"best\":");
        push_bits(&mut out, &row.best);
        out.push_str(",\"feasible\":");
        out.push_str(&row.feasible.to_string());
        out.push_str(",\"front_size\":");
        out.push_str(&row.front_size.to_string());
        out.push('}');
    }
    out.push_str("],\"audit\":[");
    let a = &ckpt.audit;
    push_audit_fields(&mut out, a);
    out.push(']');
    // Written only when present so pre-summary checkpoints (empty vec)
    // keep their exact byte stream through a decode/encode round trip.
    if !ckpt.config.is_empty() {
        out.push_str(",\"config\":{");
        for (i, (k, v)) in ckpt.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            push_json_str(&mut out, v);
        }
        out.push('}');
    }
    out.push('}');
    out
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_audit_fields(out: &mut String, a: &AuditSnapshot) {
    let fields = [
        a.evaluated,
        a.feasible,
        a.audited,
        a.rescued_by_dropping,
        a.reexecutions,
        a.active_replications,
        a.passive_replications,
    ];
    for (i, v) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

pub(crate) fn malformed(path: &Path, detail: impl Into<String>) -> ResilienceError {
    ResilienceError::Malformed {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

pub(crate) fn get<'a>(path: &Path, obj: &'a Json, key: &str) -> Result<&'a Json, ResilienceError> {
    obj.get(key)
        .ok_or_else(|| malformed(path, format!("missing key `{key}`")))
}

pub(crate) fn as_u64(path: &Path, v: &Json, what: &str) -> Result<u64, ResilienceError> {
    v.as_u64()
        .ok_or_else(|| malformed(path, format!("{what}: expected unsigned integer")))
}

pub(crate) fn as_usize(path: &Path, v: &Json, what: &str) -> Result<usize, ResilienceError> {
    Ok(as_u64(path, v, what)? as usize)
}

pub(crate) fn as_arr<'a>(
    path: &Path,
    v: &'a Json,
    what: &str,
) -> Result<&'a [Json], ResilienceError> {
    match v {
        Json::Arr(items) => Ok(items),
        _ => Err(malformed(path, format!("{what}: expected array"))),
    }
}

pub(crate) fn u64_list(path: &Path, v: &Json, what: &str) -> Result<Vec<u64>, ResilienceError> {
    as_arr(path, v, what)?
        .iter()
        .map(|item| as_u64(path, item, what))
        .collect()
}

fn bits_list(path: &Path, v: &Json, what: &str) -> Result<Vec<f64>, ResilienceError> {
    Ok(u64_list(path, v, what)?
        .into_iter()
        .map(f64::from_bits)
        .collect())
}

fn decode_eval(path: &Path, v: &Json) -> Result<Evaluation, ResilienceError> {
    let objectives = bits_list(path, get(path, v, "objectives")?, "objectives")?;
    let feasible = match get(path, v, "feasible")? {
        Json::Bool(b) => *b,
        _ => return Err(malformed(path, "feasible: expected bool")),
    };
    let penalty = f64::from_bits(as_u64(path, get(path, v, "penalty")?, "penalty")?);
    Ok(Evaluation {
        objectives,
        feasible,
        penalty,
    })
}

fn proc_list(path: &Path, v: &Json, what: &str) -> Result<Vec<ProcId>, ResilienceError> {
    Ok(u64_list(path, v, what)?
        .into_iter()
        .map(|p| ProcId::new(p as usize))
        .collect())
}

pub(crate) fn decode_genome(path: &Path, v: &Json) -> Result<Genome, ResilienceError> {
    let alloc = u64_list(path, get(path, v, "alloc")?, "alloc")?
        .into_iter()
        .map(|b| b != 0)
        .collect();
    let keep = u64_list(path, get(path, v, "keep")?, "keep")?
        .into_iter()
        .map(|b| b != 0)
        .collect();
    let mut genes = Vec::new();
    for gene in as_arr(path, get(path, v, "genes")?, "genes")? {
        let parts = as_arr(path, gene, "gene")?;
        if parts.len() != 2 {
            return Err(malformed(path, "gene: expected [binding, hardening]"));
        }
        let binding = ProcId::new(as_usize(path, &parts[0], "binding")?);
        let hard = as_arr(path, &parts[1], "hardening")?;
        let tag = match hard.first() {
            Some(Json::Str(s)) => s.as_str(),
            _ => return Err(malformed(path, "hardening: missing tag")),
        };
        let hardening = match (tag, hard.len()) {
            ("n", 1) => GeneHardening::None,
            ("r", 2) => GeneHardening::Reexec(as_u64(path, &hard[1], "reexec k")? as u8),
            ("a", 3) => GeneHardening::Active {
                replicas: proc_list(path, &hard[1], "replicas")?,
                voter: ProcId::new(as_usize(path, &hard[2], "voter")?),
            },
            ("p", 4) => GeneHardening::Passive {
                actives: proc_list(path, &hard[1], "actives")?,
                standbys: proc_list(path, &hard[2], "standbys")?,
                voter: ProcId::new(as_usize(path, &hard[3], "voter")?),
            },
            _ => return Err(malformed(path, format!("hardening: unknown tag `{tag}`"))),
        };
        genes.push(TaskGene { binding, hardening });
    }
    Ok(Genome { alloc, keep, genes })
}

fn decode(path: &Path, text: &str) -> Result<DseCheckpoint, ResilienceError> {
    let root = parse_json(text).map_err(|e| malformed(path, format!("invalid JSON: {e}")))?;

    let rng_words = u64_list(path, get(path, &root, "rng")?, "rng")?;
    let rng_state: [u64; 4] = rng_words
        .try_into()
        .map_err(|_| malformed(path, "rng: expected 4 words"))?;

    let hv_reference = match get(path, &root, "reference")? {
        Json::Null => None,
        v => {
            let pair = u64_list(path, v, "reference")?;
            if pair.len() != 2 {
                return Err(malformed(path, "reference: expected 2 values"));
            }
            Some((f64::from_bits(pair[0]), f64::from_bits(pair[1])))
        }
    };

    let mut archive = Vec::new();
    for ind in as_arr(path, get(path, &root, "archive")?, "archive")? {
        archive.push(Individual {
            genotype: decode_genome(path, get(path, ind, "genome")?)?,
            eval: decode_eval(path, get(path, ind, "eval")?)?,
        });
    }

    let mut prev_evals = Vec::new();
    for eval in as_arr(path, get(path, &root, "prev_evals")?, "prev_evals")? {
        prev_evals.push(decode_eval(path, eval)?);
    }

    let mut history = Vec::new();
    for row in as_arr(path, get(path, &root, "history")?, "history")? {
        history.push(GenerationStats {
            generation: as_usize(path, get(path, row, "generation")?, "history generation")?,
            best: bits_list(path, get(path, row, "best")?, "history best")?,
            feasible: as_usize(path, get(path, row, "feasible")?, "history feasible")?,
            front_size: as_usize(path, get(path, row, "front_size")?, "history front_size")?,
        });
    }

    let audit_fields = u64_list(path, get(path, &root, "audit")?, "audit")?;
    if audit_fields.len() != 7 {
        return Err(malformed(path, "audit: expected 7 counters"));
    }
    let audit = AuditSnapshot {
        evaluated: audit_fields[0] as usize,
        feasible: audit_fields[1] as usize,
        audited: audit_fields[2] as usize,
        rescued_by_dropping: audit_fields[3] as usize,
        reexecutions: audit_fields[4] as usize,
        active_replications: audit_fields[5] as usize,
        passive_replications: audit_fields[6] as usize,
    };

    // Optional: absent in checkpoints written before the summary existed.
    let mut config = Vec::new();
    if let Some(obj) = root.get("config") {
        match obj {
            Json::Obj(members) => {
                for (k, v) in members {
                    match v {
                        Json::Str(s) => config.push((k.clone(), s.clone())),
                        _ => return Err(malformed(path, "config: expected string values")),
                    }
                }
            }
            _ => return Err(malformed(path, "config: expected object")),
        }
    }

    let generation = as_usize(path, get(path, &root, "generation")?, "generation")?;
    Ok(DseCheckpoint {
        fingerprint: as_u64(path, get(path, &root, "fingerprint")?, "fingerprint")?,
        generation,
        trace_seq: as_u64(path, get(path, &root, "trace_seq")?, "trace_seq")?,
        state: DriverState {
            generation,
            rng_state,
            evaluations: as_usize(path, get(path, &root, "evaluations")?, "evaluations")?,
            archive,
            history,
            hv_reference,
            prev_evals,
        },
        audit,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DseCheckpoint {
        let genome = Genome {
            alloc: vec![true, false, true],
            keep: vec![true],
            genes: vec![
                TaskGene {
                    binding: ProcId::new(0),
                    hardening: GeneHardening::None,
                },
                TaskGene {
                    binding: ProcId::new(2),
                    hardening: GeneHardening::Reexec(2),
                },
                TaskGene {
                    binding: ProcId::new(1),
                    hardening: GeneHardening::Active {
                        replicas: vec![ProcId::new(0), ProcId::new(2)],
                        voter: ProcId::new(1),
                    },
                },
                TaskGene {
                    binding: ProcId::new(0),
                    hardening: GeneHardening::Passive {
                        actives: vec![ProcId::new(1)],
                        standbys: vec![ProcId::new(2), ProcId::new(0)],
                        voter: ProcId::new(2),
                    },
                },
            ],
        };
        let eval = Evaluation {
            objectives: vec![0.1 + 0.2, f64::INFINITY, -0.0],
            feasible: true,
            penalty: 1e-300,
        };
        DseCheckpoint {
            fingerprint: 0xdead_beef_cafe_f00d,
            generation: 7,
            trace_seq: 4242,
            state: DriverState {
                generation: 7,
                rng_state: [u64::MAX, 1, 0, 0x1234_5678_9abc_def0],
                evaluations: 96,
                archive: vec![Individual {
                    genotype: genome,
                    eval: eval.clone(),
                }],
                history: vec![GenerationStats {
                    generation: 0,
                    best: vec![3.25, f64::NAN],
                    feasible: 4,
                    front_size: 2,
                }],
                hv_reference: Some((1.5, 2.5)),
                prev_evals: vec![eval],
            },
            audit: AuditSnapshot {
                evaluated: 96,
                feasible: 60,
                audited: 10,
                rescued_by_dropping: 1,
                reexecutions: 30,
                active_replications: 12,
                passive_replications: 3,
            },
            config: vec![
                ("ga.seed".into(), "8".into()),
                ("ga.selector".into(), "Spea2 \"quoted\\path\"\n".into()),
            ],
        }
    }

    fn assert_round_trips(ckpt: &DseCheckpoint) {
        let bytes = ckpt.to_bytes();
        let back = DseCheckpoint::from_bytes(Path::new("test.ckpt"), &bytes).unwrap();
        assert_eq!(back.fingerprint, ckpt.fingerprint);
        assert_eq!(back.generation, ckpt.generation);
        assert_eq!(back.trace_seq, ckpt.trace_seq);
        assert_eq!(back.state.rng_state, ckpt.state.rng_state);
        assert_eq!(back.state.evaluations, ckpt.state.evaluations);
        assert_eq!(back.audit, ckpt.audit);
        assert_eq!(back.state.archive.len(), ckpt.state.archive.len());
        for (a, b) in back.state.archive.iter().zip(&ckpt.state.archive) {
            assert_eq!(a.genotype, b.genotype);
            assert_eq!(bits_of(&a.eval), bits_of(&b.eval));
        }
        assert_eq!(back.state.history.len(), ckpt.state.history.len());
        for (a, b) in back.state.history.iter().zip(&ckpt.state.history) {
            assert_eq!(a.generation, b.generation);
            assert_eq!(a.feasible, b.feasible);
            assert_eq!(a.front_size, b.front_size);
            let a_bits: Vec<u64> = a.best.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.best.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits);
        }
        assert_eq!(
            back.state.hv_reference.map(pair_bits),
            ckpt.state.hv_reference.map(pair_bits)
        );
        assert_eq!(back.state.prev_evals.len(), ckpt.state.prev_evals.len());
        for (a, b) in back.state.prev_evals.iter().zip(&ckpt.state.prev_evals) {
            assert_eq!(bits_of(a), bits_of(b));
        }
        assert_eq!(back.config, ckpt.config);
    }

    fn bits_of(eval: &Evaluation) -> (Vec<u64>, bool, u64) {
        (
            eval.objectives.iter().map(|v| v.to_bits()).collect(),
            eval.feasible,
            eval.penalty.to_bits(),
        )
    }

    fn pair_bits((a, b): (f64, f64)) -> (u64, u64) {
        (a.to_bits(), b.to_bits())
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        assert_round_trips(&sample());
    }

    #[test]
    fn nan_and_infinity_survive_the_round_trip() {
        let back = DseCheckpoint::from_bytes(Path::new("test.ckpt"), &sample().to_bytes()).unwrap();
        assert!(back.state.history[0].best[1].is_nan());
        assert!(back.state.archive[0].eval.objectives[1].is_infinite());
        assert_eq!(
            back.state.archive[0].eval.objectives[2].to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn truncated_bytes_are_detected_as_corruption() {
        let bytes = sample().to_bytes();
        let cut = &bytes[..bytes.len() / 2];
        let err = DseCheckpoint::from_bytes(Path::new("test.ckpt"), cut).unwrap_err();
        assert!(err.is_corruption(), "unexpected error: {err}");
    }

    #[test]
    fn bit_flips_are_detected_as_corruption() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 10;
        bytes[last] ^= 0x40;
        let err = DseCheckpoint::from_bytes(Path::new("test.ckpt"), &bytes).unwrap_err();
        assert!(err.is_corruption(), "unexpected error: {err}");
    }

    #[test]
    fn fallback_recovers_from_a_torn_primary_write() {
        let dir = std::env::temp_dir().join("mcmap_core_ckpt_fallback_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let mut first = sample();
        first.generation = 3;
        first.state.generation = 3;
        write_checkpoint(&path, &first).unwrap();
        let second = sample();
        write_checkpoint(&path, &second).unwrap();
        // Simulate a torn write of the newest checkpoint.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let (restored, from_backup) = read_checkpoint_with_fallback(&path).unwrap();
        assert!(from_backup);
        assert_eq!(restored.generation, 3);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(backup_path(&path)).ok();
    }

    #[test]
    fn empty_archive_and_missing_reference_round_trip() {
        let mut ckpt = sample();
        ckpt.state.archive.clear();
        ckpt.state.prev_evals.clear();
        ckpt.state.history.clear();
        ckpt.state.hv_reference = None;
        ckpt.config.clear();
        assert_round_trips(&ckpt);
    }

    #[test]
    fn pre_summary_checkpoints_decode_with_empty_config() {
        // A checkpoint without a `config` member (the format before the
        // summary existed) must still load — diagnostics degrade, the
        // fingerprint gate does not.
        let mut ckpt = sample();
        ckpt.config.clear();
        let bytes = ckpt.to_bytes();
        let back = DseCheckpoint::from_bytes(Path::new("test.ckpt"), &bytes).unwrap();
        assert!(back.config.is_empty());
        // And a decode → encode round trip reproduces the exact bytes.
        assert_eq!(back.to_bytes(), bytes);
    }
}
