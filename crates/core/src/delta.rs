//! Genome-delta analysis: diff a child chromosome against its parent and
//! bound the blast radius of the edit.
//!
//! The DSE's inner loop re-decodes and re-analyzes the entire system for
//! every GA child, even when a mutation touches a single gene. This module
//! provides the static half of the incremental fast path:
//!
//! 1. [`diff_genomes`] decomposes the difference between two chromosomes of
//!    one [`GenomeSpace`] into elementary [`GenomeEdit`]s (mapping gene,
//!    hardening degree, drop bit, allocation bit);
//! 2. [`may_affect`] bounds the **may-affect set** of the edit list — the
//!    applications whose WCRT analysis could possibly change — via the
//!    monotone shared-PE closure of [`mcmap_lint::InterferenceGraph`],
//!    evaluated on *both* endpoint genomes (a moved task interferes at its
//!    old and its new placement, so the union of the two closures is the
//!    sound bound).
//!
//! The dynamic half lives in [`crate::analysis::analyze_delta`]: the eval
//! engine threads each child's designated parent through the batch hook,
//! and the per-candidate reuse is gated on **bit-equality of decoded
//! artifacts** (repaired genes, then per-run bound vectors), never on the
//! closure alone. The closure is the *predictor* — it explains, counts, and
//! lints the coupling structure — while artifact equality is the *verified
//! gate*, so an imprecision here can cost reuse but never correctness.
//! (Prediction from the raw genome alone would in fact be unsound: repair
//! draws from an RNG seeded by the repair-relevant projection of the
//! chromosome — the allocation bits and the per-task genes — so a keep-bit
//! edit repairs exactly like its parent, but any gene or allocation edit
//! rerolls every randomized fix and can shift the phenotype arbitrarily
//! far from what the edit list suggests.)

use crate::analysis::AnalysisSolutions;
use crate::genome::{Genome, GenomeSpace};
use mcmap_lint::{AffectSet, GenomeEdit, InterferenceGraph};
use mcmap_model::{AppSet, Architecture, ProcId};
use std::sync::Arc;

/// The decoded artifacts of an evaluated candidate that its children may
/// reuse: the post-repair chromosome (the reuse eligibility check compares
/// its genes bit-for-bit) and the captured fixed-point solutions.
#[derive(Debug, Clone)]
pub struct ParentArtifacts {
    /// The candidate's chromosome *after* structural and reliability
    /// repair — the phenotype the analysis actually evaluated.
    pub repaired: Genome,
    /// Every fixed-point solution captured for this phenotype's genes: the
    /// protocol analysis, the no-dropping audit re-analysis (when one
    /// ran), and — in the DSE's phenotype pool — the merged runs of every
    /// earlier keep/alloc variant sharing the same genes. The genes alone
    /// determine the hardened system and the mapping, so all these runs
    /// come from one backend and are interchangeable per bound vector.
    pub solutions: Arc<AnalysisSolutions>,
}

/// Decomposes the difference between two chromosomes of `space` into
/// elementary edits, in genome order: allocation bits, then keep bits, then
/// per-task genes (a gene differing in both binding and hardening yields
/// both a [`GenomeEdit::MappingGene`] and a [`GenomeEdit::HardeningDegree`]).
///
/// Returns an empty vector exactly when the genomes are equal.
///
/// # Panics
///
/// Panics if either genome's shape does not match `space`.
pub fn diff_genomes(space: &GenomeSpace, parent: &Genome, child: &Genome) -> Vec<GenomeEdit> {
    assert_eq!(parent.alloc.len(), space.num_procs(), "parent shape");
    assert_eq!(child.alloc.len(), space.num_procs(), "child shape");
    assert_eq!(parent.keep.len(), space.droppable_apps().len());
    assert_eq!(child.keep.len(), space.droppable_apps().len());
    assert_eq!(parent.genes.len(), child.genes.len());

    let mut edits = Vec::new();
    for (i, (pa, ca)) in parent.alloc.iter().zip(&child.alloc).enumerate() {
        if pa != ca {
            edits.push(GenomeEdit::AllocBit {
                proc: ProcId::new(i),
            });
        }
    }
    for (k, (pk, ck)) in parent.keep.iter().zip(&child.keep).enumerate() {
        if pk != ck {
            edits.push(GenomeEdit::DropBit {
                app: space.droppable_apps()[k],
            });
        }
    }
    for (flat, (pg, cg)) in parent.genes.iter().zip(&child.genes).enumerate() {
        if pg.binding != cg.binding {
            edits.push(GenomeEdit::MappingGene { flat });
        }
        if pg.hardening != cg.hardening {
            edits.push(GenomeEdit::HardeningDegree { flat });
        }
    }
    edits
}

/// The sound may-affect set of an edit list between two chromosomes: the
/// union, over every edit, of the edit's affect set in **both** the parent's
/// and the child's interference graph (a moved task interferes at both its
/// old and its new placement).
///
/// Returns `None` when either genome's shape does not match the system —
/// the caller must then assume everything is affected (cold analysis).
pub fn may_affect(
    apps: &AppSet,
    arch: &Architecture,
    parent: &Genome,
    child: &Genome,
    edits: &[GenomeEdit],
) -> Option<AffectSet> {
    let pg = InterferenceGraph::build(apps, arch, &parent.lint_view())?;
    let cg = InterferenceGraph::build(apps, arch, &child.lint_view())?;
    let mut affected = Vec::new();
    let mut all_scenarios = false;
    for &edit in edits {
        for ig in [&pg, &cg] {
            let a = ig.affect(apps, edit);
            all_scenarios |= a.all_scenarios;
            affected.extend(a.apps);
        }
    }
    affected.sort_unstable();
    affected.dedup();
    Some(AffectSet {
        apps: affected,
        all_scenarios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{proposed_analysis_delta, AnalysisOptions};
    use crate::genome::GenomeSpace;
    use crate::repair::{repair_reliability, repair_structure};
    use mcmap_hardening::harden;
    use mcmap_model::{AppId, Criticality, ExecBounds, ProcKind, Processor, Task, TaskGraph, Time};
    use mcmap_sched::{
        nominal_bounds, uniform_policies, HolisticAnalysis, Mapping, SchedBackend, SchedPolicy,
        TaskWindows,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn arch(n: usize) -> Architecture {
        Architecture::builder()
            .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap()
    }

    /// hi (2-task chain, non-droppable) + lo (1 task, droppable), 3 PEs.
    fn system() -> (AppSet, Architecture) {
        let hi = TaskGraph::builder("hi", Time::from_ticks(1_000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1e-4,
            })
            .task(
                Task::new("h0")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10)))
                    .with_detect_overhead(Time::from_ticks(2))
                    .with_voting_overhead(Time::from_ticks(2)),
            )
            .task(
                Task::new("h1")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10)))
                    .with_detect_overhead(Time::from_ticks(2))
                    .with_voting_overhead(Time::from_ticks(2)),
            )
            .channel(0, 1, 8)
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(1_000))
            .criticality(Criticality::Droppable { service: 2.0 })
            .task(Task::new("l0").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(20))))
            .build()
            .unwrap();
        (AppSet::new(vec![hi, lo]).unwrap(), arch(3))
    }

    #[test]
    fn identical_parents_diff_to_nothing() {
        let (apps, arch) = system();
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(7);
        let g = space.random(&mut rng);
        let edits = diff_genomes(&space, &g, &g);
        assert!(edits.is_empty());
        let affect = may_affect(&apps, &arch, &g, &g, &edits).unwrap();
        assert!(affect.apps.is_empty(), "empty diff must affect nothing");
        assert!(!affect.all_scenarios);
        assert_eq!(affect.size(), 0);
    }

    #[test]
    fn single_gene_edits_classify_correctly() {
        let (apps, arch) = system();
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(7);
        let parent = space.random(&mut rng);

        let mut rebound = parent.clone();
        rebound.genes[0].binding = space
            .allowed_procs(0)
            .iter()
            .copied()
            .find(|&p| p != parent.genes[0].binding)
            .unwrap();
        assert_eq!(
            diff_genomes(&space, &parent, &rebound),
            vec![GenomeEdit::MappingGene { flat: 0 }]
        );

        let mut dropped = parent.clone();
        dropped.keep[0] = !dropped.keep[0];
        assert_eq!(
            diff_genomes(&space, &parent, &dropped),
            vec![GenomeEdit::DropBit {
                app: space.droppable_apps()[0]
            }]
        );

        let mut alloc = parent.clone();
        alloc.alloc[1] = !alloc.alloc[1];
        let edits = diff_genomes(&space, &parent, &alloc);
        assert_eq!(
            edits,
            vec![GenomeEdit::AllocBit {
                proc: ProcId::new(1)
            }]
        );
        // Alloc-only edits have an empty analysis-affect set.
        let affect = may_affect(&apps, &arch, &parent, &alloc, &edits).unwrap();
        assert!(affect.apps.is_empty());
    }

    /// A drop-bit flip that empties the (single-task) droppable app's
    /// contribution still reports the closure from that app.
    #[test]
    fn drop_bit_flip_affects_the_shared_pe_closure() {
        let (apps, arch) = system();
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(3);
        // Force everything onto p0 so the closure spans both apps.
        let mut parent = space.random(&mut rng);
        for g in &mut parent.genes {
            g.binding = ProcId::new(0);
            g.hardening = crate::genome::GeneHardening::None;
        }
        let mut child = parent.clone();
        child.keep[0] = !child.keep[0];
        let edits = diff_genomes(&space, &parent, &child);
        let affect = may_affect(&apps, &arch, &parent, &child, &edits).unwrap();
        assert_eq!(affect.apps, vec![AppId::new(0), AppId::new(1)]);
        assert!(affect.all_scenarios);
        assert_eq!(affect.size(), 2);
    }

    /// Crossover children differ from either parent in many genes at once;
    /// the diff decomposes every one and the affect set stays within the
    /// app universe.
    #[test]
    fn crossover_produces_multi_gene_diffs() {
        let (apps, arch) = system();
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(11);
        let a = space.random(&mut rng);
        let b = space.random(&mut rng);
        let child = space.crossover(&a, &b, &mut rng);
        let edits = diff_genomes(&space, &a, &child);
        // Every edit must reference a valid flat index / keep slot / proc.
        for e in &edits {
            match *e {
                GenomeEdit::MappingGene { flat } | GenomeEdit::HardeningDegree { flat } => {
                    assert!(flat < a.genes.len())
                }
                GenomeEdit::DropBit { app } => {
                    assert!(space.droppable_apps().contains(&app))
                }
                GenomeEdit::AllocBit { proc } => assert!(proc.index() < space.num_procs()),
            }
        }
        // The child is a section-wise mix of a and b: any gene difference
        // from `a` must equal `b`'s gene.
        for (flat, g) in child.genes.iter().enumerate() {
            assert!(g == &a.genes[flat] || g == &b.genes[flat]);
        }
        if let Some(affect) = may_affect(&apps, &arch, &a, &child, &edits) {
            assert!(affect.apps.len() <= apps.num_apps());
        }
        // Self-crossover is the identity: no edits.
        let same = space.crossover(&a, &a, &mut rng);
        assert!(diff_genomes(&space, &a, &same).is_empty());
    }

    /// A counting backend proving that an identical-parent re-analysis
    /// performs **zero** backend work while returning bit-identical results.
    struct CountingBackend<'a> {
        inner: HolisticAnalysis<'a>,
        calls: AtomicUsize,
    }

    impl SchedBackend for CountingBackend<'_> {
        fn num_tasks(&self) -> usize {
            self.inner.num_tasks()
        }
        fn analyze(&self, bounds: &[ExecBounds]) -> TaskWindows {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.inner.analyze(bounds)
        }
        fn analyze_from(&self, bounds: &[ExecBounds], seed: &TaskWindows) -> TaskWindows {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.inner.analyze_from(bounds, seed)
        }
    }

    #[test]
    fn identical_parent_reanalysis_makes_zero_backend_calls() {
        let (apps, arch) = system();
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = space.random(&mut rng);
        repair_structure(&mut g, &space, &mut rng);
        repair_reliability(&mut g, &space, &apps, &arch, &mut rng, 10);
        let (plan, dropped, bindings) = space.decode(&g);
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let placement = hsys
            .tasks()
            .map(|(_, t)| match t.fixed_proc {
                Some(p) => p,
                None => bindings[hsys.flat_of_origin(t.origin).expect("primary origin")],
            })
            .collect();
        let mapping = Mapping::new(&hsys, &arch, placement).unwrap();
        let policies =
            uniform_policies(arch.num_processors(), SchedPolicy::FixedPriorityPreemptive);
        let nominal = nominal_bounds(&hsys, &arch, &mapping);
        let backend = CountingBackend {
            inner: HolisticAnalysis::new(&hsys, &arch, &mapping, policies.clone()),
            calls: AtomicUsize::new(0),
        };
        let opts = AnalysisOptions::default();
        let (cold, sols, _) = proposed_analysis_delta(
            &backend, &hsys, &arch, &mapping, &nominal, &dropped, opts, None,
        );
        let cold_calls = backend.calls.swap(0, Ordering::Relaxed);
        assert_eq!(cold_calls, cold.backend_calls);

        let (warm, _, reused) = proposed_analysis_delta(
            &backend,
            &hsys,
            &arch,
            &mapping,
            &nominal,
            &dropped,
            opts,
            Some(&sols),
        );
        assert_eq!(warm, cold, "reuse must be bit-identical");
        assert_eq!(reused, cold.backend_calls);
        assert_eq!(
            backend.calls.load(Ordering::Relaxed),
            0,
            "an identical parent must satisfy every run"
        );
    }
}
