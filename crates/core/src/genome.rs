//! The DSE chromosome (Fig. 4 of the paper).
//!
//! A genotype consists of three sections:
//!
//! 1. **allocation** — one bit per processor (allocated or not);
//! 2. **(non-)droppable selection** — one bit per droppable application:
//!    set = the application is *kept* through critical mode, clear = it is
//!    dropped when the system goes critical;
//! 3. **binding/hardening** — per original task: the primary binding, the
//!    hardening technique (re-execution degree, or active/passive replica
//!    placements plus the voter placement).

use mcmap_hardening::{HardeningPlan, TaskHardening};
use mcmap_model::{AppId, AppSet, Architecture, ProcId};
use rand::seq::SliceRandom;
use rand::RngCore;

/// Hardening section of one task gene. Unlike [`TaskHardening`] this is a
/// closed set of alternatives, mirroring the paper's per-task technique
/// choice.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GeneHardening {
    /// No hardening.
    None,
    /// Re-execution with `k ≥ 1` retries.
    Reexec(u8),
    /// Active replication: extra copies on the given processors, voter
    /// placement last.
    Active {
        /// Processors of the additional always-on copies.
        replicas: Vec<ProcId>,
        /// Voter placement.
        voter: ProcId,
    },
    /// Passive replication: one extra always-on copy and standbys.
    Passive {
        /// Processors of the additional always-on copies.
        actives: Vec<ProcId>,
        /// Processors of the on-demand standbys.
        standbys: Vec<ProcId>,
        /// Voter placement.
        voter: ProcId,
    },
}

impl GeneHardening {
    /// Converts to the hardening crate's per-task specification.
    pub fn to_task_hardening(&self) -> TaskHardening {
        match self {
            GeneHardening::None => TaskHardening::none(),
            GeneHardening::Reexec(k) => TaskHardening::reexecution(*k),
            GeneHardening::Active { replicas, voter } => {
                TaskHardening::active(replicas.clone(), *voter)
            }
            GeneHardening::Passive {
                actives,
                standbys,
                voter,
            } => TaskHardening::passive(actives.clone(), standbys.clone(), *voter),
        }
    }

    /// Every processor referenced by this gene (replicas and voter).
    pub fn referenced_procs(&self) -> Vec<ProcId> {
        match self {
            GeneHardening::None | GeneHardening::Reexec(_) => Vec::new(),
            GeneHardening::Active { replicas, voter } => {
                let mut v = replicas.clone();
                v.push(*voter);
                v
            }
            GeneHardening::Passive {
                actives,
                standbys,
                voter,
            } => {
                let mut v = actives.clone();
                v.extend_from_slice(standbys);
                v.push(*voter);
                v
            }
        }
    }
}

/// One task's gene: binding plus hardening.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TaskGene {
    /// Processor of the primary copy.
    pub binding: ProcId,
    /// Hardening decision.
    pub hardening: GeneHardening,
}

/// The complete chromosome.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Genome {
    /// Allocation bit per processor.
    pub alloc: Vec<bool>,
    /// Keep bit per *droppable* application (aligned with
    /// [`GenomeSpace::droppable_apps`]): clear = dropped in critical mode.
    pub keep: Vec<bool>,
    /// Per-original-task genes, in flat-index order.
    pub genes: Vec<TaskGene>,
}

impl Genome {
    /// Converts the chromosome into the crate-neutral view consumed by the
    /// `mcmap-lint` genome-shape pass (`mcmap-lint` sits below this crate in
    /// the dependency graph, so it cannot name [`Genome`] directly).
    pub fn lint_view(&self) -> mcmap_lint::GenomeView {
        mcmap_lint::GenomeView {
            alloc: self.alloc.clone(),
            keep: self.keep.clone(),
            genes: self
                .genes
                .iter()
                .map(|g| mcmap_lint::GeneView {
                    binding: g.binding,
                    hardening: match &g.hardening {
                        GeneHardening::None => mcmap_lint::HardeningView::None,
                        GeneHardening::Reexec(k) => mcmap_lint::HardeningView::Reexec(*k),
                        GeneHardening::Active { replicas, voter } => {
                            mcmap_lint::HardeningView::Active {
                                replicas: replicas.clone(),
                                voter: *voter,
                            }
                        }
                        GeneHardening::Passive {
                            actives,
                            standbys,
                            voter,
                        } => mcmap_lint::HardeningView::Passive {
                            actives: actives.clone(),
                            standbys: standbys.clone(),
                            voter: *voter,
                        },
                    },
                })
                .collect(),
        }
    }
}

/// The sampling space of chromosomes for one (application set, architecture)
/// pair, plus the genetic operators over it.
#[derive(Debug, Clone)]
pub struct GenomeSpace {
    num_procs: usize,
    /// Kind-compatible processors per flat task index.
    allowed: Vec<Vec<ProcId>>,
    /// Owning application per flat task index.
    app_of: Vec<AppId>,
    /// Whether the owning application is droppable, per flat task index.
    task_droppable: Vec<bool>,
    droppable: Vec<AppId>,
    /// Maximum re-execution degree `k`.
    pub max_reexec: u8,
    /// Maximum number of additional replicas per task.
    pub max_replicas: u8,
}

impl GenomeSpace {
    /// Builds the space, precomputing per-task kind-compatible processors.
    pub fn new(apps: &AppSet, arch: &Architecture) -> Self {
        let allowed = apps
            .task_refs()
            .iter()
            .map(|&r| {
                let task = apps.task(r);
                arch.processors()
                    .filter(|(_, p)| task.runs_on(p.kind))
                    .map(|(id, _)| id)
                    .collect()
            })
            .collect();
        GenomeSpace {
            num_procs: arch.num_processors(),
            allowed,
            app_of: apps.task_refs().iter().map(|r| r.app).collect(),
            task_droppable: apps
                .task_refs()
                .iter()
                .map(|r| apps.app(r.app).criticality().is_droppable())
                .collect(),
            droppable: apps.droppable_apps().collect(),
            max_reexec: 2,
            max_replicas: 2,
        }
    }

    /// Caps the re-execution degree explored.
    pub fn with_max_reexec(mut self, k: u8) -> Self {
        self.max_reexec = k;
        self
    }

    /// Caps the number of additional replicas explored.
    pub fn with_max_replicas(mut self, n: u8) -> Self {
        self.max_replicas = n;
        self
    }

    /// The droppable applications, in keep-bit order.
    pub fn droppable_apps(&self) -> &[AppId] {
        &self.droppable
    }

    /// The application owning the task at `flat` index.
    pub fn app_of(&self, flat: usize) -> AppId {
        self.app_of[flat]
    }

    /// Number of processors in the platform.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Kind-compatible processors of one task (by flat index).
    pub fn allowed_procs(&self, flat: usize) -> &[ProcId] {
        &self.allowed[flat]
    }

    fn random_proc(&self, rng: &mut dyn RngCore) -> ProcId {
        ProcId::new((rng.next_u32() as usize) % self.num_procs)
    }

    fn random_allowed(&self, flat: usize, rng: &mut dyn RngCore) -> ProcId {
        *self.allowed[flat]
            .choose(rng)
            .expect("model validation guarantees every task runs somewhere")
    }

    fn random_hardening(&self, flat: usize, rng: &mut dyn RngCore) -> GeneHardening {
        match rng.next_u32() % 4 {
            0 | 1 => GeneHardening::None,
            2 if self.max_reexec > 0 => {
                GeneHardening::Reexec(1 + (rng.next_u32() as u8) % self.max_reexec)
            }
            3 if self.max_replicas > 0 => {
                let n = 1 + (rng.next_u32() as usize) % self.max_replicas as usize;
                let replicas: Vec<ProcId> =
                    (0..n).map(|_| self.random_allowed(flat, rng)).collect();
                if rng.next_u32().is_multiple_of(2) {
                    GeneHardening::Active {
                        replicas,
                        voter: self.random_proc(rng),
                    }
                } else {
                    GeneHardening::Passive {
                        actives: replicas,
                        standbys: vec![self.random_allowed(flat, rng)],
                        voter: self.random_proc(rng),
                    }
                }
            }
            _ => GeneHardening::None,
        }
    }

    /// Samples a uniform random chromosome (at least one allocated
    /// processor is guaranteed).
    pub fn random(&self, rng: &mut dyn RngCore) -> Genome {
        let mut alloc: Vec<bool> = (0..self.num_procs)
            .map(|_| rng.next_u32() % 2 == 1)
            .collect();
        if !alloc.iter().any(|&b| b) {
            let i = (rng.next_u32() as usize) % self.num_procs;
            alloc[i] = true;
        }
        let keep = self
            .droppable
            .iter()
            .map(|_| rng.next_u32() % 2 == 1)
            .collect();
        let genes = (0..self.allowed.len())
            .map(|flat| TaskGene {
                binding: self.random_allowed(flat, rng),
                hardening: self.random_hardening(flat, rng),
            })
            .collect();
        Genome { alloc, keep, genes }
    }

    /// Samples a *clustered* heuristic chromosome: every processor
    /// allocated, each application's tasks packed onto one randomly chosen
    /// (per-task kind-compatible) processor, critical tasks hardened by
    /// re-execution, droppable applications dropped with probability ½.
    /// Mixing a few of these into the initial population gives the GA a
    /// feasible region to improve on — pure random mappings of large
    /// systems are almost never schedulable.
    pub fn clustered(&self, rng: &mut dyn RngCore) -> Genome {
        let alloc = vec![true; self.num_procs];
        let keep = self
            .droppable
            .iter()
            .map(|_| rng.next_u32() % 2 == 1)
            .collect();
        // One preferred processor per application; a random permutation
        // keeps applications apart as long as processors are available.
        let num_apps = self
            .app_of
            .iter()
            .map(|a| a.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut perm: Vec<usize> = (0..self.num_procs).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, (rng.next_u32() as usize) % (i + 1));
        }
        let home: Vec<ProcId> = (0..num_apps)
            .map(|a| ProcId::new(perm[a % self.num_procs]))
            .collect();
        let genes = (0..self.allowed.len())
            .map(|flat| {
                let preferred = home[self.app_of[flat].index()];
                let binding = if self.allowed[flat].contains(&preferred) {
                    preferred
                } else {
                    self.random_allowed(flat, rng)
                };
                let hardening = if self.task_droppable[flat] || self.max_reexec == 0 {
                    GeneHardening::None
                } else {
                    // The mildest hardening: deadline-friendliest.
                    GeneHardening::Reexec(1)
                };
                TaskGene { binding, hardening }
            })
            .collect();
        Genome { alloc, keep, genes }
    }

    /// Section-wise uniform crossover.
    pub fn crossover(&self, a: &Genome, b: &Genome, rng: &mut dyn RngCore) -> Genome {
        let alloc = a
            .alloc
            .iter()
            .zip(&b.alloc)
            .map(|(&x, &y)| {
                if rng.next_u32().is_multiple_of(2) {
                    x
                } else {
                    y
                }
            })
            .collect();
        let keep = a
            .keep
            .iter()
            .zip(&b.keep)
            .map(|(&x, &y)| {
                if rng.next_u32().is_multiple_of(2) {
                    x
                } else {
                    y
                }
            })
            .collect();
        let genes = a
            .genes
            .iter()
            .zip(&b.genes)
            .map(|(x, y)| {
                if rng.next_u32().is_multiple_of(2) {
                    x.clone()
                } else {
                    y.clone()
                }
            })
            .collect();
        Genome { alloc, keep, genes }
    }

    /// Point mutation: flips one allocation bit, one keep bit, rebinds one
    /// task, or re-randomizes one task's hardening.
    pub fn mutate(&self, g: &mut Genome, rng: &mut dyn RngCore) {
        match rng.next_u32() % 4 {
            0 => {
                let i = (rng.next_u32() as usize) % g.alloc.len();
                g.alloc[i] = !g.alloc[i];
            }
            1 if !g.keep.is_empty() => {
                let i = (rng.next_u32() as usize) % g.keep.len();
                g.keep[i] = !g.keep[i];
            }
            2 => {
                let i = (rng.next_u32() as usize) % g.genes.len();
                g.genes[i].binding = self.random_allowed(i, rng);
            }
            _ => {
                let i = (rng.next_u32() as usize) % g.genes.len();
                g.genes[i].hardening = self.random_hardening(i, rng);
            }
        }
    }

    /// Decodes the chromosome into a hardening plan, the dropped application
    /// set `T_d`, and the per-original-task binding vector.
    pub fn decode(&self, g: &Genome) -> (HardeningPlan, Vec<AppId>, Vec<ProcId>) {
        let mut plan_entries = Vec::with_capacity(g.genes.len());
        for gene in &g.genes {
            plan_entries.push(gene.hardening.to_task_hardening());
        }
        let dropped: Vec<AppId> = self
            .droppable
            .iter()
            .zip(&g.keep)
            .filter(|(_, &kept)| !kept)
            .map(|(&a, _)| a)
            .collect();
        let bindings: Vec<ProcId> = g.genes.iter().map(|gene| gene.binding).collect();
        (HardeningPlan::from_entries(plan_entries), dropped, bindings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_model::{Criticality, ExecBounds, ProcKind, Processor, Task, TaskGraph, Time};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (AppSet, Architecture) {
        let arch = Architecture::builder()
            .homogeneous(4, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap();
        let hi = TaskGraph::builder("hi", Time::from_ticks(100))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1e-3,
            })
            .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
            .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
            .channel(0, 1, 8)
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(200))
            .criticality(Criticality::Droppable { service: 2.0 })
            .task(Task::new("c").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(20))))
            .build()
            .unwrap();
        (AppSet::new(vec![hi, lo]).unwrap(), arch)
    }

    #[test]
    fn random_genomes_are_structurally_valid() {
        let (apps, arch) = fixture();
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let g = space.random(&mut rng);
            assert_eq!(g.alloc.len(), 4);
            assert_eq!(g.keep.len(), 1);
            assert_eq!(g.genes.len(), 3);
            assert!(g.alloc.iter().any(|&b| b), "at least one PE allocated");
            for (flat, gene) in g.genes.iter().enumerate() {
                assert!(space.allowed_procs(flat).contains(&gene.binding));
            }
        }
    }

    #[test]
    fn decode_produces_consistent_sections() {
        let (apps, arch) = fixture();
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = space.random(&mut rng);
        g.keep = vec![false];
        g.genes[0].hardening = GeneHardening::Reexec(2);
        let (plan, dropped, bindings) = space.decode(&g);
        assert_eq!(dropped, vec![AppId::new(2 - 1)]);
        assert_eq!(plan.by_flat_index(0).reexecutions, 2);
        assert_eq!(bindings.len(), 3);

        g.keep = vec![true];
        let (_, dropped, _) = space.decode(&g);
        assert!(dropped.is_empty());
    }

    #[test]
    fn crossover_mixes_sections_only_from_parents() {
        let (apps, arch) = fixture();
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(3);
        let a = space.random(&mut rng);
        let b = space.random(&mut rng);
        for _ in 0..20 {
            let child = space.crossover(&a, &b, &mut rng);
            for (i, gene) in child.genes.iter().enumerate() {
                assert!(gene == &a.genes[i] || gene == &b.genes[i]);
            }
            for (i, &bit) in child.alloc.iter().enumerate() {
                assert!(bit == a.alloc[i] || bit == b.alloc[i]);
            }
        }
    }

    #[test]
    fn mutation_changes_something_eventually() {
        let (apps, arch) = fixture();
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(4);
        let original = space.random(&mut rng);
        let mut mutated = original.clone();
        let mut changed = false;
        for _ in 0..20 {
            space.mutate(&mut mutated, &mut rng);
            if mutated != original {
                changed = true;
                break;
            }
        }
        assert!(changed);
    }

    #[test]
    fn hardening_conversion_round_trips() {
        let g = GeneHardening::Active {
            replicas: vec![ProcId::new(1)],
            voter: ProcId::new(0),
        };
        let h = g.to_task_hardening();
        assert!(h.replication.is_replicated());
        assert_eq!(h.replication.active_copies(), 2);
        assert_eq!(g.referenced_procs(), vec![ProcId::new(1), ProcId::new(0)]);
        assert!(GeneHardening::None.referenced_procs().is_empty());
        assert!(GeneHardening::Reexec(1).referenced_procs().is_empty());
        let p = GeneHardening::Passive {
            actives: vec![ProcId::new(1)],
            standbys: vec![ProcId::new(2)],
            voter: ProcId::new(3),
        };
        assert_eq!(p.referenced_procs().len(), 3);
    }

    #[test]
    fn random_hardening_respects_caps() {
        let (apps, arch) = fixture();
        let space = GenomeSpace::new(&apps, &arch)
            .with_max_reexec(1)
            .with_max_replicas(1);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let g = space.random(&mut rng);
            for gene in &g.genes {
                match &gene.hardening {
                    GeneHardening::Reexec(k) => assert!(*k == 1),
                    GeneHardening::Active { replicas, .. } => assert_eq!(replicas.len(), 1),
                    GeneHardening::Passive {
                        actives, standbys, ..
                    } => {
                        assert_eq!(actives.len(), 1);
                        assert_eq!(standbys.len(), 1);
                    }
                    GeneHardening::None => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod clustered_tests {
    use super::*;
    use mcmap_model::{Criticality, ExecBounds, ProcKind, Processor, Task, TaskGraph, Time};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (AppSet, Architecture) {
        let arch = Architecture::builder()
            .homogeneous(4, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap();
        let hi = TaskGraph::builder("hi", Time::from_ticks(100))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1e-3,
            })
            .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .channel(0, 1, 8)
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(200))
            .criticality(Criticality::Droppable { service: 2.0 })
            .task(Task::new("c").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .build()
            .unwrap();
        (AppSet::new(vec![hi, lo]).unwrap(), arch)
    }

    #[test]
    fn clustered_allocates_everything_and_packs_apps() {
        let (apps, arch) = fixture();
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let g = space.clustered(&mut rng);
            assert!(g.alloc.iter().all(|&b| b));
            // Tasks of the same application share one processor.
            assert_eq!(g.genes[0].binding, g.genes[1].binding);
            // Critical tasks carry the mildest re-execution hardening.
            assert_eq!(g.genes[0].hardening, GeneHardening::Reexec(1));
            assert_eq!(g.genes[1].hardening, GeneHardening::Reexec(1));
            // Droppable tasks stay unhardened.
            assert_eq!(g.genes[2].hardening, GeneHardening::None);
        }
    }

    #[test]
    fn clustered_spreads_apps_over_distinct_processors() {
        let (apps, arch) = fixture();
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(4);
        // Two apps, four processors: homes always differ (permutation).
        for _ in 0..20 {
            let g = space.clustered(&mut rng);
            assert_ne!(g.genes[0].binding, g.genes[2].binding);
        }
    }
}
