//! Operating-point portfolios: the design-time → run-time hand-off.
//!
//! The DSE's Pareto archive is a search artifact — hundreds of genomes,
//! most of them dominated or infeasible. What a runtime manager needs is
//! a *portfolio*: a small, dominance-pruned set of operating points, each
//! carrying everything required to switch into it at a mode change — the
//! chromosome (from which the hardened system and mapping are
//! re-derived deterministically), the analyzed per-application WCRT
//! bounds, the expected power and delivered service, and the set of
//! applications the point degrades (drops in the critical mode).
//!
//! The on-disk format reuses the `mcmap-resilience` sealed envelope
//! (version tag + length + FNV-1a checksum, atomic write with `.bak`
//! rotation), with all `f64` values as IEEE-754 bit patterns and all
//! [`Time`] values as raw ticks, so a portfolio round-trips
//! bit-identically. A portfolio records the [`MappingProblem::context`]
//! fingerprint it was extracted under; [`Portfolio::materialize`] refuses
//! a problem with a different fingerprint, because genomes only decode to
//! the same design under the same model, policies, and repair seed.

use std::path::Path;

use mcmap_ga::Individual;
use mcmap_hardening::{harden, HardenedSystem, TechniqueHistogram};
use mcmap_model::{AppId, ProcId, Time};
use mcmap_obs::parse_json;
use mcmap_resilience::{atomic_write_rotating, backup_path, seal, unseal, ResilienceError};
use mcmap_sched::Mapping;

use crate::checkpoint::{
    as_arr, as_u64, as_usize, decode_genome, get, malformed, push_genome, push_u64s,
};
use crate::dse::MappingProblem;
use crate::genome::Genome;

/// Envelope kind tag for portfolio files.
const KIND: &str = "portfolio";

/// One distilled operating point: a non-dominated, feasible design from
/// the Pareto archive, with its analyzed guarantees attached.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// The chromosome. The hardened system and the mapping are re-derived
    /// from it on [`Portfolio::materialize`] — storing the genome instead
    /// of the expanded design keeps the file small and guarantees the
    /// materialized point is exactly what the DSE evaluated.
    pub genome: Genome,
    /// Expected power (the paper's weighted normal/critical mix).
    pub power: f64,
    /// Delivered service: total service minus the dropped applications'.
    pub service: f64,
    /// Applications this point degrades — dropped at the switch into the
    /// critical mode. The runtime ladder treats these as the point's
    /// standing service contract.
    pub dropped: Vec<AppId>,
    /// Analyzed per-application WCRT bounds (worst case over all fault
    /// scenarios within the hardening coverage). `Time::MAX` marks an
    /// application with no finite bound (dropped applications keep their
    /// analyzed bound from the normal mode when one exists).
    pub app_wcrt: Vec<Time>,
}

/// A sealed, dominance-pruned set of operating points, ordered from the
/// full-service point down the degradation ladder (service descending,
/// power ascending on ties) — index order *is* ladder order.
#[derive(Debug, Clone, PartialEq)]
pub struct Portfolio {
    /// The [`MappingProblem::context`] fingerprint the points were
    /// extracted under; materialization against any other problem is
    /// refused.
    pub context: u64,
    /// The operating points, in ladder order.
    pub points: Vec<OperatingPoint>,
}

/// An operating point expanded into the executable design: the hardened
/// system, the mapping, and the guarantees — everything the simulator and
/// the runtime manager consume.
#[derive(Debug)]
pub struct MaterializedPoint {
    /// The replica/voter-expanded task set.
    pub hsys: HardenedSystem,
    /// Task-to-processor placement over `hsys`.
    pub mapping: Mapping,
    /// Applications dropped in this point's critical mode.
    pub dropped: Vec<AppId>,
    /// Analyzed per-application WCRT bounds (see
    /// [`OperatingPoint::app_wcrt`]).
    pub app_wcrt: Vec<Time>,
    /// Expected power.
    pub power: f64,
    /// Delivered service.
    pub service: f64,
    /// Hardening-technique census of the point's plan.
    pub histogram: TechniqueHistogram,
}

impl MaterializedPoint {
    /// Processors this point actually uses (primary bindings, replicas,
    /// and voters). A point survives the loss of a processor it does not
    /// use.
    pub fn used_processors(&self) -> Vec<ProcId> {
        let mut used: Vec<ProcId> = self.mapping.placement().to_vec();
        used.sort_by_key(|p| p.index());
        used.dedup();
        used
    }
}

impl Portfolio {
    /// Distills a Pareto front into a portfolio: re-reports every genome
    /// through the problem's repair + analysis pipeline, keeps the
    /// feasible ones, prunes (power, lost-service) dominated points and
    /// exact duplicates, and orders the survivors into the degradation
    /// ladder (service descending, then power ascending, then genome
    /// order for full determinism).
    pub fn extract(problem: &MappingProblem<'_>, front: &[Individual<Genome>]) -> Portfolio {
        struct Candidate {
            genome: Genome,
            power: f64,
            service: f64,
            lost: f64,
            dropped: Vec<AppId>,
            app_wcrt: Vec<Time>,
        }
        let mut cands: Vec<Candidate> = Vec::new();
        for ind in front {
            let r = problem.report(&ind.genotype);
            if !r.feasible {
                continue;
            }
            // Exact duplicates (same phenotype reached by different
            // chromosomes) add nothing to the ladder.
            if cands.iter().any(|c| {
                c.power.to_bits() == r.power.to_bits()
                    && c.dropped == r.dropped
                    && c.app_wcrt == r.app_wcrt
            }) {
                continue;
            }
            cands.push(Candidate {
                genome: ind.genotype.clone(),
                power: r.power,
                service: r.service,
                lost: r.lost_service,
                dropped: r.dropped,
                app_wcrt: r.app_wcrt,
            });
        }
        // Dominance pruning on (power, lost-service): a point stays only
        // if no other candidate is at least as good on both axes and
        // strictly better on one.
        let keep: Vec<bool> = (0..cands.len())
            .map(|i| {
                !cands.iter().enumerate().any(|(j, c)| {
                    j != i
                        && c.power <= cands[i].power
                        && c.lost <= cands[i].lost
                        && (c.power < cands[i].power || c.lost < cands[i].lost)
                })
            })
            .collect();
        let mut points: Vec<OperatingPoint> = cands
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| {
                k.then_some(OperatingPoint {
                    genome: c.genome,
                    power: c.power,
                    service: c.service,
                    dropped: c.dropped,
                    app_wcrt: c.app_wcrt,
                })
            })
            .collect();
        points.sort_by(|a, b| {
            b.service
                .total_cmp(&a.service)
                .then(a.power.total_cmp(&b.power))
                .then_with(|| format!("{:?}", a.genome).cmp(&format!("{:?}", b.genome)))
        });
        Portfolio {
            context: problem.context(),
            points,
        }
    }

    /// Expands every point into its executable design via the problem's
    /// deterministic repair pipeline.
    ///
    /// # Errors
    ///
    /// Returns a malformed-class [`ResilienceError`] when the problem's
    /// context fingerprint differs from the one recorded at extraction,
    /// or when a stored genome no longer decodes to a valid design (both
    /// indicate the portfolio belongs to a different model or
    /// configuration).
    pub fn materialize(
        &self,
        problem: &MappingProblem<'_>,
    ) -> Result<Vec<MaterializedPoint>, ResilienceError> {
        let path = Path::new("<portfolio>");
        if problem.context() != self.context {
            return Err(malformed(
                path,
                format!(
                    "context fingerprint mismatch: portfolio={:016x} problem={:016x} \
                     (extracted under a different model, policy set, or seed)",
                    self.context,
                    problem.context()
                ),
            ));
        }
        let mut out = Vec::with_capacity(self.points.len());
        for (i, point) in self.points.iter().enumerate() {
            let (plan, dropped, bindings) = problem.decode_repaired(&point.genome);
            let hsys = harden(problem.apps(), &plan, problem.arch())
                .map_err(|e| malformed(path, format!("point {i}: hardening failed: {e}")))?;
            let placement: Vec<ProcId> = hsys
                .tasks()
                .map(|(_, t)| match t.fixed_proc {
                    Some(p) => p,
                    None => {
                        let flat = hsys
                            .flat_of_origin(t.origin)
                            .expect("primary origins are tracked");
                        bindings[flat]
                    }
                })
                .collect();
            let histogram = plan.technique_histogram();
            let mapping = Mapping::new(&hsys, problem.arch(), placement)
                .map_err(|e| malformed(path, format!("point {i}: invalid mapping: {e}")))?;
            out.push(MaterializedPoint {
                hsys,
                mapping,
                dropped,
                app_wcrt: point.app_wcrt.clone(),
                power: point.power,
                service: point.service,
                histogram,
            });
        }
        Ok(out)
    }

    /// Serializes to the sealed envelope byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        seal(KIND, encode(self).as_bytes())
    }

    /// Deserializes from sealed envelope bytes. `path` is used only for
    /// error reporting.
    ///
    /// # Errors
    ///
    /// Returns a corruption-class [`ResilienceError`] (truncated payload,
    /// checksum mismatch, version mismatch, malformed JSON).
    pub fn from_bytes(path: &Path, bytes: &[u8]) -> Result<Self, ResilienceError> {
        let payload = unseal(KIND, path, bytes)?;
        let text = std::str::from_utf8(&payload).map_err(|_| ResilienceError::Malformed {
            path: path.to_path_buf(),
            detail: "payload is not valid UTF-8".into(),
        })?;
        decode(path, text)
    }
}

/// Writes `portfolio` to `path` atomically, rotating any existing file to
/// `<path>.bak` first.
///
/// # Errors
///
/// Returns [`ResilienceError::Io`] when staging, renaming, or syncing
/// fails.
pub fn write_portfolio(path: &Path, portfolio: &Portfolio) -> Result<(), ResilienceError> {
    atomic_write_rotating(path, &portfolio.to_bytes())
}

/// Reads the portfolio at `path`, falling back to `<path>.bak` when the
/// primary is corrupt. Returns the portfolio and whether the backup was
/// used.
///
/// # Errors
///
/// Propagates the primary's error when there is no usable backup.
pub fn read_portfolio(path: &Path) -> Result<(Portfolio, bool), ResilienceError> {
    let read = |p: &Path| -> Result<Portfolio, ResilienceError> {
        let bytes = std::fs::read(p).map_err(|e| ResilienceError::io(p, "read", e))?;
        Portfolio::from_bytes(p, &bytes)
    };
    match read(path) {
        Ok(p) => Ok((p, false)),
        Err(primary) if primary.is_corruption() => match read(&backup_path(path)) {
            Ok(p) => Ok((p, true)),
            Err(_) => Err(primary),
        },
        Err(e) => Err(e),
    }
}

fn encode(p: &Portfolio) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"context\":");
    out.push_str(&p.context.to_string());
    out.push_str(",\"points\":[");
    for (i, point) in p.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"genome\":");
        push_genome(&mut out, &point.genome);
        out.push_str(",\"power\":");
        out.push_str(&point.power.to_bits().to_string());
        out.push_str(",\"service\":");
        out.push_str(&point.service.to_bits().to_string());
        out.push_str(",\"dropped\":");
        push_u64s(&mut out, point.dropped.iter().map(|a| a.index() as u64));
        out.push_str(",\"app_wcrt\":");
        push_u64s(&mut out, point.app_wcrt.iter().map(|t| t.ticks()));
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn decode(path: &Path, text: &str) -> Result<Portfolio, ResilienceError> {
    let root = parse_json(text).map_err(|e| malformed(path, format!("invalid JSON: {e}")))?;
    let context = as_u64(path, get(path, &root, "context")?, "context")?;
    let mut points = Vec::new();
    for v in as_arr(path, get(path, &root, "points")?, "points")? {
        let genome = decode_genome(path, get(path, v, "genome")?)?;
        let power = f64::from_bits(as_u64(path, get(path, v, "power")?, "power")?);
        let service = f64::from_bits(as_u64(path, get(path, v, "service")?, "service")?);
        let dropped = as_arr(path, get(path, v, "dropped")?, "dropped")?
            .iter()
            .map(|a| Ok(AppId::new(as_usize(path, a, "dropped app")?)))
            .collect::<Result<Vec<_>, ResilienceError>>()?;
        let app_wcrt = as_arr(path, get(path, v, "app_wcrt")?, "app_wcrt")?
            .iter()
            .map(|t| Ok(Time::from_ticks(as_u64(path, t, "app_wcrt")?)))
            .collect::<Result<Vec<_>, ResilienceError>>()?;
        points.push(OperatingPoint {
            genome,
            power,
            service,
            dropped,
            app_wcrt,
        });
    }
    Ok(Portfolio { context, points })
}
