//! Design sensitivity analysis: explain and perturb a finished design.
//!
//! The DSE returns a chromosome; engineers want to know *why* it holds and
//! how fragile it is. This module computes, for a concrete design
//! (hardened system + mapping + dropped set):
//!
//! * per-application **slack** — deadline minus protocol WCRT, plus the
//!   binding state (fault-free or a specific trigger task);
//! * **hardening what-ifs** — the WCRT/reliability effect of raising or
//!   lowering one task's re-execution degree, re-running Algorithm 1 on the
//!   perturbed plan;
//! * **drop-set what-ifs** — the effect of restoring one dropped
//!   application.

use crate::analysis::{analyze, McAnalysis};
use mcmap_hardening::{
    harden, HTaskId, HardenedSystem, HardeningPlan, Reliability, Replication, TaskHardening,
};
use mcmap_model::{AppId, AppSet, Architecture, ProcId, Time};
use mcmap_sched::{Mapping, SchedPolicy};

/// Slack report for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSlack {
    /// The application.
    pub app: AppId,
    /// Protocol WCRT (normal-state for dropped applications).
    pub wcrt: Time,
    /// Relative deadline.
    pub deadline: Time,
    /// `deadline − wcrt` (zero when the deadline is missed).
    pub slack: Time,
    /// The trigger task whose fault scenario binds the WCRT (`None` when
    /// the fault-free state binds it).
    pub binding_trigger: Option<HTaskId>,
}

/// Effect of one hardening perturbation.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIf {
    /// Flat index of the perturbed task.
    pub flat: usize,
    /// Re-execution degree before/after.
    pub reexec: (u8, u8),
    /// Worst protocol WCRT over the *non-dropped* applications
    /// before/after.
    pub worst_wcrt: (Time, Time),
    /// Whether every reliability bound still holds after the perturbation.
    pub reliable_after: bool,
    /// Whether every deadline still holds after the perturbation.
    pub schedulable_after: bool,
}

/// A complete design under study.
#[derive(Debug)]
pub struct Sensitivity<'a> {
    apps: &'a AppSet,
    arch: &'a Architecture,
    policies: &'a [SchedPolicy],
    plan: HardeningPlan,
    bindings: Vec<ProcId>,
    dropped: Vec<AppId>,
}

impl<'a> Sensitivity<'a> {
    /// Creates the study for a decoded design: a hardening plan, the
    /// per-original-task primary bindings, and the dropped set.
    pub fn new(
        apps: &'a AppSet,
        arch: &'a Architecture,
        policies: &'a [SchedPolicy],
        plan: HardeningPlan,
        bindings: Vec<ProcId>,
        dropped: Vec<AppId>,
    ) -> Self {
        Sensitivity {
            apps,
            arch,
            policies,
            plan,
            bindings,
            dropped,
        }
    }

    fn instantiate(&self, plan: &HardeningPlan) -> Option<(HardenedSystem, Mapping)> {
        let hsys = harden(self.apps, plan, self.arch).ok()?;
        let placement: Vec<ProcId> = hsys
            .tasks()
            .map(|(_, t)| match t.fixed_proc {
                Some(p) => p,
                None => self.bindings[hsys.flat_of_origin(t.origin).expect("origin tracked")],
            })
            .collect();
        let mapping = Mapping::new(&hsys, self.arch, placement).ok()?;
        Some((hsys, mapping))
    }

    fn run(&self, plan: &HardeningPlan) -> Option<(HardenedSystem, Mapping, McAnalysis)> {
        let (hsys, mapping) = self.instantiate(plan)?;
        let mc = analyze(&hsys, self.arch, &mapping, self.policies, &self.dropped);
        Some((hsys, mapping, mc))
    }

    /// Per-application slack under the current design.
    ///
    /// Returns `None` if the design does not instantiate (invalid plan or
    /// mapping).
    pub fn slack(&self) -> Option<Vec<AppSlack>> {
        let (hsys, _, mc) = self.run(&self.plan)?;
        Some(
            self.apps
                .app_ids()
                .map(|app| {
                    let wcrt = mc.app_wcrt(&hsys, app, &self.dropped);
                    let deadline = self.apps.app(app).deadline();
                    AppSlack {
                        app,
                        wcrt,
                        deadline,
                        slack: deadline.saturating_sub(wcrt),
                        binding_trigger: mc.binding_trigger(&hsys, app),
                    }
                })
                .collect(),
        )
    }

    /// The worst protocol WCRT over all non-dropped applications — the
    /// design's headline timing figure.
    fn worst_alive_wcrt(&self, hsys: &HardenedSystem, mc: &McAnalysis) -> Time {
        self.apps
            .app_ids()
            .filter(|a| !self.dropped.contains(a))
            .map(|a| mc.app_wcrt(hsys, a, &self.dropped))
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// What happens if task `flat`'s re-execution degree becomes `k`
    /// (leaving its replication untouched)?
    ///
    /// Returns `None` if either the base or the perturbed design fails to
    /// instantiate.
    pub fn what_if_reexec(&self, flat: usize, k: u8) -> Option<WhatIf> {
        let (base_hsys, base_mapping, base_mc) = self.run(&self.plan)?;
        let _ = base_mapping;
        let before = self.plan.by_flat_index(flat).reexecutions;

        let mut plan = self.plan.clone();
        let mut entry = plan.by_flat_index(flat).clone();
        entry.reexecutions = k;
        plan.set_by_flat_index(flat, entry);

        let (hsys, mapping, mc) = self.run(&plan)?;
        let rel = Reliability::new(&hsys, self.arch);
        Some(WhatIf {
            flat,
            reexec: (before, k),
            worst_wcrt: (
                self.worst_alive_wcrt(&base_hsys, &base_mc),
                self.worst_alive_wcrt(&hsys, &mc),
            ),
            reliable_after: rel.all_satisfied(mapping.placement()),
            schedulable_after: mc.schedulable(&hsys, &self.dropped),
        })
    }

    /// What happens if the dropped application `app` is kept instead?
    /// Returns the (old, new) worst alive-application WCRT and the new
    /// schedulability verdict; `None` when `app` is not currently dropped
    /// or the design fails to instantiate.
    pub fn what_if_keep(&self, app: AppId) -> Option<(Time, Time, bool)> {
        if !self.dropped.contains(&app) {
            return None;
        }
        let (hsys, mapping, mc) = self.run(&self.plan)?;
        let before = self.worst_alive_wcrt(&hsys, &mc);

        let kept: Vec<AppId> = self.dropped.iter().copied().filter(|&a| a != app).collect();
        let mc2 = analyze(&hsys, self.arch, &mapping, self.policies, &kept);
        let after = self
            .apps
            .app_ids()
            .filter(|a| !kept.contains(a))
            .map(|a| mc2.app_wcrt(&hsys, a, &kept))
            .max()
            .unwrap_or(Time::ZERO);
        Some((before, after, mc2.schedulable(&hsys, &kept)))
    }

    /// Tasks whose hardening is pure re-execution, candidates for
    /// [`Sensitivity::what_if_reexec`].
    pub fn reexecution_sites(&self) -> Vec<(usize, u8)> {
        self.plan
            .iter()
            .filter(|(_, h)| h.replication == Replication::None && h.reexecutions > 0)
            .map(|(flat, h)| (flat, h.reexecutions))
            .collect()
    }
}

/// Convenience constructor: a plan hardening every non-droppable task by
/// re-execution degree `k`.
pub fn uniform_reexec_plan(apps: &AppSet, k: u8) -> HardeningPlan {
    let mut plan = HardeningPlan::unhardened(apps);
    for (flat, r) in apps.task_refs().iter().enumerate() {
        if !apps.app(r.app).criticality().is_droppable() {
            plan.set_by_flat_index(flat, TaskHardening::reexecution(k));
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_model::{Criticality, ExecBounds, ProcKind, Processor, Task, TaskGraph};
    use mcmap_sched::uniform_policies;

    fn fixture() -> (AppSet, Architecture, Vec<SchedPolicy>) {
        let arch = Architecture::builder()
            .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-6))
            .build()
            .unwrap();
        let hi = TaskGraph::builder("hi", Time::from_ticks(1_000))
            .deadline(Time::from_ticks(700))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 0.9,
            })
            .task(
                Task::new("h0")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(100)))
                    .with_detect_overhead(Time::from_ticks(10)),
            )
            .task(
                Task::new("h1")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(100)))
                    .with_detect_overhead(Time::from_ticks(10)),
            )
            .channel(0, 1, 0)
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(1_000))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(Task::new("l").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(200))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![hi, lo]).unwrap();
        let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
        (apps, arch, policies)
    }

    fn study<'a>(
        apps: &'a AppSet,
        arch: &'a Architecture,
        policies: &'a [SchedPolicy],
    ) -> Sensitivity<'a> {
        // h0, h1 on p0; lo on p1; heads re-executed once; lo dropped.
        Sensitivity::new(
            apps,
            arch,
            policies,
            uniform_reexec_plan(apps, 1),
            vec![ProcId::new(0), ProcId::new(0), ProcId::new(1)],
            vec![AppId::new(1)],
        )
    }

    #[test]
    fn slack_reports_deadline_margins() {
        let (apps, arch, policies) = fixture();
        // Keep references alive for the study borrows.
        let s = study(&apps, &arch, &policies);
        let slack = s.slack().expect("design instantiates");
        assert_eq!(slack.len(), 2);
        let hi = &slack[0];
        // Chain of two re-executed 110-tick tasks: critical WCRT 440.
        assert_eq!(hi.wcrt, Time::from_ticks(440));
        assert_eq!(hi.slack, Time::from_ticks(260));
        assert!(hi.binding_trigger.is_some());
        // The droppable app answers for its normal state only.
        assert_eq!(slack[1].wcrt, Time::from_ticks(200));
    }

    #[test]
    fn raising_reexecution_raises_the_wcrt() {
        let (apps, arch, policies) = fixture();
        let s = study(&apps, &arch, &policies);
        let w = s.what_if_reexec(0, 2).expect("perturbation instantiates");
        assert_eq!(w.reexec, (1, 2));
        assert!(w.worst_wcrt.1 > w.worst_wcrt.0);
        assert!(w.reliable_after);
        // 550 + … still within the 700 deadline: (110·3) + 220 = 550.
        assert!(w.schedulable_after);
    }

    #[test]
    fn removing_hardening_lowers_the_wcrt() {
        let (apps, arch, policies) = fixture();
        let s = study(&apps, &arch, &policies);
        let w = s.what_if_reexec(0, 0).expect("perturbation instantiates");
        assert!(w.worst_wcrt.1 < w.worst_wcrt.0);
    }

    #[test]
    fn keeping_a_dropped_app_never_helps_the_alive_set() {
        let (apps, arch, policies) = fixture();
        let s = study(&apps, &arch, &policies);
        let (before, after, schedulable) = s.what_if_keep(AppId::new(1)).expect("app is dropped");
        assert!(after >= before);
        // On its own processor, keeping `lo` is harmless here.
        assert!(schedulable);
        // Asking about a non-dropped app yields None.
        assert!(s.what_if_keep(AppId::new(0)).is_none());
    }

    #[test]
    fn reexecution_sites_enumerate_the_plan() {
        let (apps, arch, policies) = fixture();
        let s = study(&apps, &arch, &policies);
        let sites = s.reexecution_sites();
        assert_eq!(sites, vec![(0, 1), (1, 1)]);
    }
}
