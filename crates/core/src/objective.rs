//! Optimization objectives (§2.3 of the paper).
//!
//! * **expected power**: `Σ_p (stat_p + dyn_p · u_p)` over allocated
//!   processors, where the utilization `u_p` weights each copy by its
//!   expected number of executions (re-execution retries occur with
//!   probability `p^j`) and each passive standby by its activation
//!   probability — this is where passive replication pays off on average.
//!   The paper computes the expectation "considering all possible cases",
//!   i.e. averaging the fault-free state and the critical states its
//!   analysis enumerates; we expose this as a *critical-mode weight* `w`:
//!   `u_p = (1 − w) · u_normal + w · u_critical`, where dropped
//!   applications consume nothing in the critical mode. Any `w > 0` makes
//!   dropping a genuine power lever (Fig. 5's φ-is-cheapest shape);
//! * **service after dropping**: `Σ_{t ∉ T_d} sv_t` (reported as *lost*
//!   service so that both objectives are minimized).

use mcmap_hardening::{HardenedSystem, Reliability, Role};
use mcmap_model::{AppId, AppSet, Architecture};
use mcmap_sched::Mapping;

/// Expected average power of a mapped, hardened system, with the critical
/// mode weighted by `critical_weight ∈ [0, 1]` (`0` = fault-free operation
/// only; the dropped applications `dropped` consume nothing in the critical
/// mode).
///
/// `allocated` marks processors that draw leakage power even when idle; any
/// processor actually hosting work is counted as allocated regardless of
/// the flag (a mapping onto a de-allocated processor is repaired or
/// penalized upstream, but power must never be under-reported).
pub fn expected_power(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    allocated: &[bool],
    dropped: &[AppId],
    critical_weight: f64,
) -> f64 {
    let rel = Reliability::new(hsys, arch);
    let w = critical_weight.clamp(0.0, 1.0);
    let mut util = vec![0.0f64; arch.num_processors()];

    for (id, t) in hsys.tasks() {
        let proc = mapping.proc_of(id);
        let kind = arch.processor(proc).kind;
        let wcet = t
            .nominal_bounds(kind)
            .expect("mapped processors are kind-compatible")
            .wcet
            .as_f64();
        let period = hsys.app_of(id).period.as_f64();
        let expected_time = match t.role {
            Role::Voter => wcet,
            Role::PassiveReplica(_) => {
                let flat = hsys
                    .flat_of_origin(t.origin)
                    .expect("replica origins are tracked");
                rel.activation_probability(flat, mapping.placement()) * wcet
            }
            Role::Primary | Role::ActiveReplica(_) => rel.expected_executions(id, proc) * wcet,
        };
        // In the critical mode the dropped applications release nothing.
        let mode_weight = if dropped.contains(&t.app) {
            1.0 - w
        } else {
            1.0
        };
        util[proc.index()] += mode_weight * expected_time / period;
    }

    arch.processors()
        .map(|(id, p)| {
            let u = util[id.index()];
            if allocated.get(id.index()).copied().unwrap_or(false) || u > 0.0 {
                p.stat_power + p.dyn_power * u
            } else {
                0.0
            }
        })
        .sum()
}

/// Quality of service retained after dropping `dropped`: `Σ sv_t` over
/// alive droppable applications.
pub fn service_after_dropping(apps: &AppSet, dropped: &[AppId]) -> f64 {
    apps.service_after_dropping(dropped)
}

/// Service lost by dropping `dropped` — the minimized form of the service
/// objective (`0` when nothing is dropped).
pub fn lost_service(apps: &AppSet, dropped: &[AppId]) -> f64 {
    apps.total_service() - apps.service_after_dropping(dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{
        Criticality, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph, Time,
    };

    fn arch(n: usize, rate: f64) -> Architecture {
        Architecture::builder()
            .homogeneous(n, Processor::new("p", ProcKind::new(0), 10.0, 100.0, rate))
            .build()
            .unwrap()
    }

    fn one_task_apps(wcet: u64, period: u64) -> AppSet {
        let g = TaskGraph::builder("g", Time::from_ticks(period))
            .task(
                Task::new("t")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(wcet)))
                    .with_voting_overhead(Time::from_ticks(10)),
            )
            .build()
            .unwrap();
        AppSet::new(vec![g]).unwrap()
    }

    #[test]
    fn idle_allocated_processor_pays_leakage_only() {
        let apps = one_task_apps(100, 1_000);
        let arch = arch(2, 0.0);
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0)]).unwrap();
        // p0: 10 + 100·0.1 = 20; p1 allocated but idle: 10.
        let pw = expected_power(&hsys, &arch, &mapping, &[true, true], &[], 0.0);
        assert!((pw - 30.0).abs() < 1e-9);
        // De-allocating the idle processor removes its leakage.
        let pw = expected_power(&hsys, &arch, &mapping, &[true, false], &[], 0.0);
        assert!((pw - 20.0).abs() < 1e-9);
    }

    #[test]
    fn hosting_processor_is_counted_even_if_deallocated() {
        let apps = one_task_apps(100, 1_000);
        let arch = arch(1, 0.0);
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0)]).unwrap();
        let pw = expected_power(&hsys, &arch, &mapping, &[false], &[], 0.0);
        assert!((pw - 20.0).abs() < 1e-9);
    }

    #[test]
    fn active_replication_costs_more_power_than_passive() {
        let apps = one_task_apps(100, 1_000);
        let arch = arch(4, 1e-5);
        let active = {
            let mut plan = HardeningPlan::unhardened(&apps);
            plan.set_by_flat_index(
                0,
                TaskHardening::active(vec![ProcId::new(1), ProcId::new(2)], ProcId::new(3)),
            );
            plan
        };
        let passive = {
            let mut plan = HardeningPlan::unhardened(&apps);
            plan.set_by_flat_index(
                0,
                TaskHardening::passive(vec![ProcId::new(1)], vec![ProcId::new(2)], ProcId::new(3)),
            );
            plan
        };
        let power_of = |plan: &HardeningPlan| {
            let hsys = harden(&apps, plan, &arch).unwrap();
            let placement: Vec<ProcId> = hsys
                .tasks()
                .map(|(_, t)| t.fixed_proc.unwrap_or(ProcId::new(0)))
                .collect();
            let mapping = Mapping::new(&hsys, &arch, placement).unwrap();
            expected_power(&hsys, &arch, &mapping, &[true; 4], &[], 0.0)
        };
        let p_active = power_of(&active);
        let p_passive = power_of(&passive);
        assert!(
            p_passive < p_active,
            "standby utilization is probabilistic: {p_passive} vs {p_active}"
        );
    }

    #[test]
    fn reexecution_power_accounts_for_expected_retries() {
        let apps = one_task_apps(100, 1_000);
        let arch_hot = arch(1, 1e-3);
        let plain = harden(&apps, &HardeningPlan::unhardened(&apps), &arch_hot).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(2));
        let hardened = harden(&apps, &plan, &arch_hot).unwrap();
        let m1 = Mapping::new(&plain, &arch_hot, vec![ProcId::new(0)]).unwrap();
        let m2 = Mapping::new(&hardened, &arch_hot, vec![ProcId::new(0)]).unwrap();
        let p1 = expected_power(&plain, &arch_hot, &m1, &[true], &[], 0.0);
        let p2 = expected_power(&hardened, &arch_hot, &m2, &[true], &[], 0.0);
        // Retries are rare (p ≈ 0.1), so the expected overhead is small but
        // strictly positive.
        assert!(p2 > p1);
        assert!(p2 < p1 * 1.5);
    }

    #[test]
    fn critical_weight_discounts_dropped_applications() {
        let hi = TaskGraph::builder("hi", Time::from_ticks(1_000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 0.5,
            })
            .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(100))))
            .build()
            .unwrap();
        let lo = TaskGraph::builder("lo", Time::from_ticks(1_000))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(200))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![hi, lo]).unwrap();
        let arch = arch(1, 0.0);
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0); 2]).unwrap();
        let dropped = [mcmap_model::AppId::new(1)];
        // Fault-free only: 10 + 100 · (0.1 + 0.2) = 40.
        let p0 = expected_power(&hsys, &arch, &mapping, &[true], &dropped, 0.0);
        assert!((p0 - 40.0).abs() < 1e-9);
        // Half-weighted critical mode discounts half of lo's demand:
        // 10 + 100 · (0.1 + 0.1) = 30.
        let p_half = expected_power(&hsys, &arch, &mapping, &[true], &dropped, 0.5);
        assert!((p_half - 30.0).abs() < 1e-9);
        // Dropping more always costs less power at w > 0.
        let p_keep = expected_power(&hsys, &arch, &mapping, &[true], &[], 0.5);
        assert!(p_half < p_keep);
        // The weight has no effect on apps that are never dropped.
        let q = expected_power(&hsys, &arch, &mapping, &[true], &[], 0.9);
        assert!((q - p_keep).abs() < 1e-9);
    }

    #[test]
    fn service_accounting_matches_model() {
        let hi = TaskGraph::builder("hi", Time::from_ticks(100))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 0.5,
            })
            .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1))))
            .build()
            .unwrap();
        let lo1 = TaskGraph::builder("lo1", Time::from_ticks(100))
            .criticality(Criticality::Droppable { service: 3.0 })
            .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1))))
            .build()
            .unwrap();
        let lo2 = TaskGraph::builder("lo2", Time::from_ticks(100))
            .criticality(Criticality::Droppable { service: 5.0 })
            .task(Task::new("c").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![hi, lo1, lo2]).unwrap();
        assert_eq!(service_after_dropping(&apps, &[]), 8.0);
        assert_eq!(lost_service(&apps, &[]), 0.0);
        assert_eq!(lost_service(&apps, &[AppId::new(1)]), 3.0);
        assert_eq!(lost_service(&apps, &[AppId::new(1), AppId::new(2)]), 8.0);
    }
}
