//! # mcmap-core
//!
//! The core of the reproduction of *Kang et al., "Static Mapping of
//! Mixed-Critical Applications for Fault-Tolerant MPSoCs", DAC 2014*:
//!
//! * [`proposed_analysis`] — **Algorithm 1**, the mixed-criticality
//!   fault-tolerance-aware WCRT analysis that enumerates normal→critical
//!   state transitions over any [`SchedBackend`](mcmap_sched::SchedBackend);
//! * [`naive_analysis`] / [`adhoc_analysis`] — the §5.1 comparison points;
//! * [`Genome`] / [`GenomeSpace`] — the Fig. 4 chromosome (allocation bits,
//!   droppable-application selection, per-task binding + hardening genes);
//! * [`repair_structure`] / [`repair_reliability`] — the §4 randomized
//!   repair heuristics;
//! * [`expected_power`] / [`lost_service`] — the §2.3 objectives;
//! * [`explore`] — the end-to-end design-space exploration built on
//!   [`mcmap_ga`].
//!
//! # Examples
//!
//! Analyzing one mapping with Algorithm 1:
//!
//! ```
//! use mcmap_core::analyze;
//! use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
//! use mcmap_model::{AppId, AppSet, Architecture, Criticality, ExecBounds, ProcId, ProcKind,
//!     Processor, Task, TaskGraph, Time};
//! use mcmap_sched::{uniform_policies, Mapping, SchedPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = Architecture::builder()
//!     .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
//!     .build()?;
//! let hi = TaskGraph::builder("hi", Time::from_ticks(1_000))
//!     .criticality(Criticality::NonDroppable { max_failure_rate: 1.0 })
//!     .task(Task::new("h")
//!         .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(100)))
//!         .with_detect_overhead(Time::from_ticks(10)))
//!     .build()?;
//! let lo = TaskGraph::builder("lo", Time::from_ticks(1_000))
//!     .criticality(Criticality::Droppable { service: 1.0 })
//!     .task(Task::new("l").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(200))))
//!     .build()?;
//! let apps = AppSet::new(vec![hi, lo])?;
//!
//! let mut plan = HardeningPlan::unhardened(&apps);
//! plan.set_by_flat_index(0, TaskHardening::reexecution(1));
//! let hsys = harden(&apps, &plan, &arch)?;
//! let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0), ProcId::new(1)])?;
//! let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
//!
//! // Drop `lo` in the critical state: its WCRT only matters fault-free.
//! let dropped = [AppId::new(1)];
//! let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
//! assert!(mc.schedulable(&hsys, &dropped));
//! // The critical app's bound covers the re-execution: ≥ 220 ticks.
//! assert!(mc.app_wcrt(&hsys, AppId::new(0), &dropped) >= Time::from_ticks(220));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod checkpoint;
mod delta;
mod dse;
mod genome;
mod objective;
mod portfolio;
mod repair;
mod sensitivity;

pub use analysis::{
    adhoc_analysis, analyze, analyze_delta, analyze_naive, analyze_with, naive_analysis,
    normal_state_bounds, proposed_analysis, proposed_analysis_delta, proposed_analysis_with,
    AnalysisOptions, AnalysisSolutions, McAnalysis,
};
pub use checkpoint::{
    read_checkpoint, read_checkpoint_with_fallback, write_checkpoint, DseCheckpoint,
};
pub use delta::{diff_genomes, may_affect, ParentArtifacts};
pub use dse::{
    explore, explore_checked, AnalysisStats, AuditSnapshot, DesignReport, DseConfig, DseError,
    DseOutcome, MappingProblem, ObjectiveMode, ResilienceConfig, SharedEvalCache,
};
pub use genome::{GeneHardening, Genome, GenomeSpace, TaskGene};
pub use mcmap_eval::{CacheStats, EvalCacheConfig, EvalStats};
pub use objective::{expected_power, lost_service, service_after_dropping};
pub use portfolio::{
    read_portfolio, write_portfolio, MaterializedPoint, OperatingPoint, Portfolio,
};
pub use repair::{repair_reliability, repair_structure, repair_structure_logged};
pub use sensitivity::{uniform_reexec_plan, AppSlack, Sensitivity, WhatIf};
