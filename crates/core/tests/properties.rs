//! Property-based tests for the mixed-criticality analysis and the DSE
//! plumbing — including the headline safety claim: Algorithm 1 upper-bounds
//! simulated response times on randomized systems and failure profiles.

use mcmap_core::{
    analyze, analyze_delta, analyze_naive, explore, repair_reliability, repair_structure,
    AnalysisOptions, DseConfig, GenomeSpace,
};
use mcmap_hardening::{harden, HardenedSystem, HardeningPlan, TaskHardening};
use mcmap_model::{
    AppId, AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcId, ProcKind, Processor,
    Task, TaskGraph, Time,
};
use mcmap_sched::{uniform_policies, Mapping, SchedPolicy};
use mcmap_sim::{RandomFaults, SimConfig, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
struct Desc {
    apps: Vec<(u64, Vec<u64>, bool)>,
    placements: Vec<usize>,
    reexec: Vec<u8>,
    preemptive: bool,
}

fn desc_strategy() -> impl Strategy<Value = Desc> {
    let app = (
        prop::sample::select(vec![2_000u64, 4_000]),
        prop::collection::vec(5u64..100, 1..4),
        any::<bool>(),
    );
    (
        prop::collection::vec(app, 2..4),
        prop::collection::vec(0usize..3, 12),
        prop::collection::vec(0u8..3, 12),
        any::<bool>(),
    )
        .prop_map(|(apps, placements, reexec, preemptive)| Desc {
            apps,
            placements,
            reexec,
            preemptive,
        })
}

fn build(
    d: &Desc,
) -> (
    Architecture,
    AppSet,
    HardenedSystem,
    Mapping,
    Vec<SchedPolicy>,
    Vec<AppId>,
) {
    let arch = Architecture::builder()
        .homogeneous(3, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-6))
        .fabric(Fabric::new(16))
        .build()
        .expect("valid");
    let graphs: Vec<TaskGraph> = d
        .apps
        .iter()
        .enumerate()
        .map(|(i, (period, wcets, droppable))| {
            let crit = if *droppable && i > 0 {
                Criticality::Droppable { service: 1.0 }
            } else {
                Criticality::NonDroppable {
                    max_failure_rate: 0.99,
                }
            };
            let mut b =
                TaskGraph::builder(format!("a{i}"), Time::from_ticks(*period)).criticality(crit);
            for (j, w) in wcets.iter().enumerate() {
                b = b.task(
                    Task::new(format!("t{i}_{j}"))
                        .with_uniform_exec(
                            1,
                            ExecBounds::new(Time::from_ticks(w / 3), Time::from_ticks(*w)),
                        )
                        .with_detect_overhead(Time::from_ticks(2)),
                );
            }
            for j in 1..wcets.len() {
                b = b.channel(j - 1, j, 8);
            }
            b.build().expect("chains are valid")
        })
        .collect();
    let apps = AppSet::new(graphs).expect("nonempty");
    let mut plan = HardeningPlan::unhardened(&apps);
    for flat in 0..apps.num_tasks() {
        let k = d.reexec[flat % d.reexec.len()];
        if k > 0 {
            plan.set_by_flat_index(flat, TaskHardening::reexecution(k));
        }
    }
    let hsys = harden(&apps, &plan, &arch).expect("valid");
    let placement: Vec<ProcId> = (0..hsys.num_tasks())
        .map(|i| ProcId::new(d.placements[i % d.placements.len()]))
        .collect();
    let mapping = Mapping::new(&hsys, &arch, placement).expect("kind 0 everywhere");
    let policy = if d.preemptive {
        SchedPolicy::FixedPriorityPreemptive
    } else {
        SchedPolicy::FixedPriorityNonPreemptive
    };
    let dropped: Vec<AppId> = apps.droppable_apps().collect();
    (
        arch,
        apps,
        hsys,
        mapping,
        uniform_policies(3, policy),
        dropped,
    )
}

/// Like [`build`], but exercising the full hardening vocabulary: the
/// technique of each task cycles with its flat index through
/// re-execution, active replication (one replica + voter), and passive
/// replication (one standby + voter), with replica/voter placements on
/// the other processors.
fn build_replicated(
    d: &Desc,
) -> (
    Architecture,
    AppSet,
    HardenedSystem,
    Mapping,
    Vec<SchedPolicy>,
    Vec<AppId>,
) {
    let (arch, apps, _, _, policies, dropped) = build(d);
    let mut plan = HardeningPlan::unhardened(&apps);
    for flat in 0..apps.num_tasks() {
        let home = d.placements[flat % d.placements.len()];
        let other = ProcId::new((home + 1) % 3);
        let third = ProcId::new((home + 2) % 3);
        match d.reexec[flat % d.reexec.len()] % 3 {
            0 => plan.set_by_flat_index(flat, TaskHardening::reexecution(1)),
            1 => plan.set_by_flat_index(flat, TaskHardening::active(vec![other], third)),
            _ => plan.set_by_flat_index(
                flat,
                TaskHardening::passive(vec![other], vec![third], ProcId::new(home)),
            ),
        }
    }
    let hsys = harden(&apps, &plan, &arch).expect("replicated plan is valid");
    // Replicas and voters come with fixed placements; primaries keep the
    // descriptor's placement by origin.
    let placement: Vec<ProcId> = hsys
        .tasks()
        .map(|(_, t)| match t.fixed_proc {
            Some(p) => p,
            None => {
                let flat = hsys.flat_of_origin(t.origin).expect("primary origin");
                ProcId::new(d.placements[flat % d.placements.len()])
            }
        })
        .collect();
    let mapping = Mapping::new(&hsys, &arch, placement).expect("kind 0 everywhere");
    (arch, apps, hsys, mapping, policies, dropped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's central claim: the proposed analysis safely bounds
    /// every observed response time of non-dropped applications, across
    /// random systems, mappings, hardenings, and failure profiles.
    #[test]
    fn algorithm1_upper_bounds_simulation(d in desc_strategy(), seed in any::<u64>()) {
        let (arch, apps, hsys, mapping, policies, dropped) = build(&d);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
        prop_assume!(mc.schedulable(&hsys, &dropped));

        let sim = Simulator::new(&hsys, &arch, &mapping, policies.clone());
        for i in 0..6u64 {
            let mut faults =
                RandomFaults::new(&hsys, &arch, &mapping, seed.wrapping_add(i)).with_boost(1e5);
            let r = sim.run(&SimConfig::worst_case(dropped.clone()), &mut faults);
            for id in apps.app_ids() {
                if dropped.contains(&id) {
                    continue; // dropped apps carry no critical-state promise
                }
                prop_assert!(
                    r.app_wcrt[id.index()] <= mc.app_wcrt(&hsys, id, &dropped),
                    "app {}: simulated {} > bound {}",
                    apps.app(id).name(),
                    r.app_wcrt[id.index()],
                    mc.app_wcrt(&hsys, id, &dropped)
                );
            }
        }
    }

    /// The same safety claim under the full hardening vocabulary — and
    /// under the *coverage* semantics the Monte-Carlo validation campaign
    /// uses. Every task is hardened with a technique cycled from its flat
    /// index (re-execution, active replication + voter, passive
    /// replication + standby + voter), faults are boosted to moderate
    /// rates so some profiles exhaust their masking budget, and the
    /// analyzed bound is asserted exactly for the profiles *within
    /// coverage* (no post-masking corrupted output): simulated response
    /// times never exceed the analyzed WCRT there.
    #[test]
    fn analysis_bounds_covered_simulation_under_replication(
        d in desc_strategy(),
        seed in any::<u64>(),
    ) {
        let (arch, apps, hsys, mapping, policies, dropped) = build_replicated(&d);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
        prop_assume!(mc.schedulable(&hsys, &dropped));

        let sim = Simulator::new(&hsys, &arch, &mapping, policies.clone());
        let mut covered = 0u32;
        for i in 0..8u64 {
            let mut faults =
                RandomFaults::new(&hsys, &arch, &mapping, seed.wrapping_add(i)).with_boost(1e3);
            let r = sim.run(&SimConfig::worst_case(dropped.clone()), &mut faults);
            // The campaign's coverage filter: a profile whose masking
            // budget was exceeded somewhere carries no bound promise.
            if r.unsafe_instances.iter().sum::<u64>() != 0 {
                continue;
            }
            covered += 1;
            for id in apps.app_ids() {
                if dropped.contains(&id) {
                    continue;
                }
                prop_assert!(
                    r.app_wcrt[id.index()] <= mc.app_wcrt(&hsys, id, &dropped),
                    "app {} (covered profile {i}): simulated {} > bound {}",
                    apps.app(id).name(),
                    r.app_wcrt[id.index()],
                    mc.app_wcrt(&hsys, id, &dropped)
                );
            }
        }
        // Not a per-case guarantee, but a sanity anchor: the filter must
        // not silently discard everything on a fault-free seed.
        let mut quiet = mcmap_sim::NoFaults;
        let r = sim.run(&SimConfig::worst_case(dropped.clone()), &mut quiet);
        prop_assert_eq!(r.unsafe_instances.iter().sum::<u64>(), 0);
        let _ = covered;
    }

    /// §5.1: the naive estimate is safe but at least as pessimistic as the
    /// proposed analysis, per task.
    #[test]
    fn naive_dominates_proposed(d in desc_strategy()) {
        let (arch, _apps, hsys, mapping, policies, dropped) = build(&d);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
        let naive = analyze_naive(&hsys, &arch, &mapping, &policies, &dropped);
        for i in 0..hsys.num_tasks() {
            prop_assert!(
                naive.max_finish[i] >= mc.worst.max_finish[i],
                "task {i}: naive {} < proposed {}",
                naive.max_finish[i],
                mc.worst.max_finish[i]
            );
        }
    }

    /// The fault-free analysis is a lower envelope of the merged
    /// worst-case windows.
    #[test]
    fn normal_state_is_a_lower_envelope(d in desc_strategy()) {
        let (arch, _apps, hsys, mapping, policies, dropped) = build(&d);
        let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
        for i in 0..hsys.num_tasks() {
            prop_assert!(mc.worst.max_finish[i] >= mc.normal.max_finish[i]);
            prop_assert!(mc.worst.min_start[i] <= mc.normal.min_start[i]);
        }
    }

    /// The analysis fast path (warm-started fixed points, dominance
    /// pruning, parallel scenario fan-out) is an *optimization*, never an
    /// approximation: on random systems every knob combination reproduces
    /// the cold, prune-free reference enumeration bit-for-bit — same
    /// windows, same verdict, same scenario count — while never *adding*
    /// backend work.
    #[test]
    fn fast_path_is_bit_identical_to_the_cold_reference(d in desc_strategy()) {
        let (arch, _apps, hsys, mapping, policies, dropped) = build(&d);
        let (reference, ref_sols, ref_reused) = analyze_delta(
            &hsys, &arch, &mapping, &policies, &dropped, AnalysisOptions::reference(), None,
        );
        prop_assert_eq!(ref_reused, 0, "no parent, nothing to reuse");
        for opts in [
            AnalysisOptions::default(),
            AnalysisOptions { warm_start: true, prune: false, scenario_threads: 1 },
            AnalysisOptions { warm_start: false, prune: true, scenario_threads: 1 },
            AnalysisOptions { warm_start: true, prune: true, scenario_threads: 3 },
        ] {
            let (fast, fast_sols, _) =
                analyze_delta(&hsys, &arch, &mapping, &policies, &dropped, opts, None);
            prop_assert_eq!(&fast.normal, &reference.normal, "{:?}", opts);
            prop_assert_eq!(&fast.worst, &reference.worst, "{:?}", opts);
            prop_assert_eq!(
                fast.schedulable(&hsys, &dropped),
                reference.schedulable(&hsys, &dropped),
                "{:?}", opts
            );
            prop_assert_eq!(fast.scenarios, reference.scenarios);
            prop_assert!(
                fast.backend_calls <= reference.backend_calls,
                "{:?}: {} backend calls vs reference {}",
                opts, fast.backend_calls, reference.backend_calls
            );
            prop_assert_eq!(
                fast.backend_calls + fast.scenarios_pruned,
                reference.backend_calls,
                "every skipped run must be accounted to the pruner ({:?})", opts
            );
            // The genome-delta reuse path seeded with the cold reference's
            // solutions must reproduce the fresh result bit-for-bit under
            // every knob combination — reuse is gated on bit-equality of
            // the actual analysis inputs, so it can only skip work whose
            // output is already known.
            let (delta, _, reused) = analyze_delta(
                &hsys, &arch, &mapping, &policies, &dropped, opts, Some(&ref_sols),
            );
            prop_assert_eq!(&delta, &fast, "delta vs fresh ({:?})", opts);
            prop_assert!(
                reused >= 1,
                "the normal-state run is always reusable here ({:?})", opts
            );
            // Self-reuse under the *same* opts replays every warm-gate
            // decision identically, so the parent satisfies every single
            // backend run of the child.
            let (again, _, again_reused) = analyze_delta(
                &hsys, &arch, &mapping, &policies, &dropped, opts, Some(&fast_sols),
            );
            prop_assert_eq!(&again, &fast, "self-reuse vs fresh ({:?})", opts);
            prop_assert_eq!(
                again_reused, fast.backend_calls,
                "same-opts self-reuse needs zero new backend runs ({:?})", opts
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end: a whole exploration with the genome-delta fast path on
    /// is bit-identical — Pareto front, audit counters, deterministic
    /// effort counters — to the same exploration analyzed cold, on random
    /// systems and for both scenario-fast-path knob settings.
    #[test]
    fn delta_exploration_matches_cold_on_random_systems(
        d in desc_strategy(), seed in 0u64..1_000_000
    ) {
        let (arch, apps, _hsys, _mapping, _policies, _dropped) = build(&d);
        for opts in [AnalysisOptions::default(), AnalysisOptions::reference()] {
            let mk = |delta: bool| {
                let mut cfg = DseConfig {
                    audit: true,
                    repair_iters: 10,
                    analysis: opts,
                    delta,
                    ..DseConfig::default()
                };
                cfg.ga.population = 8;
                cfg.ga.generations = 3;
                cfg.ga.mutation_rate = 0.9;
                cfg.ga.seed = seed;
                cfg
            };
            let with = explore(&apps, &arch, mk(true));
            let without = explore(&apps, &arch, mk(false));
            prop_assert_eq!(with.result.front.len(), without.result.front.len());
            for (a, b) in with.result.front.iter().zip(&without.result.front) {
                prop_assert_eq!(&a.eval, &b.eval);
                prop_assert_eq!(&a.genotype, &b.genotype);
            }
            prop_assert_eq!(with.audit, without.audit);
            prop_assert_eq!(with.analysis.candidates, without.analysis.candidates);
            prop_assert_eq!(with.analysis.scenarios, without.analysis.scenarios);
            prop_assert_eq!(with.analysis.backend_calls, without.analysis.backend_calls);
            prop_assert_eq!(
                with.analysis.fixedpoint_iters,
                without.analysis.fixedpoint_iters
            );
            prop_assert_eq!(
                with.analysis.scenarios_pruned,
                without.analysis.scenarios_pruned
            );
            prop_assert_eq!(without.analysis.backend_reused, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Structure repair always yields a structurally valid chromosome.
    #[test]
    fn repair_makes_genomes_harden_and_map(seed in any::<u64>(), flips in 0usize..6) {
        let arch = Architecture::builder()
            .homogeneous(4, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .expect("valid");
        let hi = TaskGraph::builder("hi", Time::from_ticks(2_000))
            .criticality(Criticality::NonDroppable { max_failure_rate: 0.9 })
            .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(50))))
            .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(50))))
            .channel(0, 1, 8)
            .build()
            .expect("valid");
        let lo = TaskGraph::builder("lo", Time::from_ticks(4_000))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(Task::new("c").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(50))))
            .build()
            .expect("valid");
        let apps = AppSet::new(vec![hi, lo]).expect("nonempty");
        let space = GenomeSpace::new(&apps, &arch);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = space.random(&mut rng);
        // Sabotage the allocation.
        for i in 0..flips.min(g.alloc.len()) {
            g.alloc[i] = false;
        }
        repair_structure(&mut g, &space, &mut rng);
        let rel_ok = repair_reliability(&mut g, &space, &apps, &arch, &mut rng, 30);
        prop_assert!(rel_ok, "bounds of 0.9 are trivially satisfiable");

        // The decoded design must harden and map without errors.
        let (plan, _dropped, bindings) = space.decode(&g);
        let hsys = harden(&apps, &plan, &arch).expect("repaired plans are valid");
        let placement: Vec<ProcId> = hsys
            .tasks()
            .map(|(_, t)| match t.fixed_proc {
                Some(p) => p,
                None => bindings[hsys.flat_of_origin(t.origin).expect("tracked")],
            })
            .collect();
        prop_assert!(Mapping::new(&hsys, &arch, placement).is_ok());
    }
}
