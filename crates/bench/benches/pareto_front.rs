//! Criterion bench for the Fig. 5 bi-objective exploration (power +
//! service) on DT-med, plus the SPEA-II selection primitive itself.

use criterion::{criterion_group, criterion_main, Criterion};
use mcmap_benchmarks::dt_med;
use mcmap_core::{explore, DseConfig, ObjectiveMode};
use mcmap_ga::{environmental_selection, Evaluation, GaConfig, Individual};

fn bench_pareto(c: &mut Criterion) {
    let b = dt_med();
    let cfg = DseConfig {
        ga: GaConfig {
            population: 16,
            generations: 4,
            seed: 8,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::PowerService,
        policies: Some(b.policies.clone()),
        repair_iters: 40,
        ..DseConfig::default()
    };

    let mut group = c.benchmark_group("pareto_front");
    group.sample_size(10);
    group.bench_function("dt_med_bi_objective_dse", |bench| {
        bench.iter(|| explore(&b.apps, &b.arch, cfg.clone()))
    });

    // The SPEA-II environmental-selection primitive on a 200-point pool.
    let pool: Vec<Individual<usize>> = (0..200)
        .map(|i| {
            let x = (i % 20) as f64;
            let y = ((i * 7) % 23) as f64;
            Individual::new(i, Evaluation::feasible(vec![x, y]))
        })
        .collect();
    group.bench_function("spea2_selection_200", |bench| {
        bench.iter(|| environmental_selection(&pool, 100))
    });
    group.finish();
}

criterion_group!(benches, bench_pareto);
criterion_main!(benches);
