//! Criterion bench over the Fig. 1 motivational scenario: one simulated
//! hyperperiod of the rescued configuration (fault at A, {G, H, I}
//! dropped), exercising re-execution, replication voting, and the dropping
//! protocol in a single tight loop.

use criterion::{criterion_group, criterion_main, Criterion};
use mcmap_hardening::{harden, HTaskId, HardeningPlan, TaskHardening};
use mcmap_model::{
    AppId, AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcId, ProcKind, Processor,
    Task, TaskGraph, Time,
};
use mcmap_sched::{uniform_policies, Mapping, SchedPolicy};
use mcmap_sim::{ScriptedFaults, SimConfig, Simulator};

fn t(name: &str, wcet: u64) -> Task {
    Task::new(name).with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(wcet)))
}

fn bench_fig1(c: &mut Criterion) {
    let arch = Architecture::builder()
        .homogeneous(2, Processor::new("pe", ProcKind::new(0), 5.0, 20.0, 1e-6))
        .fabric(Fabric::new(1 << 20))
        .build()
        .expect("static example");
    let high = TaskGraph::builder("high", Time::from_ticks(200))
        .deadline(Time::from_ticks(160))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 0.5,
        })
        .task(t("A", 30))
        .task(t("B", 10).with_voting_overhead(Time::from_ticks(2)))
        .task(t("E", 40))
        .channel(0, 2, 0)
        .channel(1, 2, 0)
        .build()
        .expect("static example");
    let low = TaskGraph::builder("low", Time::from_ticks(400))
        .criticality(Criticality::Droppable { service: 1.0 })
        .task(t("G", 30))
        .task(t("H", 30))
        .task(t("I", 30))
        .channel(0, 1, 0)
        .channel(1, 2, 0)
        .build()
        .expect("static example");
    let apps = AppSet::new(vec![high, low]).expect("static example");
    let mut plan = HardeningPlan::unhardened(&apps);
    plan.set_by_flat_index(0, TaskHardening::reexecution(1));
    plan.set_by_flat_index(
        1,
        TaskHardening::active(vec![ProcId::new(0)], ProcId::new(1)),
    );
    let hsys = harden(&apps, &plan, &arch).expect("static example");
    let placement = vec![
        ProcId::new(0),
        ProcId::new(1),
        ProcId::new(0),
        ProcId::new(1),
        ProcId::new(1),
        ProcId::new(0),
        ProcId::new(1),
        ProcId::new(1),
    ];
    let mapping = Mapping::new(&hsys, &arch, placement).expect("static example");
    let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
    let sim = Simulator::new(&hsys, &arch, &mapping, policies);
    let cfg = SimConfig {
        dropped: vec![AppId::new(1)],
        ..SimConfig::default()
    };

    c.bench_function("fig1_rescued_hyperperiod", |bench| {
        bench.iter(|| {
            let mut faults = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
            sim.run(&cfg, &mut faults)
        })
    });
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
