//! Overhead gate for the `mcmap-obs` tracing layer.
//!
//! Runs the same Cruise exploration twice per repetition — once with a
//! disabled [`Recorder`] (the no-op fast path) and once with tracing on in
//! the production `--trace` configuration (a JSONL file sink, which is the
//! only sink a pure trace run pays for) — back-to-back and in alternating
//! order, so neither leg systematically lands in the slower half of a
//! throttling window. The gated metric is the **ratio of the best-of-N
//! times** of the two legs: scheduler and hypervisor noise is strictly
//! additive, so each leg's minimum converges on its true runtime, while
//! per-pair ratios of ~40 ms runs are noise-dominated on a virtualized
//! host (observed spread of several percent on identical code). The
//! median of the per-pair ratios is still computed and reported as a
//! cross-check. The bench asserts three things:
//!
//! 1. the Pareto fronts of the traced and untraced runs are bit-identical
//!    (tracing is a read-only observer);
//! 2. the traced run actually produced events (the measurement is not a
//!    no-op against a no-op);
//! 3. the relative overhead stays below the budget (default **5 %**,
//!    override with `MCMAP_OBS_MAX_OVERHEAD_PCT`).
//!
//! A machine-readable summary goes to `results/BENCH_obs.json` (directory
//! override: `MCMAP_BENCH_OUT`). Budget knobs: `MCMAP_POP` (default 48),
//! `MCMAP_GENS` (default 16), `MCMAP_THREADS` (default 1 — serial timing
//! is the least noisy), `MCMAP_OBS_REPEATS` (default 9).

use mcmap_bench::{env_u64, env_usize};
use mcmap_benchmarks::{cruise, Benchmark};
use mcmap_core::{explore, DseConfig, DseOutcome, ObjectiveMode};
use mcmap_ga::GaConfig;
use mcmap_obs::{Recorder, RecorderBuilder};
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn dse_cfg(b: &Benchmark, threads: usize, pop: usize, gens: usize, obs: Recorder) -> DseConfig {
    DseConfig {
        ga: GaConfig {
            population: pop,
            generations: gens,
            seed: env_u64("MCMAP_SEED", 8),
            threads,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::PowerService,
        allow_dropping: true,
        policies: Some(b.policies.clone()),
        repair_iters: 40,
        obs,
        ..DseConfig::default()
    }
}

fn timed_explore(b: &Benchmark, cfg: DseConfig) -> (DseOutcome, f64) {
    let t0 = Instant::now();
    let outcome = explore(&b.apps, &b.arch, cfg);
    (outcome, t0.elapsed().as_secs_f64())
}

/// The comparable fingerprint of an exploration: the full report list in
/// front order.
fn fingerprint(o: &DseOutcome) -> String {
    format!("{:?}", o.reports)
}

fn main() {
    let b = cruise();
    let pop = env_usize("MCMAP_POP", 48);
    let gens = env_usize("MCMAP_GENS", 16);
    let threads = env_usize("MCMAP_THREADS", 1);
    let repeats = env_usize("MCMAP_OBS_REPEATS", 9).max(1);
    let max_pct = env_f64("MCMAP_OBS_MAX_OVERHEAD_PCT", 5.0);

    let trace_path =
        std::env::temp_dir().join(format!("mcmap_obs_overhead_{}.jsonl", std::process::id()));

    // Warm-up: populate allocator pools, page in the code, and grab the
    // reference fingerprint both legs must reproduce.
    let (reference, _) = timed_explore(&b, dse_cfg(&b, threads, pop, gens, Recorder::default()));
    let want = fingerprint(&reference);

    let mut wall_off = f64::INFINITY;
    let mut wall_on = f64::INFINITY;
    let mut ratios = Vec::with_capacity(repeats);
    let mut events = 0u64;
    for rep in 0..repeats {
        // Alternate which leg runs first: under cgroup CPU-quota
        // throttling the *second* leg of a pair is systematically slower,
        // which a fixed order would misread as tracing overhead.
        let run_off = |wall_off: &mut f64| {
            let (plain, t_off) =
                timed_explore(&b, dse_cfg(&b, threads, pop, gens, Recorder::default()));
            assert_eq!(fingerprint(&plain), want, "untraced run diverged");
            *wall_off = wall_off.min(t_off);
            t_off
        };
        let run_on = |wall_on: &mut f64, events: &mut u64| {
            let obs = RecorderBuilder::new()
                .jsonl(&trace_path)
                .expect("open temp trace file")
                .build();
            let (traced, t_on) = timed_explore(&b, dse_cfg(&b, threads, pop, gens, obs));
            assert_eq!(
                fingerprint(&traced),
                want,
                "tracing changed the Pareto front"
            );
            *events = traced.obs.emitted();
            assert!(*events > 0, "traced run produced no events");
            *wall_on = wall_on.min(t_on);
            t_on
        };
        let (t_off, t_on) = if rep % 2 == 0 {
            let t_off = run_off(&mut wall_off);
            let t_on = run_on(&mut wall_on, &mut events);
            (t_off, t_on)
        } else {
            let t_on = run_on(&mut wall_on, &mut events);
            let t_off = run_off(&mut wall_off);
            (t_off, t_on)
        };
        ratios.push(t_on / t_off.max(1e-9));
    }
    let _ = std::fs::remove_file(&trace_path);

    ratios.sort_by(f64::total_cmp);
    let overhead_pct = (wall_on / wall_off.max(1e-9) - 1.0) * 100.0;
    let median_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    println!(
        "obs_overhead/cruise: {wall_off:.4} s untraced, {wall_on:.4} s traced (best of \
         {repeats}; {events} events; overhead {overhead_pct:+.2}% best-of, \
         {median_pct:+.2}% median, budget {max_pct:.1}%)"
    );

    let out_dir = std::env::var("MCMAP_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    let json = format!(
        "{{\"benchmark\":\"cruise\",\"population\":{pop},\"generations\":{gens},\
         \"threads\":{threads},\"repeats\":{repeats},\"events\":{events},\
         \"wall_secs_untraced\":{wall_off:.6},\"wall_secs_traced\":{wall_on:.6},\
         \"overhead_pct\":{overhead_pct:.3},\"median_overhead_pct\":{median_pct:.3},\
         \"max_overhead_pct\":{max_pct:.1},\
         \"fronts_identical\":true}}\n"
    );
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = format!("{out_dir}/BENCH_obs.json");
    mcmap_resilience::atomic_write(std::path::Path::new(&path), json.as_bytes())
        .expect("write BENCH_obs.json");
    println!("obs_overhead/cruise: wrote {path}");

    assert!(
        overhead_pct < max_pct,
        "tracing overhead {overhead_pct:.2}% exceeds the {max_pct:.1}% budget \
         (untraced {wall_off:.4} s, traced {wall_on:.4} s)"
    );
}
