//! Ablation: SPEA-II (the paper's selector) vs. NSGA-II on the Fig. 5
//! bi-objective DT-med problem, at equal budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use mcmap_benchmarks::dt_med;
use mcmap_core::{explore, DseConfig, ObjectiveMode};
use mcmap_ga::{GaConfig, Selector};

fn bench_selector(c: &mut Criterion) {
    let b = dt_med();
    let cfg = |selector: Selector| DseConfig {
        ga: GaConfig {
            population: 16,
            generations: 4,
            seed: 8,
            selector,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::PowerService,
        policies: Some(b.policies.clone()),
        repair_iters: 40,
        ..DseConfig::default()
    };

    let mut group = c.benchmark_group("ablation_selector");
    group.sample_size(10);
    group.bench_function("spea2", |bench| {
        bench.iter(|| explore(&b.apps, &b.arch, cfg(Selector::Spea2)))
    });
    group.bench_function("nsga2", |bench| {
        bench.iter(|| explore(&b.apps, &b.arch, cfg(Selector::Nsga2)))
    });
    group.finish();
}

criterion_group!(benches, bench_selector);
criterion_main!(benches);
