//! Monte-Carlo validation gate: the end-to-end refutation harness for the
//! static analysis, run over a real DSE-extracted portfolio.
//!
//! Pipeline: explore `cruise` (deterministic, seed 8) → extract the
//! dominance-pruned operating-point portfolio → materialize → run a
//! seeded `RandomFaults` campaign of `MCMAP_SIMV_PROFILES` profiles
//! (default 1000) against every point → drive the runtime manager
//! through a fault-heavy closed-loop mission for the switch-latency
//! distribution.
//!
//! Gated assertions:
//!
//! 1. **zero WCRT-bound violations** — no simulated response time within
//!    the hardening coverage exceeds its analyzed bound, on any point;
//! 2. **thread-invariance** — a spot-check campaign renders byte-identical
//!    JSON summaries at `--threads 1` and `--threads 3`;
//! 3. the closed-loop mission also sees zero violations in every visited
//!    (degraded) mode, and the manager actually transitions.
//!
//! Reported: campaign throughput (runs/sec), the minimum and maximum
//! observed-vs-bound slack across points, and the p50/p95/max switch
//! latency of the mission. Machine-readable summary:
//! `results/BENCH_sim.json` (directory override: `MCMAP_BENCH_OUT`).
//! Budget knobs: `MCMAP_SIMV_POP`/`MCMAP_SIMV_GENS` (default 16/16),
//! `MCMAP_SIMV_PROFILES` (default 1000), `MCMAP_SIMV_HYPERPERIODS`
//! (default 200, mission length).

use mcmap_bench::{env_u64, env_usize};
use mcmap_benchmarks::cruise;
use mcmap_core::{explore_checked, MappingProblem, Portfolio};
use mcmap_ga::GaConfig;
use mcmap_model::Time;
use mcmap_runtime::{run_campaign, run_reaction, CampaignConfig, ReactionConfig};
use std::time::Instant;

fn main() {
    let pop = env_usize("MCMAP_SIMV_POP", 16);
    let gens = env_usize("MCMAP_SIMV_GENS", 16);
    let profiles = env_u64("MCMAP_SIMV_PROFILES", 1000);
    let hyperperiods = env_u64("MCMAP_SIMV_HYPERPERIODS", 200);
    let boost = 1e3;

    let b = cruise();
    let make_cfg = || mcmap_core::DseConfig {
        ga: GaConfig {
            population: pop,
            generations: gens,
            seed: 8,
            ..GaConfig::default()
        },
        objectives: mcmap_core::ObjectiveMode::PowerService,
        policies: Some(b.policies.clone()),
        repair_iters: 80,
        ..mcmap_core::DseConfig::default()
    };
    let outcome = explore_checked(&b.apps, &b.arch, make_cfg()).expect("explore cruise");
    let problem = MappingProblem::new(&b.apps, &b.arch, make_cfg());
    let portfolio = Portfolio::extract(&problem, &outcome.result.front);
    assert!(
        !portfolio.points.is_empty(),
        "the cruise exploration produced no feasible operating point"
    );
    let points = portfolio.materialize(&problem).expect("materialize");

    // Gate 1: the full campaign, zero violations.
    let cfg = CampaignConfig {
        profiles,
        boost,
        threads: 0,
        ..CampaignConfig::default()
    };
    let t0 = Instant::now();
    let summary = run_campaign(&points, &b.arch, &b.policies, &cfg).expect("campaign");
    let wall = t0.elapsed().as_secs_f64();
    let runs = summary.total_runs();
    let runs_per_sec = runs as f64 / wall.max(1e-9);
    assert_eq!(
        summary.total_violations(),
        0,
        "WCRT-bound violations refute the analysis:\n{}",
        summary.render_text()
    );
    let covered: u64 = summary.points.iter().map(|p| p.covered).sum();
    let faulty: u64 = summary.points.iter().map(|p| p.faulty).sum();
    assert!(faulty > 0, "boost {boost:e} injected no faults — raise it");

    // Slack spread: bound − worst observation, per app per point, finite
    // bounds with at least one completion only.
    let mut slacks: Vec<u64> = Vec::new();
    for p in &summary.points {
        for (obs, bound) in p.observed_max.iter().zip(&p.bound) {
            if *bound != Time::MAX && !obs.is_zero() {
                slacks.push(bound.saturating_sub(*obs).ticks());
            }
        }
    }
    let (min_slack, max_slack) = (
        slacks.iter().copied().min().unwrap_or(0),
        slacks.iter().copied().max().unwrap_or(0),
    );

    // Gate 2: thread-invariance spot check (100 profiles, 1 vs 3 workers).
    let spot = |threads: usize| {
        let cfg = CampaignConfig {
            profiles: 100,
            boost,
            threads,
            ..CampaignConfig::default()
        };
        run_campaign(&points, &b.arch, &b.policies, &cfg)
            .expect("spot campaign")
            .to_json()
    };
    assert_eq!(
        spot(1),
        spot(3),
        "campaign summary differs across thread counts"
    );

    // Gate 3: the closed-loop mission — boosted faults drive the manager
    // down the ladder and back; bounds must hold in every visited mode.
    let mission = run_reaction(
        &points,
        &b.arch,
        &b.policies,
        &ReactionConfig {
            hyperperiods,
            boost: 1e5,
            ..ReactionConfig::default()
        },
        mcmap_obs::Recorder::default(),
        mcmap_telemetry::Registry::default(),
    );
    assert_eq!(
        mission.bound_violations, 0,
        "bound violations in degraded modes"
    );
    assert!(
        !mission.transitions.is_empty(),
        "the mission never exercised a mode transition — raise the boost"
    );
    let mut lat: Vec<u64> = mission.switch_latency.iter().map(|t| t.ticks()).collect();
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            0
        } else {
            lat[((lat.len() - 1) as f64 * p).round() as usize]
        }
    };
    let (lat_p50, lat_p95, lat_max) = (pct(0.50), pct(0.95), lat.last().copied().unwrap_or(0));

    println!(
        "sim_validation/cruise: {} points x {} profiles ({} runs) in {:.2} s — \
         {:.0} runs/s, 0 violations, {} covered / {} faulty, slack [{}, {}] ticks, \
         {} transitions, switch latency p50 {} p95 {} max {} ticks",
        points.len(),
        summary.done,
        runs,
        wall,
        runs_per_sec,
        covered,
        faulty,
        min_slack,
        max_slack,
        mission.transitions.len(),
        lat_p50,
        lat_p95,
        lat_max,
    );

    let out_dir = std::env::var("MCMAP_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    let json = format!(
        "{{\"benchmark\":\"cruise\",\"points\":{},\"profiles\":{},\"runs\":{runs},\
         \"wall_secs\":{wall:.6},\"runs_per_sec\":{runs_per_sec:.1},\"violations\":0,\
         \"covered\":{covered},\"faulty\":{faulty},\
         \"min_slack_ticks\":{min_slack},\"max_slack_ticks\":{max_slack},\
         \"mission_hyperperiods\":{hyperperiods},\"transitions\":{},\
         \"switch_latency_p50_ticks\":{lat_p50},\"switch_latency_p95_ticks\":{lat_p95},\
         \"switch_latency_max_ticks\":{lat_max},\"threads_invariant\":true}}\n",
        points.len(),
        summary.done,
        mission.transitions.len(),
    );
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = format!("{out_dir}/BENCH_sim.json");
    mcmap_resilience::atomic_write(std::path::Path::new(&path), json.as_bytes())
        .expect("write BENCH_sim.json");
    println!("sim_validation/cruise: wrote {path}");
}
