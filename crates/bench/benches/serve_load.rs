//! Load gate for the `mcmap-serve` job service.
//!
//! Boots an in-process server on a loopback port, then slams it with
//! `MCMAP_SERVE_JOBS` concurrent tenants (default 100), each on its own
//! connection: submit a spec, stream progress, and wait for completion.
//! `MCMAP_SERVE_SHARED` of the tenants (default 24) submit the *identical*
//! spec — the multi-tenant dedupe case the server-wide evaluation cache
//! exists for — while the rest use distinct seeds and therefore distinct
//! cache contexts.
//!
//! Gated assertions:
//!
//! 1. **zero failed jobs** — every submission reaches `completed`;
//! 2. **cross-job sharing works** — the server-wide cache reports a
//!    nonzero hit count (identical tenants dedupe against each other), and
//!    the identical tenants' fronts are byte-identical;
//! 3. the protocol survives the fan-out: every stream sees the final
//!    generation and every status document carries per-job counters.
//!
//! Reported metrics: sustained throughput (completed jobs per second) and
//! the p50/p99 of the submit-to-first-progress-frame latency — the time a
//! tenant waits before seeing its job actually scheduled, which is the
//! fairness number a slice-based round-robin is supposed to keep bounded.
//! A machine-readable summary goes to `results/BENCH_serve.json`
//! (directory override: `MCMAP_BENCH_OUT`). Budget knobs: `MCMAP_SERVE_POP`
//! (default 8), `MCMAP_SERVE_GENS` (default 3), `MCMAP_SERVE_WORKERS`
//! (default 0 = one per core), `MCMAP_SERVE_SLICE` (default 1 — the
//! finest, most adversarial interleaving).

use mcmap_bench::env_usize;
use mcmap_serve::{Client, JobSpec, ServeConfig};
use std::time::Instant;

fn main() {
    let jobs = env_usize("MCMAP_SERVE_JOBS", 100);
    let shared = env_usize("MCMAP_SERVE_SHARED", 24).min(jobs);
    let pop = env_usize("MCMAP_SERVE_POP", 8);
    let gens = env_usize("MCMAP_SERVE_GENS", 3);
    let workers = env_usize("MCMAP_SERVE_WORKERS", 0);
    let slice = env_usize("MCMAP_SERVE_SLICE", 1).max(1);

    let jobs_dir = std::env::temp_dir().join(format!("mcmap_serve_load_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&jobs_dir);
    let handle = mcmap_serve::server::spawn_local(ServeConfig {
        jobs_dir: jobs_dir.clone(),
        workers,
        slice,
        ..ServeConfig::default()
    })
    .expect("start in-process server");
    let addr = handle.addr.to_string();

    // One tenant per thread: submit, stream progress, wait for completion.
    let t0 = Instant::now();
    let tenants: Vec<std::thread::JoinHandle<(String, String, f64, bool)>> = (0..jobs)
        .map(|i| {
            let addr = addr.clone();
            let spec = JobSpec {
                benchmark: "cruise".into(),
                population: pop,
                generations: gens,
                // The first `shared` tenants are identical (same seed ⇒
                // same cache context); the rest are distinct.
                seed: if i < shared { 8 } else { 1000 + i as u64 },
            };
            let final_gen = gens as u64;
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                let submitted = Instant::now();
                let id = c.submit(&spec).expect("submit");
                let mut first_frame = None;
                let mut saw_final = false;
                let state = c
                    .stream(&id, |g| {
                        first_frame.get_or_insert_with(|| submitted.elapsed().as_secs_f64());
                        saw_final |= g == final_gen;
                    })
                    .expect("stream");
                let latency = first_frame.unwrap_or_else(|| submitted.elapsed().as_secs_f64());
                (id, state, latency, saw_final)
            })
        })
        .collect();
    let results: Vec<(String, String, f64, bool)> = tenants
        .into_iter()
        .map(|t| t.join().expect("tenant"))
        .collect();
    let wall = t0.elapsed().as_secs_f64();

    let failed: Vec<&(String, String, f64, bool)> = results
        .iter()
        .filter(|(_, s, _, _)| s != "completed")
        .collect();
    assert!(
        failed.is_empty(),
        "{} of {jobs} jobs did not complete: {:?}",
        failed.len(),
        failed
            .iter()
            .map(|(id, s, _, _)| (id, s))
            .collect::<Vec<_>>()
    );
    assert!(
        results.iter().all(|(_, _, _, saw)| *saw),
        "some tenant's stream never reported the final generation"
    );

    let mut control = Client::connect(&addr).expect("connect control");
    // The identical tenants must agree byte-for-byte, and their per-job
    // status documents must expose the engine counters.
    let shared_ids: Vec<&str> = results[..shared]
        .iter()
        .map(|(id, ..)| id.as_str())
        .collect();
    let reference_front = control
        .verb_raw("front", Some(shared_ids[0]))
        .expect("front");
    for id in &shared_ids[1..] {
        assert_eq!(
            control.verb_raw("front", Some(id)).expect("front"),
            reference_front,
            "identical tenants diverged"
        );
    }
    let status = control.status(shared_ids[0]).expect("status");
    assert!(
        status
            .get("eval")
            .and_then(|e| e.get("genomes"))
            .and_then(|v| v.as_u64())
            .is_some(),
        "status document lacks per-job eval counters"
    );

    // The metrics verb must expose per-verb request latencies and per-job
    // slice-duration histograms with quantiles after real load.
    let metrics = control.metrics().expect("metrics");
    let entries = match metrics.get("metrics") {
        Some(mcmap_obs::Json::Arr(a)) => a.as_slice(),
        other => panic!("metrics snapshot is not an array: {other:?}"),
    };
    let histogram_p95 = |name: &str| {
        entries
            .iter()
            .filter(|m| m.get("name").and_then(|v| v.as_str()) == Some(name))
            .filter_map(|m| {
                m.get("value")
                    .and_then(|v| v.get("p95"))
                    .and_then(|v| v.as_u64())
            })
            .max()
    };
    assert!(
        histogram_p95("serve.request_ns").is_some(),
        "metrics lack per-verb request-latency quantiles under load"
    );
    assert!(
        histogram_p95("serve.slice_ns").is_some(),
        "metrics lack slice-duration quantiles under load"
    );
    let prom = control.metrics_prometheus().expect("prometheus");
    assert!(
        prom.contains("# TYPE mcmap_serve_request_ns histogram"),
        "prometheus exposition lacks the request-latency family"
    );

    let stats = control.stats().expect("stats");
    assert!(
        stats
            .get("dropped_events")
            .and_then(|v| v.as_u64())
            .is_some(),
        "stats document lacks the dropped-events counter"
    );
    let cache = stats.get("cache").expect("stats.cache");
    let hits = cache.get("hits").and_then(|v| v.as_u64()).unwrap_or(0);
    let misses = cache.get("misses").and_then(|v| v.as_u64()).unwrap_or(0);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    assert!(
        hits > 0,
        "cross-job cache saw no hits across {shared} identical tenants"
    );

    let mut latencies: Vec<f64> = results.iter().map(|(_, _, l, _)| *l).collect();
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    let throughput = jobs as f64 / wall.max(1e-9);
    println!(
        "serve_load/cruise: {jobs} jobs ({shared} identical) in {wall:.2} s — \
         {throughput:.1} jobs/s, first-progress p50 {p50:.3} s, p99 {p99:.3} s, \
         cross-job cache hit rate {:.1}% ({hits} hits)",
        hit_rate * 100.0
    );

    let out_dir = std::env::var("MCMAP_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    let json = format!(
        "{{\"benchmark\":\"cruise\",\"jobs\":{jobs},\"shared_jobs\":{shared},\
         \"population\":{pop},\"generations\":{gens},\"slice\":{slice},\
         \"wall_secs\":{wall:.6},\"throughput_jobs_per_sec\":{throughput:.3},\
         \"first_progress_p50_secs\":{p50:.6},\"first_progress_p99_secs\":{p99:.6},\
         \"cache_hits\":{hits},\"cache_misses\":{misses},\
         \"cache_hit_rate\":{hit_rate:.6},\"failed_jobs\":0,\
         \"shared_fronts_identical\":true}}\n"
    );
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = format!("{out_dir}/BENCH_serve.json");
    mcmap_resilience::atomic_write(std::path::Path::new(&path), json.as_bytes())
        .expect("write BENCH_serve.json");
    println!("serve_load/cruise: wrote {path}");

    control.shutdown().expect("shutdown");
    handle.thread.join().expect("accept loop");
    let _ = std::fs::remove_dir_all(&jobs_dir);
}
