//! `fleet_scale` — the parallel-evaluation payoff gate.
//!
//! Runs the same fleet exploration twice — serial dispatch (`threads = 1`)
//! and parallel dispatch over the persistent pool — and demands:
//!
//! 1. **bit-identical Pareto fronts** (always asserted: the thread budget
//!    is a pure speed knob);
//! 2. **>2× wall speedup** of parallel over serial — asserted whenever the
//!    host can physically deliver it (persistent-pool capacity ≥ 4
//!    participants). On smaller hosts the speedup is *reported, not
//!    asserted* — the pool has no helpers there, "parallel" degrades to
//!    the same inline loop as serial, and a measured ≈1.0× is the correct,
//!    honest reading (the eval_engine bench takes the same stance). The
//!    gate status is recorded in the JSON so CI on a many-core host
//!    enforces the 2× bar while a laptop run stays green and legible.
//!
//! Writes `results/BENCH_scale.json` (override the directory with
//! `MCMAP_BENCH_OUT`), including both legs' full `EvalStats` — with the
//! per-worker busy/wall utilization ledger — so scatter losses are
//! observable rather than inferred.
//!
//! Budget knobs: `MCMAP_FLEET` (default `fleet-med`), `MCMAP_POP` (default
//! 8), `MCMAP_GENS` (default 2), `MCMAP_THREADS` (default 4),
//! `MCMAP_SCENARIO_THREADS` (default 2 in the parallel leg — batch- and
//! scenario-level fan-out share the pool's thread budget, so composing
//! them is safe by construction).

use criterion::{criterion_group, criterion_main, Criterion};
use mcmap_bench::{env_u64, env_usize};
use mcmap_benchmarks::{fleet, fleet_preset, Benchmark, FleetConfig};
use mcmap_core::{explore, AnalysisOptions, DseConfig, DseOutcome, ObjectiveMode};
use mcmap_eval::pool_capacity;
use mcmap_ga::GaConfig;
use std::time::Instant;

fn dse_cfg(
    b: &Benchmark,
    preset: &FleetConfig,
    threads: usize,
    scenario_threads: usize,
    pop: usize,
    gens: usize,
) -> DseConfig {
    DseConfig {
        ga: GaConfig {
            population: pop,
            generations: gens,
            seed: 8,
            threads,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::PowerService,
        allow_dropping: true,
        policies: Some(b.policies.clone()),
        repair_iters: 40,
        max_reexec: preset.max_reexec,
        max_replicas: preset.max_replicas,
        analysis: AnalysisOptions {
            scenario_threads,
            ..AnalysisOptions::default()
        },
        ..DseConfig::default()
    }
}

fn timed_explore(
    b: &Benchmark,
    preset: &FleetConfig,
    threads: usize,
    scenario_threads: usize,
    pop: usize,
    gens: usize,
) -> (DseOutcome, f64) {
    let t0 = Instant::now();
    let cfg = dse_cfg(b, preset, threads, scenario_threads, pop, gens);
    let outcome = explore(&b.apps, &b.arch, cfg);
    (outcome, t0.elapsed().as_secs_f64())
}

fn front_fingerprint(o: &DseOutcome) -> String {
    format!("{:?}", o.reports)
}

fn bench_fleet_scale(c: &mut Criterion) {
    let preset_name = std::env::var("MCMAP_FLEET").unwrap_or_else(|_| "fleet-med".to_string());
    let preset = fleet_preset(&preset_name)
        .unwrap_or_else(|| panic!("unknown fleet preset {preset_name:?}"));
    let seed = env_u64("MCMAP_SEED", 42);
    let pop = env_usize("MCMAP_POP", 8);
    let gens = env_usize("MCMAP_GENS", 2);
    let par = env_usize("MCMAP_THREADS", 4).max(2);
    let scenario_par = env_usize("MCMAP_SCENARIO_THREADS", 2).max(1);
    let b = fleet(&preset, seed);
    println!(
        "fleet_scale: {} — {} tasks, {} apps, {} PEs (pool capacity {})",
        b.name,
        b.apps.num_tasks(),
        b.apps.num_apps(),
        b.arch.num_processors(),
        pool_capacity(),
    );

    let (serial, wall_1) = timed_explore(&b, &preset, 1, 1, pop, gens);
    let (parallel, wall_n) = timed_explore(&b, &preset, par, scenario_par, pop, gens);

    assert_eq!(
        front_fingerprint(&serial),
        front_fingerprint(&parallel),
        "the Pareto front must be bit-identical for any thread count"
    );
    assert_eq!(serial.eval_stats.genomes, parallel.eval_stats.genomes);

    let speedup = wall_1 / wall_n.max(1e-9);
    // The 2× bar needs ≥4 genuinely parallel participants (2 would cap the
    // ideal speedup at 2.0 exactly); below that the hardware cannot express
    // the property being gated.
    let capacity = pool_capacity();
    let gate_enforced = capacity >= 4;
    if gate_enforced {
        assert!(
            speedup > 2.0,
            "parallel evaluation must beat serial by >2x on {preset_name} \
             (measured {speedup:.2}x at {par} threads, pool capacity {capacity})"
        );
    }
    let util: Vec<String> = parallel
        .eval_stats
        .utilization()
        .iter()
        .map(|u| format!("{:.0}%", u * 100.0))
        .collect();
    println!(
        "fleet_scale/{preset_name}: {wall_1:.3} s serial, {wall_n:.3} s at {par} threads \
         x {scenario_par} scenario-threads (speedup x{speedup:.2}, gate {}, \
         worker utilization [{}], fronts identical)",
        if gate_enforced {
            "enforced"
        } else {
            "reported only: pool capacity < 4"
        },
        util.join(", "),
    );

    let out_dir = std::env::var("MCMAP_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    let json = format!(
        "{{\"benchmark\":\"{preset_name}\",\"tasks\":{},\"apps\":{},\"pes\":{},\
         \"population\":{pop},\"generations\":{gens},\"threads\":{par},\
         \"scenario_threads\":{scenario_par},\"pool_capacity\":{capacity},\
         \"wall_secs_1\":{wall_1:.6},\"wall_secs_n\":{wall_n:.6},\
         \"speedup\":{speedup:.3},\"speedup_required\":2.0,\
         \"speedup_gate_enforced\":{gate_enforced},\
         \"fronts_identical\":true,\
         \"serial\":{},\"parallel\":{}}}\n",
        b.apps.num_tasks(),
        b.apps.num_apps(),
        b.arch.num_processors(),
        serial.eval_stats.to_json(),
        parallel.eval_stats.to_json(),
    );
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = format!("{out_dir}/BENCH_scale.json");
    mcmap_resilience::atomic_write(std::path::Path::new(&path), json.as_bytes())
        .expect("write BENCH_scale.json");
    println!("fleet_scale: wrote {path}");

    // A criterion-timed leg on the small preset so the harness also
    // reports a per-iteration figure (tiny budget: the explores above are
    // the real measurement).
    let small = fleet_preset("fleet-small").expect("known preset");
    let sb = fleet(&small, seed);
    let mut group = c.benchmark_group("fleet_scale");
    group.sample_size(10);
    group.bench_function("explore/fleet_small_4x1", |bench| {
        bench.iter(|| explore(&sb.apps, &sb.arch, dse_cfg(&sb, &small, par, 1, 4, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_scale);
criterion_main!(benches);
