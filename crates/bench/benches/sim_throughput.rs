//! Throughput of the discrete-event simulator and the Monte-Carlo driver
//! (the paper's 10 000-profile WC-Sim relies on this being fast).

use criterion::{criterion_group, criterion_main, Criterion};
use mcmap_bench::sample_designs;
use mcmap_benchmarks::cruise;
use mcmap_sim::{monte_carlo, MonteCarloConfig, NoFaults, RandomFaults, SimConfig, Simulator};

fn bench_sim(c: &mut Criterion) {
    let b = cruise();
    let designs = sample_designs(&b, 1, 11);
    let d = &designs[0];
    let sim = Simulator::new(&d.hsys, &b.arch, &d.mapping, b.policies.clone());

    let mut group = c.benchmark_group("sim_throughput");
    group.bench_function("one_hyperperiod_fault_free", |bench| {
        bench.iter(|| sim.run(&SimConfig::default(), &mut NoFaults))
    });
    group.bench_function("one_hyperperiod_boosted_faults", |bench| {
        let mut seed = 0u64;
        bench.iter(|| {
            seed += 1;
            let mut faults = RandomFaults::new(&d.hsys, &b.arch, &d.mapping, seed).with_boost(1e5);
            sim.run(&SimConfig::worst_case(d.dropped.clone()), &mut faults)
        })
    });
    group.bench_function("monte_carlo_100_profiles", |bench| {
        bench.iter(|| {
            monte_carlo(
                &d.hsys,
                &b.arch,
                &d.mapping,
                &b.policies,
                &MonteCarloConfig {
                    runs: 100,
                    boost: 1e5,
                    sim: SimConfig::worst_case(d.dropped.clone()),
                    ..MonteCarloConfig::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
