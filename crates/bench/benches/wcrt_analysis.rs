//! Criterion-compat harness for the Algorithm 1 **analysis fast path**
//! (warm-started scenario fixed points + dominance pruning), in two parts:
//!
//! 1. a macro A/B run over a heavily hardened DT-med design — the cold,
//!    prune-free reference enumeration ([`AnalysisOptions::reference`])
//!    against the default fast path — asserting **bit-identical** windows
//!    and verdicts while requiring strictly fewer backend calls;
//! 2. criterion-timed legs of both variants for per-iteration figures.
//!
//! The macro part writes a machine-readable summary to
//! `results/BENCH_sched.json` (override the directory with
//! `MCMAP_BENCH_OUT`). Unlike the eval-engine bench, the speedup here *is*
//! asserted (`>= 1.5`): both variants run single-threaded in the same
//! process and the timing is interleaved min-of-batches (preemption can
//! only slow a batch down, never speed it up), so the ratio is a genuine
//! algorithmic measurement, not a core-count or host-load lottery.
//!
//! Budget knob: `MCMAP_ANALYSIS_ITERS` (default 300) timed repetitions per
//! variant, split over ten alternating batches.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcmap_bench::env_usize;
use mcmap_benchmarks::{dt_med, Benchmark};
use mcmap_core::{analyze_with, AnalysisOptions, GenomeSpace, McAnalysis};
use mcmap_hardening::{harden, HardenedSystem, HardeningPlan, TaskHardening};
use mcmap_model::ProcId;
use mcmap_sched::Mapping;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// DT-med with every task hardened by two re-executions and nothing
/// dropped: every trigger spawns a transition scenario whose bound vector
/// inflates towards the head tasks', which is exactly the workload the
/// dominance pruner and the warm starts are built for. The placement comes
/// from the first clustered chromosome whose reference analysis converges,
/// so both timed variants chase real fixed points rather than saturating.
fn hardened_dt_med() -> (Benchmark, HardenedSystem, Mapping) {
    let b = dt_med();
    let mut plan = HardeningPlan::unhardened(&b.apps);
    for flat in 0..b.apps.task_refs().len() {
        plan.set_by_flat_index(flat, TaskHardening::reexecution(2));
    }
    let hsys = harden(&b.apps, &plan, &b.arch).expect("uniform re-execution plans are valid");
    let space = GenomeSpace::new(&b.apps, &b.arch);
    for seed in 0..64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = space.clustered(&mut rng);
        let (_, _, bindings) = space.decode(&g);
        let placement: Vec<ProcId> = hsys
            .tasks()
            .map(|(_, t)| match t.fixed_proc {
                Some(p) => p,
                None => bindings[hsys.flat_of_origin(t.origin).expect("origin tracked")],
            })
            .collect();
        let Ok(mapping) = Mapping::new(&hsys, &b.arch, placement) else {
            continue;
        };
        let probe = analyze_with(
            &hsys,
            &b.arch,
            &mapping,
            &b.policies,
            &[],
            AnalysisOptions::reference(),
        );
        if probe.normal.converged && probe.worst.converged {
            return (b, hsys, mapping);
        }
    }
    panic!("no clustered DT-med placement converges under full re-execution");
}

fn run(
    b: &Benchmark,
    hsys: &HardenedSystem,
    mapping: &Mapping,
    opts: AnalysisOptions,
) -> McAnalysis {
    analyze_with(hsys, &b.arch, mapping, &b.policies, &[], opts)
}

/// Wall time of `iters` repetitions of one variant, in seconds.
fn timed(
    b: &Benchmark,
    hsys: &HardenedSystem,
    mapping: &Mapping,
    opts: AnalysisOptions,
    iters: usize,
) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(run(b, hsys, mapping, opts));
    }
    t0.elapsed().as_secs_f64()
}

/// Interleaved min-of-batches wall time of both variants: `batches`
/// alternating (cold, fast) batch timings of `per_batch` repetitions each,
/// keeping each variant's fastest batch. The minimum estimates the
/// undisturbed cost — a preempted batch can only be slower, never faster —
/// and interleaving exposes both variants to the same host-load phases, so
/// the ratio measures the algorithm instead of the scheduler.
fn min_walls(
    b: &Benchmark,
    hsys: &HardenedSystem,
    mapping: &Mapping,
    batches: usize,
    per_batch: usize,
) -> (f64, f64) {
    let mut best_cold = f64::INFINITY;
    let mut best_fast = f64::INFINITY;
    for _ in 0..batches {
        best_cold = best_cold.min(timed(
            b,
            hsys,
            mapping,
            AnalysisOptions::reference(),
            per_batch,
        ));
        best_fast = best_fast.min(timed(
            b,
            hsys,
            mapping,
            AnalysisOptions::default(),
            per_batch,
        ));
    }
    (best_cold, best_fast)
}

fn bench_wcrt_macro(c: &mut Criterion) {
    let (b, hsys, mapping) = hardened_dt_med();
    let iters = env_usize("MCMAP_ANALYSIS_ITERS", 300).max(1);

    let cold = run(&b, &hsys, &mapping, AnalysisOptions::reference());
    let fast = run(&b, &hsys, &mapping, AnalysisOptions::default());

    // The fast path is an optimization, not an approximation: identical
    // windows, verdicts, and classification — only the effort counters may
    // (and must) improve.
    assert_eq!(cold.normal, fast.normal, "normal-state windows must match");
    assert_eq!(cold.worst, fast.worst, "worst-case windows must match");
    assert_eq!(
        cold.schedulable(&hsys, &[]),
        fast.schedulable(&hsys, &[]),
        "verdict must match"
    );
    assert_eq!(cold.scenarios, fast.scenarios);
    assert!(
        fast.backend_calls < cold.backend_calls,
        "pruning must strictly reduce backend calls ({} vs {})",
        fast.backend_calls,
        cold.backend_calls
    );
    assert!(
        fast.scenarios_pruned > 0,
        "the workload must exercise the pruner"
    );

    // Warm both code paths above; now the timed legs. Ten alternating
    // batches per variant, scored by the fastest batch (see [`min_walls`]).
    let batches = 10;
    let per_batch = iters.div_ceil(batches);
    let (wall_cold, wall_fast) = min_walls(&b, &hsys, &mapping, batches, per_batch);
    let speedup = wall_cold / wall_fast.max(1e-9);

    println!(
        "wcrt_analysis/dt_med: cold {:.2} ms, fast {:.2} ms (best of {batches} \
         batches x {per_batch} iters; speedup x{speedup:.2}; backend calls {} -> {}, \
         {} of {} scenarios pruned, {} warm iters saved)",
        wall_cold * 1e3,
        wall_fast * 1e3,
        cold.backend_calls,
        fast.backend_calls,
        fast.scenarios_pruned,
        fast.scenarios,
        fast.warm_iters_saved
    );
    assert!(
        speedup >= 1.5,
        "the fast path must be at least 1.5x the cold enumeration (got x{speedup:.2})"
    );

    let out_dir = std::env::var("MCMAP_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    let json = format!(
        "{{\"benchmark\":\"dt-med-hardened\",\"tasks\":{},\"scenarios\":{},\
         \"batches\":{batches},\"iters_per_batch\":{per_batch},\
         \"wall_secs_cold\":{wall_cold:.6},\
         \"wall_secs_fast\":{wall_fast:.6},\"speedup\":{speedup:.3},\
         \"backend_calls_cold\":{},\"backend_calls_fast\":{},\
         \"scenarios_pruned\":{},\"warm_iters_saved\":{},\
         \"fixedpoint_iters_cold\":{},\"fixedpoint_iters_fast\":{},\
         \"windows_identical\":true}}\n",
        hsys.num_tasks(),
        fast.scenarios,
        cold.backend_calls,
        fast.backend_calls,
        fast.scenarios_pruned,
        fast.warm_iters_saved,
        cold.fixedpoint_iters,
        fast.fixedpoint_iters,
    );
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = format!("{out_dir}/BENCH_sched.json");
    mcmap_resilience::atomic_write(std::path::Path::new(&path), json.as_bytes())
        .expect("write BENCH_sched.json");
    println!("wcrt_analysis/dt_med: wrote {path}");

    // Criterion-timed legs for per-iteration figures (the asserts above
    // are the real gate).
    let mut group = c.benchmark_group("wcrt_analysis");
    group.sample_size(10);
    group.bench_function("dt_med/cold_reference", |bench| {
        bench.iter(|| run(&b, &hsys, &mapping, AnalysisOptions::reference()))
    });
    group.bench_function("dt_med/fast_path", |bench| {
        bench.iter(|| run(&b, &hsys, &mapping, AnalysisOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_wcrt_macro);
criterion_main!(benches);
