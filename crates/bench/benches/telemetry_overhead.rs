//! Overhead gate for the `mcmap-telemetry` metrics layer.
//!
//! Runs the same Cruise exploration twice per repetition — once with a
//! disabled [`Registry`] (the detached-instrument fast path) and once with
//! metrics collection on across every instrumented layer (eval batch
//! counters and wall histograms, sched per-candidate analysis metrics) —
//! back-to-back and in alternating order, so neither leg systematically
//! lands in the slower half of a throttling window. The gated metric is
//! the **ratio of the best-of-N times** of the two legs, same as
//! `obs_overhead`: scheduler and hypervisor noise is strictly additive, so
//! each leg's minimum converges on its true runtime, while per-pair ratios
//! of ~40 ms runs are noise-dominated on a virtualized host. The median of
//! the per-pair ratios is still computed and reported as a cross-check.
//! The bench asserts three things:
//!
//! 1. the Pareto fronts of the metered and unmetered runs are
//!    bit-identical (metrics collection is a read-only observer);
//! 2. the metered run actually recorded samples (the measurement is not a
//!    no-op against a no-op);
//! 3. the relative overhead stays below the budget (default **5 %**,
//!    override with `MCMAP_TELEMETRY_MAX_OVERHEAD_PCT`).
//!
//! A machine-readable summary goes to `results/BENCH_telemetry.json`
//! (directory override: `MCMAP_BENCH_OUT`). Budget knobs: `MCMAP_POP`
//! (default 48), `MCMAP_GENS` (default 16), `MCMAP_THREADS` (default 1 —
//! serial timing is the least noisy), `MCMAP_TELEMETRY_REPEATS`
//! (default 9).

use mcmap_bench::{env_u64, env_usize};
use mcmap_benchmarks::{cruise, Benchmark};
use mcmap_core::{explore, DseConfig, DseOutcome, ObjectiveMode};
use mcmap_ga::GaConfig;
use mcmap_telemetry::Registry;
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn dse_cfg(b: &Benchmark, threads: usize, pop: usize, gens: usize, reg: Registry) -> DseConfig {
    DseConfig {
        ga: GaConfig {
            population: pop,
            generations: gens,
            seed: env_u64("MCMAP_SEED", 8),
            threads,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::PowerService,
        allow_dropping: true,
        policies: Some(b.policies.clone()),
        repair_iters: 40,
        telemetry: reg,
        ..DseConfig::default()
    }
}

fn timed_explore(b: &Benchmark, cfg: DseConfig) -> (DseOutcome, f64) {
    let t0 = Instant::now();
    let outcome = explore(&b.apps, &b.arch, cfg);
    (outcome, t0.elapsed().as_secs_f64())
}

/// The comparable fingerprint of an exploration: the full report list in
/// front order.
fn fingerprint(o: &DseOutcome) -> String {
    format!("{:?}", o.reports)
}

fn main() {
    let b = cruise();
    let pop = env_usize("MCMAP_POP", 48);
    let gens = env_usize("MCMAP_GENS", 16);
    let threads = env_usize("MCMAP_THREADS", 1);
    let repeats = env_usize("MCMAP_TELEMETRY_REPEATS", 9).max(1);
    let max_pct = env_f64("MCMAP_TELEMETRY_MAX_OVERHEAD_PCT", 5.0);

    // Warm-up: populate allocator pools, page in the code, and grab the
    // reference fingerprint both legs must reproduce.
    let (reference, _) = timed_explore(&b, dse_cfg(&b, threads, pop, gens, Registry::default()));
    let want = fingerprint(&reference);

    let mut wall_off = f64::INFINITY;
    let mut wall_on = f64::INFINITY;
    let mut ratios = Vec::with_capacity(repeats);
    let mut samples = 0usize;
    for rep in 0..repeats {
        // Alternate which leg runs first: under cgroup CPU-quota
        // throttling the *second* leg of a pair is systematically slower,
        // which a fixed order would misread as metrics overhead.
        let run_off = |wall_off: &mut f64| {
            let (plain, t_off) =
                timed_explore(&b, dse_cfg(&b, threads, pop, gens, Registry::default()));
            assert_eq!(fingerprint(&plain), want, "unmetered run diverged");
            *wall_off = wall_off.min(t_off);
            t_off
        };
        let run_on = |wall_on: &mut f64, samples: &mut usize| {
            let reg = Registry::new();
            let (metered, t_on) = timed_explore(&b, dse_cfg(&b, threads, pop, gens, reg.clone()));
            assert_eq!(
                fingerprint(&metered),
                want,
                "metrics collection changed the Pareto front"
            );
            let snap = reg.snapshot();
            *samples = snap.metrics.len();
            assert!(*samples > 0, "metered run recorded no metrics");
            *wall_on = wall_on.min(t_on);
            t_on
        };
        let (t_off, t_on) = if rep % 2 == 0 {
            let t_off = run_off(&mut wall_off);
            let t_on = run_on(&mut wall_on, &mut samples);
            (t_off, t_on)
        } else {
            let t_on = run_on(&mut wall_on, &mut samples);
            let t_off = run_off(&mut wall_off);
            (t_off, t_on)
        };
        ratios.push(t_on / t_off.max(1e-9));
    }

    ratios.sort_by(f64::total_cmp);
    let overhead_pct = (wall_on / wall_off.max(1e-9) - 1.0) * 100.0;
    let median_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    println!(
        "telemetry_overhead/cruise: {wall_off:.4} s unmetered, {wall_on:.4} s metered (best \
         of {repeats}; {samples} instruments; overhead {overhead_pct:+.2}% best-of, \
         {median_pct:+.2}% median, budget {max_pct:.1}%)"
    );

    let out_dir = std::env::var("MCMAP_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    let json = format!(
        "{{\"benchmark\":\"cruise\",\"population\":{pop},\"generations\":{gens},\
         \"threads\":{threads},\"repeats\":{repeats},\"instruments\":{samples},\
         \"wall_secs_unmetered\":{wall_off:.6},\"wall_secs_metered\":{wall_on:.6},\
         \"overhead_pct\":{overhead_pct:.3},\"median_overhead_pct\":{median_pct:.3},\
         \"max_overhead_pct\":{max_pct:.1},\
         \"fronts_identical\":true}}\n"
    );
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = format!("{out_dir}/BENCH_telemetry.json");
    mcmap_resilience::atomic_write(std::path::Path::new(&path), json.as_bytes())
        .expect("write BENCH_telemetry.json");
    println!("telemetry_overhead/cruise: wrote {path}");

    assert!(
        overhead_pct < max_pct,
        "metrics overhead {overhead_pct:.2}% exceeds the {max_pct:.1}% budget \
         (unmetered {wall_off:.4} s, metered {wall_on:.4} s)"
    );
}
