//! Criterion bench for the §5.2 power-only DSE: one short exploration of
//! DT-med with and without task dropping.

use criterion::{criterion_group, criterion_main, Criterion};
use mcmap_benchmarks::dt_med;
use mcmap_core::{explore, DseConfig, ObjectiveMode};
use mcmap_ga::GaConfig;

fn bench_dse_power(c: &mut Criterion) {
    let b = dt_med();
    let cfg = |allow: bool| DseConfig {
        ga: GaConfig {
            population: 16,
            generations: 4,
            seed: 8,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::Power,
        allow_dropping: allow,
        policies: Some(b.policies.clone()),
        repair_iters: 40,
        ..DseConfig::default()
    };

    let mut group = c.benchmark_group("dse_power");
    group.sample_size(10);
    group.bench_function("dt_med_with_dropping", |bench| {
        bench.iter(|| explore(&b.apps, &b.arch, cfg(true)))
    });
    group.bench_function("dt_med_without_dropping", |bench| {
        bench.iter(|| explore(&b.apps, &b.arch, cfg(false)))
    });
    group.finish();
}

criterion_group!(benches, bench_dse_power);
criterion_main!(benches);
