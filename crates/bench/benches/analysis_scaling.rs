//! Scaling of the mixed-criticality analysis with system size (§3 claims
//! O(|V|² + |V|·C) around a backend of complexity C): Algorithm 1 over
//! synthetic systems of growing task count, against the single-run Naive
//! analysis (the "no transition enumeration" ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcmap_benchmarks::{synth, SynthConfig};
use mcmap_core::{analyze, analyze_naive, GenomeSpace};
use mcmap_hardening::harden;
use mcmap_model::ProcId;
use mcmap_sched::Mapping;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scaled_system(
    apps_n: usize,
    tasks: usize,
) -> (
    mcmap_benchmarks::Benchmark,
    mcmap_hardening::HardenedSystem,
    Mapping,
) {
    let cfg = SynthConfig {
        num_apps: apps_n,
        tasks_per_app: (tasks, tasks),
        ..SynthConfig::default()
    };
    let b = synth(&cfg, 3);
    let space = GenomeSpace::new(&b.apps, &b.arch);
    let mut rng = StdRng::seed_from_u64(1);
    let g = space.clustered(&mut rng);
    let (plan, _, bindings) = space.decode(&g);
    let hsys = harden(&b.apps, &plan, &b.arch).expect("clustered plans are valid");
    let placement: Vec<ProcId> = hsys
        .tasks()
        .map(|(_, t)| match t.fixed_proc {
            Some(p) => p,
            None => bindings[hsys.flat_of_origin(t.origin).expect("origin tracked")],
        })
        .collect();
    let mapping = Mapping::new(&hsys, &b.arch, placement).expect("clustered plans map");
    (b, hsys, mapping)
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_scaling");
    for (apps_n, tasks) in [(2usize, 4usize), (4, 6), (6, 8), (8, 10)] {
        let (b, hsys, mapping) = scaled_system(apps_n, tasks);
        let n = hsys.num_tasks();
        group.bench_with_input(BenchmarkId::new("proposed", n), &n, |bench, _| {
            bench.iter(|| analyze(&hsys, &b.arch, &mapping, &b.policies, &[]))
        });
        group.bench_with_input(BenchmarkId::new("naive_single_run", n), &n, |bench, _| {
            bench.iter(|| analyze_naive(&hsys, &b.arch, &mapping, &b.policies, &[]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
