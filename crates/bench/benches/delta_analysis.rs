//! Criterion-compat harness for the **genome-delta incremental analysis**
//! (parent fixed-point solution reuse gated by the interference closure),
//! in two parts:
//!
//! 1. a macro A/B run of a mutation-heavy GA over DT-med — the same
//!    exploration analyzed cold (`delta = false`) against the delta fast
//!    path (`delta = true`) — asserting a **bit-identical** Pareto front,
//!    audit, and deterministic effort counters while requiring at least a
//!    2x reduction in backend runs actually executed;
//! 2. criterion-timed legs of both variants for per-run figures.
//!
//! The macro part writes a machine-readable summary to
//! `results/BENCH_delta.json` (override the directory with
//! `MCMAP_BENCH_OUT`). The asserted gate is the *backend-run ratio*, not
//! wall time: reuse is an exact bit-equality short-circuit, so the counter
//! ratio is a deterministic algorithmic measurement independent of host
//! load.
//!
//! Budget knobs: `MCMAP_DELTA_POP` (default 24) population and
//! `MCMAP_DELTA_GENS` (default 12) generations for the GA.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcmap_bench::env_usize;
use mcmap_benchmarks::dt_med;
use mcmap_core::{explore, DseConfig, DseOutcome};
use std::time::Instant;

/// A mutation-heavy exploration: most offspring are mutants of a designated
/// parent, which is exactly the workload the genome-delta pass is built
/// for — small diffs whose interference closure stays narrow and whose
/// repaired phenotypes frequently coincide with the parent's.
fn cfg(delta: bool, pop: usize, gens: usize) -> DseConfig {
    let mut cfg = DseConfig {
        audit: true,
        delta,
        repair_iters: 30,
        // The memo cache is orthogonal reuse machinery (benchmarked by
        // eval_engine); disabling it on both sides isolates the delta
        // pass as the only thing that varies between the two runs.
        cache_cap: 0,
        ..DseConfig::default()
    };
    cfg.ga.population = pop;
    cfg.ga.generations = gens;
    cfg.ga.mutation_rate = 0.9;
    cfg.ga.crossover_rate = 0.2;
    cfg.ga.threads = 1;
    cfg.ga.seed = 11;
    cfg
}

fn run(delta: bool, pop: usize, gens: usize) -> DseOutcome {
    let b = dt_med();
    explore(&b.apps, &b.arch, cfg(delta, pop, gens))
}

fn bench_delta_macro(c: &mut Criterion) {
    let pop = env_usize("MCMAP_DELTA_POP", 24).max(4);
    let gens = env_usize("MCMAP_DELTA_GENS", 12).max(1);

    let cold = run(false, pop, gens);
    let fast = run(true, pop, gens);

    // The delta pass is an optimization, never an approximation: the front,
    // the audit, and every deterministic effort counter must match the cold
    // run bit-for-bit.
    assert_eq!(
        cold.result.front.len(),
        fast.result.front.len(),
        "front size must match"
    );
    for (a, b) in cold.result.front.iter().zip(&fast.result.front) {
        assert_eq!(a.eval, b.eval, "front evaluations must match");
        assert_eq!(a.genotype, b.genotype, "front genotypes must match");
    }
    assert_eq!(cold.audit, fast.audit, "audit counters must match");
    assert_eq!(cold.analysis.candidates, fast.analysis.candidates);
    assert_eq!(cold.analysis.scenarios, fast.analysis.scenarios);
    assert_eq!(cold.analysis.backend_calls, fast.analysis.backend_calls);
    assert_eq!(
        cold.analysis.fixedpoint_iters,
        fast.analysis.fixedpoint_iters
    );
    assert_eq!(
        cold.analysis.scenarios_pruned,
        fast.analysis.scenarios_pruned
    );
    assert_eq!(
        cold.analysis.warm_iters_saved,
        fast.analysis.warm_iters_saved
    );
    assert_eq!(
        cold.analysis.backend_reused, 0,
        "the cold run must not reuse anything"
    );
    assert!(
        fast.analysis.backend_reused > 0 && fast.analysis.delta_reuses > 0,
        "the delta run must actually reuse parent solutions"
    );

    // The asserted gate: backend runs *executed* (as-if-fresh calls minus
    // reused ones) must drop by at least 2x.
    let executed_cold = cold.analysis.backend_calls;
    let executed_fast = fast.analysis.backend_calls - fast.analysis.backend_reused;
    let ratio = executed_cold as f64 / (executed_fast as f64).max(1.0);
    println!(
        "delta_analysis/dt_med: backend runs {executed_cold} -> {executed_fast} \
         (x{ratio:.2}; {} reuses over {} candidates, {} cold fallbacks, \
         affect-set sum {})",
        fast.analysis.delta_reuses,
        fast.analysis.candidates,
        fast.analysis.delta_cold_fallbacks,
        fast.analysis.affect_set_size,
    );
    assert!(
        ratio >= 2.0,
        "the delta pass must at least halve executed backend runs (got x{ratio:.2})"
    );

    let out_dir = std::env::var("MCMAP_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    let json = format!(
        "{{\"benchmark\":\"dt-med-delta\",\"population\":{pop},\"generations\":{gens},\
         \"candidates\":{},\"backend_calls\":{},\
         \"backend_executed_cold\":{executed_cold},\
         \"backend_executed_delta\":{executed_fast},\
         \"backend_reused\":{},\"delta_reuses\":{},\"delta_cold_fallbacks\":{},\
         \"affect_set_size\":{},\"reduction\":{ratio:.3},\
         \"front_identical\":true}}\n",
        fast.analysis.candidates,
        fast.analysis.backend_calls,
        fast.analysis.backend_reused,
        fast.analysis.delta_reuses,
        fast.analysis.delta_cold_fallbacks,
        fast.analysis.affect_set_size,
    );
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = format!("{out_dir}/BENCH_delta.json");
    mcmap_resilience::atomic_write(std::path::Path::new(&path), json.as_bytes())
        .expect("write BENCH_delta.json");
    println!("delta_analysis/dt_med: wrote {path}");

    // Wall-clock figures for context (informational — the counter ratio
    // above is the gate; a whole-run wall comparison also pays repair,
    // dominance sorting, and diffing, which delta does not remove).
    let t0 = Instant::now();
    black_box(run(false, pop, gens));
    let wall_cold = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    black_box(run(true, pop, gens));
    let wall_fast = t1.elapsed().as_secs_f64();
    println!(
        "delta_analysis/dt_med: cold {:.1} ms, delta {:.1} ms whole-run wall",
        wall_cold * 1e3,
        wall_fast * 1e3
    );

    // Criterion-timed legs (the asserts above are the real gate).
    let mut group = c.benchmark_group("delta_analysis");
    group.sample_size(10);
    group.bench_function("dt_med/cold", |bench| bench.iter(|| run(false, pop, gens)));
    group.bench_function("dt_med/delta", |bench| bench.iter(|| run(true, pop, gens)));
    group.finish();
}

criterion_group!(benches, bench_delta_macro);
criterion_main!(benches);
