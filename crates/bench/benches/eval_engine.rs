//! Criterion-compat harness for the `mcmap-eval` candidate-evaluation
//! engine, in two parts:
//!
//! 1. micro-benchmarks of the engine primitives (`parallel_map` scatter /
//!    gather, memoization-cache hits);
//! 2. a macro run of the fig5-style DT-med exploration at 1 worker vs. N
//!    workers, asserting **bit-identical** Pareto fronts and recording the
//!    measured speedup and cache hit rate.
//!
//! The macro part writes a machine-readable summary to
//! `results/BENCH_eval.json` (override the directory with
//! `MCMAP_BENCH_OUT`). The *upside* of parallelism is reported, not
//! asserted — on a single-core host the parallel run cannot be faster,
//! and the engine's determinism guarantee is exactly that thread count
//! never changes results, only wall-clock. The *downside* IS asserted:
//! a multi-threaded run of a small workload must never thrash. Whether
//! the adaptive dispatcher falls back to serial or the persistent pool
//! absorbs the dispatch, the parallel leg must stay within 5 % of serial
//! (speedup ≥ 0.95×, min-of-3 walls to shed scheduler noise), and the
//! dispatcher's decision is recorded in the JSON so a ≈1.0× speedup is
//! legible as "small-batch fallback engaged", not "engine regressed".
//!
//! Budget knobs: `MCMAP_POP` (default 24), `MCMAP_GENS` (default 6),
//! `MCMAP_THREADS` (default 4) for the parallel leg.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcmap_bench::env_usize;
use mcmap_benchmarks::{dt_med, Benchmark};
use mcmap_core::{explore, DseConfig, DseOutcome, ObjectiveMode};
use mcmap_eval::{parallel_map, EvalCacheConfig, EvalEngine};
use mcmap_ga::GaConfig;
use std::time::Instant;

fn dse_cfg(b: &Benchmark, threads: usize, pop: usize, gens: usize) -> DseConfig {
    DseConfig {
        ga: GaConfig {
            population: pop,
            generations: gens,
            seed: 8,
            threads,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::PowerService,
        allow_dropping: true,
        policies: Some(b.policies.clone()),
        repair_iters: 40,
        ..DseConfig::default()
    }
}

/// Runs one exploration five times and returns the last outcome plus
/// the *minimum* wall time — the standard way to measure a short run
/// without scheduler noise dominating the figure.
fn timed_explore(b: &Benchmark, threads: usize, pop: usize, gens: usize) -> (DseOutcome, f64) {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..5 {
        let t0 = Instant::now();
        let o = explore(&b.apps, &b.arch, dse_cfg(b, threads, pop, gens));
        best = best.min(t0.elapsed().as_secs_f64());
        outcome = Some(o);
    }
    (outcome.expect("at least one rep"), best)
}

/// The comparable fingerprint of an exploration: the full report list
/// (feasible flag, objectives, dropped sets) in front order.
fn front_fingerprint(o: &DseOutcome) -> String {
    format!("{:?}", o.reports)
}

fn bench_engine_micro(c: &mut Criterion) {
    let items: Vec<u64> = (0..256).collect();
    let mut group = c.benchmark_group("eval_engine");
    group.bench_function("parallel_map/256x2t", |bench| {
        bench.iter(|| parallel_map(&items, 2, |&g| black_box(g).wrapping_mul(0x9E37_79B9)))
    });
    let engine: EvalEngine<u64> = EvalEngine::new(EvalCacheConfig::default(), &"micro");
    engine.evaluate_batch(&items, 1, |&g| g.wrapping_mul(3));
    group.bench_function("cache_hit/256", |bench| {
        bench.iter(|| engine.evaluate_batch(&items, 1, |&g| g.wrapping_mul(3)))
    });
    group.finish();
}

fn bench_explore_macro(c: &mut Criterion) {
    let b = dt_med();
    let pop = env_usize("MCMAP_POP", 24);
    let gens = env_usize("MCMAP_GENS", 6);
    let par = env_usize("MCMAP_THREADS", 4).max(2);

    let (serial, wall_1) = timed_explore(&b, 1, pop, gens);
    let (parallel, wall_n) = timed_explore(&b, par, pop, gens);

    assert_eq!(
        front_fingerprint(&serial),
        front_fingerprint(&parallel),
        "the Pareto front must be bit-identical for any thread count"
    );
    assert_eq!(serial.eval_stats.genomes, parallel.eval_stats.genomes);

    let speedup = wall_1 / wall_n.max(1e-9);
    let hit_rate = parallel.eval_stats.hit_rate();
    // The small-batch regression gate: a multi-threaded run of a workload
    // this small must cost no more than serial — whether because the cost
    // model fell back to the serial path or because persistent-pool
    // dispatch is cheap enough not to matter. min-of-3 walls make the 5 %
    // tolerance about dispatch overhead, not scheduler noise.
    let fallback_engaged = parallel.eval_stats.serial_fallbacks > 0;
    assert!(
        speedup >= 0.95,
        "parallel dispatch thrashed a small workload: x{speedup:.2} < x0.95 \
         ({} of {} batches fell back to serial)",
        parallel.eval_stats.serial_fallbacks,
        parallel.eval_stats.batches,
    );
    println!(
        "eval_engine/explore: {wall_1:.3} s at 1 thread, {wall_n:.3} s at {par} threads \
         (speedup x{speedup:.2} >= x0.95, cache hit rate {:.1}%, fallback engaged: \
         {fallback_engaged}, fronts identical)",
        hit_rate * 100.0
    );

    let out_dir = std::env::var("MCMAP_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    // Record the dispatcher's decision so a speedup near 1.0 is legible as
    // "fallback engaged" (or "pool had no helpers"), not "engine regressed".
    let json = format!(
        "{{\"benchmark\":\"dt-med\",\"population\":{pop},\"generations\":{gens},\
         \"threads\":{par},\"wall_secs_1\":{wall_1:.6},\"wall_secs_n\":{wall_n:.6},\
         \"speedup\":{speedup:.3},\"speedup_floor\":0.95,\
         \"serial_fallbacks\":{},\"fallback_engaged\":{fallback_engaged},\
         \"pool_capacity\":{},\"fronts_identical\":true,\
         \"serial\":{},\"parallel\":{}}}\n",
        parallel.eval_stats.serial_fallbacks,
        mcmap_eval::pool_capacity(),
        serial.eval_stats.to_json(),
        parallel.eval_stats.to_json()
    );
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = format!("{out_dir}/BENCH_eval.json");
    mcmap_resilience::atomic_write(std::path::Path::new(&path), json.as_bytes())
        .expect("write BENCH_eval.json");
    println!("eval_engine/explore: wrote {path}");

    // One criterion-timed leg so the harness also reports a per-iteration
    // figure (small budget: the explores above are the real measurement).
    let mut group = c.benchmark_group("eval_engine");
    group.sample_size(10);
    group.bench_function("explore/dt_med_16x3", |bench| {
        bench.iter(|| explore(&b.apps, &b.arch, dse_cfg(&b, par, 16, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_engine_micro, bench_explore_macro);
criterion_main!(benches);
