//! Criterion bench for the Table 2 estimators on the Cruise benchmark:
//! measures the cost of one Adhoc trace, one Proposed (Algorithm 1) run,
//! and one Naive run on a fixed sample design.

use criterion::{criterion_group, criterion_main, Criterion};
use mcmap_bench::sample_designs;
use mcmap_benchmarks::cruise;
use mcmap_core::{adhoc_analysis, analyze, analyze_naive};

fn bench_table2(c: &mut Criterion) {
    let b = cruise();
    let designs = sample_designs(&b, 1, 11);
    let d = &designs[0];

    let mut group = c.benchmark_group("table2");
    group.bench_function("proposed_algorithm1", |bench| {
        bench.iter(|| analyze(&d.hsys, &b.arch, &d.mapping, &b.policies, &d.dropped))
    });
    group.bench_function("naive", |bench| {
        bench.iter(|| analyze_naive(&d.hsys, &b.arch, &d.mapping, &b.policies, &d.dropped))
    });
    group.bench_function("adhoc_trace", |bench| {
        bench.iter(|| adhoc_analysis(&d.hsys, &b.arch, &d.mapping, &b.policies, &d.dropped))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
