//! Ablation: the pessimism gap between the Naive analysis and Algorithm 1
//! as the dropped-application share grows, on the contended Table 2 Cruise
//! design (droppable pipelines sharing processors with the hardened control
//! chains — isolated designs show no gap by construction). The gap values
//! are printed at start-up so `cargo bench` output records them; the timing
//! comparison shows what the extra scenario enumeration costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcmap_benchmarks::cruise;
use mcmap_core::{analyze, analyze_naive};
use mcmap_hardening::{harden, HardenedSystem, HardeningPlan, TaskHardening};
use mcmap_model::{AppId, ProcId};
use mcmap_sched::Mapping;

/// The Table 2 "Mapping 1" design: heads re-executed, nav's tail pressing
/// on the speed chain, sensor-side droppables pressing on the brake chain.
fn contended_design() -> (mcmap_benchmarks::Benchmark, HardenedSystem, Mapping) {
    let b = cruise();
    let mut plan = HardeningPlan::unhardened(&b.apps);
    plan.set_by_flat_index(0, TaskHardening::reexecution(1));
    plan.set_by_flat_index(5, TaskHardening::reexecution(1));
    let hsys = harden(&b.apps, &plan, &b.arch).expect("static design");
    let mapping = Mapping::new(
        &hsys,
        &b.arch,
        [0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 0, 0, 3, 3, 3, 1, 1]
            .into_iter()
            .map(ProcId::new)
            .collect(),
    )
    .expect("static design")
    .with_priorities(vec![0, 3, 4, 5, 6, 2, 3, 4, 0, 1, 1, 2, 0, 1, 2, 0, 1]);
    (b, hsys, mapping)
}

fn bench_pessimism(c: &mut Criterion) {
    let (b, hsys, mapping) = contended_design();
    // Grow the dropped set one application at a time.
    let drop_sets: Vec<(&str, Vec<AppId>)> = vec![
        ("none", vec![]),
        ("nav", vec![AppId::new(2)]),
        ("nav+info", vec![AppId::new(2), AppId::new(3)]),
        ("all", vec![AppId::new(2), AppId::new(3), AppId::new(4)]),
    ];

    let mut group = c.benchmark_group("ablation_pessimism");
    for (label, dropped) in &drop_sets {
        let mc = analyze(&hsys, &b.arch, &mapping, &b.policies, dropped);
        let naive = analyze_naive(&hsys, &b.arch, &mapping, &b.policies, dropped);
        let gap: u64 = b
            .apps
            .nondroppable_apps()
            .map(|a| {
                naive
                    .app_wcrt(&hsys, a)
                    .saturating_sub(mc.app_wcrt(&hsys, a, dropped))
                    .ticks()
            })
            .sum();
        println!(
            "dropped = {label}: cumulative naive-vs-proposed gap on critical apps = {gap} ticks \
             ({} scenarios, {} backend calls)",
            mc.scenarios, mc.backend_calls
        );

        group.bench_with_input(BenchmarkId::new("proposed", label), label, |bench, _| {
            bench.iter(|| analyze(&hsys, &b.arch, &mapping, &b.policies, dropped))
        });
        group.bench_with_input(BenchmarkId::new("naive", label), label, |bench, _| {
            bench.iter(|| analyze_naive(&hsys, &b.arch, &mapping, &b.policies, dropped))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pessimism);
criterion_main!(benches);
