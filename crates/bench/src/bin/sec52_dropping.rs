//! **§5.2 — Effect of task dropping.** For every benchmark:
//!
//! * optimized expected power with vs. without task dropping (the paper
//!   reports +14.66 % / +16.16 % / +18.52 % without dropping on DT-med /
//!   DT-large / Cruise);
//! * the ratio of explored solutions that are infeasible without dropping
//!   but feasible with it (0.02 % Synth-1, 0.685 % Synth-2, 29.00 % DT-med,
//!   22.49 % DT-large, 99.98 % Cruise in the paper);
//! * the share of re-execution among the applied hardening techniques
//!   (44.29 % Synth-1; 87.03 % DT-med, 98.66 % DT-large, 83.23 % Cruise).
//!
//! Budget: `MCMAP_POP` (default 60) × `MCMAP_GENS` (default 150)
//! generations, seed `MCMAP_SEED` (default 8); the paper used 100 × 5000.

use mcmap_bench::{env_u64, env_usize, hook_interrupts, EvalKnobs, INTERRUPTED_EXIT};
use mcmap_benchmarks::all_benchmarks;
use mcmap_core::{explore, DseConfig, ObjectiveMode};
use mcmap_ga::GaConfig;
use mcmap_resilience::stop_requested;
use std::process::ExitCode;

fn main() -> ExitCode {
    let pop = env_usize("MCMAP_POP", 60);
    let gens = env_usize("MCMAP_GENS", 150);
    let seed = env_u64("MCMAP_SEED", 8);
    let knobs = EvalKnobs::parse();
    let obs = knobs.recorder();

    println!("Section 5.2: effect of task dropping (budget {pop}x{gens}, seed {seed})\n");
    println!(
        "{:10} | {:>11} {:>11} {:>8} | {:>8} | {:>8}",
        "benchmark", "P(with)", "P(without)", "extra%", "rescue%", "reexec%"
    );
    println!("{}", "-".repeat(70));

    // `--fleet <preset>` narrows the sweep to that one generated workload.
    let benchmarks = match knobs.fleet_config() {
        Some(cfg) => vec![mcmap_benchmarks::fleet(&cfg, 42)],
        None => all_benchmarks(42),
    };
    for b in benchmarks {
        let mut base = DseConfig {
            ga: GaConfig {
                population: pop,
                generations: gens,
                seed,
                ..GaConfig::default()
            },
            objectives: ObjectiveMode::Power,
            policies: Some(b.policies.clone()),
            repair_iters: 80,
            ..DseConfig::default()
        };
        knobs.apply(&mut base);
        hook_interrupts(&mut base);
        base.obs = obs.clone();

        let with = explore(
            &b.apps,
            &b.arch,
            DseConfig {
                allow_dropping: true,
                audit: true,
                ..base.clone()
            },
        );
        if with.interrupted {
            println!("\n(interrupted mid-benchmark — rows above are complete)");
            knobs.report_obs("sec52", &obs);
            return ExitCode::from(INTERRUPTED_EXIT);
        }
        let without = explore(
            &b.apps,
            &b.arch,
            DseConfig {
                allow_dropping: false,
                audit: false,
                ..base
            },
        );
        if without.interrupted {
            println!("\n(interrupted mid-benchmark — rows above are complete)");
            knobs.report_obs("sec52", &obs);
            return ExitCode::from(INTERRUPTED_EXIT);
        }
        knobs.report(&format!("{}/with-dropping", b.name), &with.eval_stats);
        knobs.report(&format!("{}/no-dropping", b.name), &without.eval_stats);
        knobs.report_audit(&format!("{}/with-dropping", b.name), &with.audit);

        let pw = with.best_power();
        let pwo = without.best_power();
        let extra = match (pw, pwo) {
            (Some(w), Some(wo)) => format!("{:+.2}", (wo / w - 1.0) * 100.0),
            _ => "-".to_string(),
        };
        println!(
            "{:10} | {:>11} {:>11} {:>8} | {:>8.3} | {:>8.2}",
            b.name,
            pw.map_or("-".into(), |p| format!("{p:.2}")),
            pwo.map_or("-".into(), |p| format!("{p:.2}")),
            extra,
            with.audit.rescue_ratio() * 100.0,
            with.audit.reexecution_share() * 100.0,
        );
        if stop_requested() {
            println!("\n(interrupted — rows above are complete, remaining benchmarks skipped)");
            knobs.report_obs("sec52", &obs);
            return ExitCode::from(INTERRUPTED_EXIT);
        }
    }
    println!("\nrescue% = explored candidates infeasible without dropping but feasible with their");
    println!("decoded dropped set; reexec% = share of re-execution among applied hardenings.");
    knobs.report_obs("sec52", &obs);
    ExitCode::SUCCESS
}
