//! **Table 2** — WCRT of the two critical applications in the *Cruise*
//! example, for three sample mappings, under four estimators:
//!
//! * `Adhoc`    — worst-case scheduling trace (critical from t = 0, maximal
//!   re-executions, dropped set absent) — *not* a safe bound;
//! * `WC-Sim`   — maximum over seeded Monte-Carlo failure profiles
//!   (10 000 in the paper; `MCMAP_SIM_RUNS` here, default 2 000);
//! * `Proposed` — Algorithm 1 (this library's core contribution);
//! * `Naive`    — all droppable tasks statically `[0, wcet]`, all
//!   re-executables statically at Eq. (1).
//!
//! The three sample mappings mirror the character of the paper's: the
//! critical chains are hardened by re-executing their head tasks, and the
//! deep navigation pipeline shares processors (and outranks, as a high-rate
//! or latency-sensitive service would) parts of the control chains — so the
//! chronology-aware analysis can prove its tail certainly dropped while the
//! naive analysis keeps paying for it.
//!
//! Claims verified: `Proposed ≥ WC-Sim`, `Proposed ≥ Adhoc` (safety), and
//! `Naive ≥ Proposed` (pessimism), with strict gaps on contended mappings.

use mcmap_bench::{env_u64, env_usize, fmt_time, EvalKnobs};
use mcmap_benchmarks::{cruise, Benchmark};
use mcmap_core::{adhoc_analysis, analyze, analyze_naive};
use mcmap_eval::parallel_map_caught;
use mcmap_hardening::{harden, HardenedSystem, HardeningPlan, TaskHardening};
use mcmap_model::{AppId, ProcId, Time};
use mcmap_sched::Mapping;
use mcmap_sim::{monte_carlo, MonteCarloConfig, SimConfig};
use std::process::ExitCode;

struct Design {
    hsys: HardenedSystem,
    mapping: Mapping,
    dropped: Vec<AppId>,
}

/// Builds one sample design: re-execute the critical chain heads with
/// degree `k`, bind tasks per `placement` (flat-index order), assign the
/// given priorities, drop all droppable applications in critical mode.
fn design(b: &Benchmark, k: u8, placement: Vec<usize>, priorities: Vec<u32>) -> Design {
    let mut plan = HardeningPlan::unhardened(&b.apps);
    // Heads: wheel_pulse (flat 0) and brake_pedal (flat 5).
    plan.set_by_flat_index(0, TaskHardening::reexecution(k));
    plan.set_by_flat_index(5, TaskHardening::reexecution(k));
    let hsys = harden(&b.apps, &plan, &b.arch).expect("static design");
    let mapping = Mapping::new(
        &hsys,
        &b.arch,
        placement.into_iter().map(ProcId::new).collect(),
    )
    .expect("static design")
    .with_priorities(priorities);
    let dropped = b.apps.droppable_apps().collect();
    Design {
        hsys,
        mapping,
        dropped,
    }
}

fn main() -> ExitCode {
    let b = cruise();
    let seed = env_u64("MCMAP_SEED", 11);
    let sim_runs = env_usize("MCMAP_SIM_RUNS", 2_000);
    let knobs = EvalKnobs::parse();

    // Flat indices: speed-control 0–4 (wheel, switch, est, law, throttle),
    // brake-monitor 5–7 (pedal, logic, act), nav 8–11 (gps, map, route,
    // guidance), infotainment 12–14, sensor-log 15–16.
    let designs = [
        // Mapping 1: nav's tail (route, guidance) shares p0 with the speed
        // chain and outranks everything but the hardened head; sensor-log
        // shares p1 with the brake chain.
        design(
            &b,
            1,
            vec![0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 0, 0, 3, 3, 3, 1, 1],
            vec![0, 3, 4, 5, 6, 2, 3, 4, 0, 1, 1, 2, 0, 1, 2, 0, 1],
        ),
        // Mapping 2: the contention sides are swapped — nav's tail presses
        // on the brake chain (p1), sensor-log on the speed chain (p0).
        design(
            &b,
            1,
            vec![0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 1, 1, 3, 3, 3, 0, 0],
            vec![0, 3, 4, 5, 6, 0, 3, 4, 0, 1, 1, 2, 0, 1, 2, 1, 2],
        ),
        // Mapping 3: deeper re-execution (k = 2) on the heads and nav's
        // tail pressing on the speed chain.
        design(
            &b,
            2,
            vec![0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 0, 0, 3, 3, 3, 1, 1],
            vec![0, 3, 4, 5, 6, 2, 3, 4, 0, 1, 1, 2, 0, 1, 2, 0, 1],
        ),
    ];

    let crit: Vec<_> = b.apps.nondroppable_apps().collect();
    println!("Table 2: WCRT [ticks] of the two critical applications in Cruise");
    println!(
        "(columns per mapping: sc = {}, bm = {})\n",
        b.apps.app(crit[0]).name(),
        b.apps.app(crit[1]).name()
    );

    let mut rows: Vec<(String, Vec<String>)> = ["Adhoc", "WC-Sim", "Proposed", "Naive"]
        .iter()
        .map(|n| (n.to_string(), Vec::new()))
        .collect();

    // The three mappings are independent, so the four estimators run for
    // each of them on the shared evaluation worker pool; the results are
    // gathered in design order, keeping the table deterministic.
    let obs = knobs.recorder();
    let span = obs.span(
        "table2.estimators",
        &[
            ("designs", mcmap_obs::Value::from(designs.len())),
            ("sim_runs", mcmap_obs::Value::from(sim_runs)),
            ("seed", mcmap_obs::Value::from(seed)),
        ],
    );
    let indexed: Vec<(usize, &Design)> = designs.iter().enumerate().collect();
    let t0 = std::time::Instant::now();
    let caught = parallel_map_caught(&indexed, knobs.threads, |&(i, d)| {
        let adhoc = adhoc_analysis(&d.hsys, &b.arch, &d.mapping, &b.policies, &d.dropped);
        let mc = analyze(&d.hsys, &b.arch, &d.mapping, &b.policies, &d.dropped);
        let naive = analyze_naive(&d.hsys, &b.arch, &d.mapping, &b.policies, &d.dropped);
        let wcsim = monte_carlo(
            &d.hsys,
            &b.arch,
            &d.mapping,
            &b.policies,
            &MonteCarloConfig {
                runs: sim_runs,
                seed: seed.wrapping_mul(31).wrapping_add(i as u64),
                boost: 1e6,
                sim: SimConfig::worst_case(d.dropped.clone()),
            },
        );
        crit.iter()
            .map(|&app| {
                [
                    adhoc[app.index()],
                    wcsim.app_wcrt[app.index()],
                    mc.app_wcrt(&d.hsys, app, &d.dropped),
                    naive.app_wcrt(&d.hsys, app),
                ]
            })
            .collect()
    });
    let wall = t0.elapsed();
    span.end();
    // A panicking estimator takes down only its design, not the process:
    // every surviving column is still reported before the failure exit.
    let mut per_design: Vec<Vec<[Time; 4]>> = Vec::with_capacity(caught.len());
    let mut failed = false;
    for (i, outcome) in caught.into_iter().enumerate() {
        match outcome {
            Ok(cells) => per_design.push(cells),
            Err(payload) => {
                failed = true;
                eprintln!(
                    "table2: mapping {} panicked during analysis: {}",
                    i + 1,
                    mcmap_resilience::panic_message(payload.as_ref())
                );
            }
        }
    }
    if failed {
        eprintln!(
            "table2: {} of {} mappings analyzed before the failure.",
            per_design.len(),
            designs.len()
        );
        knobs.report_wall("table2", designs.len(), wall);
        knobs.report_obs("table2", &obs);
        return ExitCode::FAILURE;
    }
    // Per-design bound counters, emitted in design order on the driver
    // thread: the canonical trace is identical for any --threads.
    for (i, cells) in per_design.iter().enumerate() {
        for (c, [adhoc, wcsim, proposed, naive]) in cells.iter().enumerate() {
            obs.counter(
                "table2.design",
                &[
                    ("mapping", mcmap_obs::Value::from(i + 1)),
                    ("app", mcmap_obs::Value::from(c)),
                    ("adhoc", mcmap_obs::Value::from(adhoc.ticks())),
                    ("wcsim", mcmap_obs::Value::from(wcsim.ticks())),
                    ("proposed", mcmap_obs::Value::from(proposed.ticks())),
                    ("naive", mcmap_obs::Value::from(naive.ticks())),
                ],
            );
        }
    }

    for (i, cells) in per_design.iter().enumerate() {
        for [adhoc, wcsim, proposed, naive] in cells {
            rows[0].1.push(fmt_time(*adhoc));
            rows[1].1.push(fmt_time(*wcsim));
            rows[2].1.push(fmt_time(*proposed));
            rows[3].1.push(fmt_time(*naive));

            // The paper's safety orderings.
            assert!(
                wcsim <= proposed,
                "mapping {i}: WC-Sim exceeded the proposed bound"
            );
            assert!(
                adhoc <= proposed,
                "mapping {i}: the adhoc trace exceeded the proposed bound"
            );
            assert!(
                naive >= proposed,
                "mapping {i}: naive must be at least as pessimistic"
            );
        }
    }

    println!(
        "{:10} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "", "M1/sc", "M1/bm", "M2/sc", "M2/bm", "M3/sc", "M3/bm"
    );
    println!("{}", "-".repeat(70));
    for (name, cells) in rows {
        println!(
            "{:10} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
            name, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
        );
    }
    println!(
        "\nVerified: Proposed ≥ WC-Sim ({sim_runs} profiles), Proposed ≥ Adhoc, Naive ≥ Proposed."
    );
    knobs.report_wall("table2", designs.len(), wall);
    knobs.report_obs("table2", &obs);
    ExitCode::SUCCESS
}
