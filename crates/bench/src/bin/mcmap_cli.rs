//! `mcmap-cli` — command-line front end over the library: sample designs,
//! analyze, simulate, explore, and export the built-in benchmarks.
//!
//! ```text
//! mcmap_cli list
//! mcmap_cli analyze  <benchmark> [seed] [--json]  # sample a design, print slack
//! mcmap_cli simulate <benchmark> [runs]      # Monte-Carlo vs. the bound
//! mcmap_cli gantt    <benchmark> [seed]      # ASCII schedule of one hyperperiod
//! mcmap_cli dot      <benchmark>             # GraphViz of the application set
//! mcmap_cli dse      <benchmark> [pop gens] [--threads N] [--cache-cap N]
//!                                [--eval-stats [json]] [--trace <path.jsonl>]
//!                                [--obs-summary [json]] [--gen-stats [json]]
//!                                [--audit [json]] [--checkpoint <path>]
//!                                [--resume <path>] [--eval-retries N]
//!                                [--scenario-threads N] [--no-warm-start]
//!                                [--no-prune] [--no-delta]
//!                                                         # power/service exploration
//! mcmap_cli validate <benchmark> [pop gens] [--profiles N] [--seed N]
//!                                [--boost F] [--threads N] [--json]
//!                                [--portfolio <path>] [--checkpoint <path>]
//!                                [--resume]         # Monte-Carlo bound validation
//! mcmap_cli lint     <benchmark> [--json] [--inject cycle|relbound|inverted]
//! mcmap_cli lint     <benchmark> --interference [seed] [--json|--dot]
//! mcmap_cli lint     --explain [MCxxxx]      # one code's card, or all codes
//! mcmap_cli obs      <trace.jsonl> [--json]  # profile a recorded trace
//! mcmap_cli obs      query <trace> [--name S] [--kind K] [--field K[=V]]
//!                    [--generation N] [--json]
//! mcmap_cli obs      critical-path <trace> [--json]
//! mcmap_cli obs      flame <trace>           # folded stacks for flamegraphs
//! mcmap_cli obs      diff <a.jsonl> <b.jsonl> [--json]
//! mcmap_cli serve    [--addr H:P] [--jobs-dir D] [--workers N] [--slice N]
//!                    [--cache-cap N] [--job-threads N]
//!                                            # multi-tenant DSE job server
//! mcmap_cli client   <addr> submit <benchmark> [pop gens] [--seed N]
//! mcmap_cli client   <addr> <status|cancel|resume|front|stream|wait> <id>
//! mcmap_cli client   <addr> <list|shutdown>
//! mcmap_cli client   <addr> stats [--json]   # aligned table, or raw frame
//! mcmap_cli client   <addr> metrics [--prometheus]
//! ```
//!
//! Benchmarks: `cruise`, `dt-med`, `dt-large`, `synth1`, `synth2`, plus
//! the generated fleet presets `fleet-small` / `fleet-med` / `fleet-large`
//! (500–5000-task layered-DAG sets on 16–64-PE interference-aware
//! platforms; a fleet name also deepens the explored hardening space to
//! the preset's re-execution/replica bounds). The experiment binaries
//! accept the same presets through `--fleet <preset>` / `MCMAP_FLEET`.
//!
//! `dse` runs the candidate-evaluation engine (`mcmap-eval`) underneath:
//! `--threads` spreads each generation across a worker pool (0 = one per
//! core; results are bit-identical for any thread count), `--cache-cap`
//! bounds the memoization cache (0 disables it), and `--eval-stats`
//! prints the engine's instrumentation (cache hit rate, per-phase nanos,
//! genomes/sec) as text or, with `--eval-stats json`, as JSON, plus the
//! WCRT-analysis effort counters (backend calls, fixed-point iterations,
//! scenarios pruned, warm-start savings). The analysis fast path is on by
//! default and bit-identical to the cold reference; `--no-warm-start` /
//! `--no-prune` switch its two halves off for A/B timing and
//! `--scenario-threads N` fans the per-candidate scenario analyses out
//! over N workers.
//!
//! `dse` can additionally trace itself through `mcmap-obs`: `--trace`
//! streams every event (spans, counters, per-generation telemetry) to a
//! JSONL file, `--obs-summary` prints the aggregated profile, `--gen-stats`
//! prints the per-generation convergence table, and `--audit` prints the
//! §5.2 solution-audit snapshot. `obs` renders a recorded JSONL trace into
//! the same profile report offline. Tracing never changes results: the
//! canonical event stream is deterministic for any `--threads` or
//! `--cache-cap`.
//!
//! `dse` is resilient (`mcmap-resilience`): `--checkpoint` writes the full
//! driver state atomically after every generation, `--resume` restarts from
//! such a checkpoint (falling back to its `.bak` when the primary is a torn
//! write) and reproduces the uninterrupted run bit-identically — same Pareto
//! front, same canonical trace. SIGINT/SIGTERM stop the run cleanly at the
//! next generation boundary (checkpoint written, trace flushed, partial
//! results printed, exit code 130). `--eval-retries` bounds how often a
//! panicking candidate evaluation is retried before the candidate degrades
//! to an infeasible placeholder instead of aborting the exploration.
//!
//! `lint` runs the `mcmap-lint` static analyzer over the benchmark's model
//! and prints the structured `MC0xxx` diagnostics (text or JSON); the
//! `--inject` flag plants a known defect first, which demonstrates the codes
//! and doubles as an end-to-end check of the DSE pre-flight (the same codes
//! that make `lint` exit non-zero also make `dse` refuse the input).
//! `lint --interference` renders the shared-PE interference graph of a
//! repaired sample chromosome — the structure that bounds the genome-delta
//! fast path's may-affect sets — and `lint --explain MCxxxx` prints the
//! cause / example / fix card of any diagnostic code (with no code, it
//! lists every known code with its one-line summary).
//!
//! `serve` turns the same exploration into a long-running multi-tenant job
//! service (`mcmap-serve`): tenants submit specs over a length-framed JSON
//! TCP protocol, a bounded worker pool timeslices the jobs fairly at
//! generation boundaries (each slice checkpointed, so killing the server —
//! even SIGKILL — loses at most the slice in flight and every job resumes
//! bit-identically), and identical submissions share a server-wide
//! evaluation cache. `client` is the matching command-line driver: `wait`
//! exits 0 only when the job completes, and `stream` prints one line per
//! finished generation.

use mcmap_bench::{sample_designs, EvalKnobs, SampleDesign};
use mcmap_benchmarks::Benchmark;
use mcmap_core::{
    analyze, explore_checked, read_portfolio, repair_reliability, repair_structure,
    write_portfolio, AnalysisStats, DseConfig, GenomeSpace, MappingProblem, ObjectiveMode,
    Portfolio,
};
use mcmap_ga::GaConfig;
use mcmap_model::Time;
use mcmap_runtime::{run_campaign, CampaignConfig};
use mcmap_sim::{monte_carlo, MonteCarloConfig, NoFaults, SimConfig, Simulator, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn benchmark(name: &str) -> Option<Benchmark> {
    match name {
        "cruise" => Some(mcmap_benchmarks::cruise()),
        "dt-med" => Some(mcmap_benchmarks::dt_med()),
        "dt-large" => Some(mcmap_benchmarks::dt_large()),
        "synth1" => Some(mcmap_benchmarks::synth1(42)),
        "synth2" => Some(mcmap_benchmarks::synth2(42)),
        // The fleet presets are generated workloads; like synth1/2 they
        // use a fixed seed here so every invocation sees the same system.
        _ => mcmap_benchmarks::fleet_benchmark(name, 42),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mcmap_cli <list|analyze|simulate|gantt|dot|dse|lint|obs|serve|client> [args…]\n\
         benchmarks: cruise, dt-med, dt-large, synth1, synth2,\n\
         \u{20}           fleet-small, fleet-med, fleet-large\n\
         dse flags:  --threads <n>, --cache-cap <n>, --eval-stats [json],\n\
         \u{20}           --trace <path.jsonl>, --obs-summary [json], --gen-stats [json],\n\
         \u{20}           --audit [json], --checkpoint <path>, --resume <path>,\n\
         \u{20}           --eval-retries <n>, --scenario-threads <n>,\n\
         \u{20}           --no-warm-start, --no-prune, --no-delta, --validate [n]\n\
         analyze:    mcmap_cli analyze <benchmark> [seed] [--json]\n\
         validate:   mcmap_cli validate <benchmark> [pop gens] [--profiles <n>]\n\
         \u{20}           [--seed <n>] [--boost <f>] [--threads <n>] [--json]\n\
         \u{20}           [--portfolio <path>] [--checkpoint <path>] [--resume]\n\
         lint flags: --json, --inject <cycle|relbound|inverted>,\n\
         \u{20}           --interference [seed] [--json|--dot], --explain [MCxxxx]\n\
         obs:        mcmap_cli obs <trace.jsonl> [--json]\n\
         \u{20}           | obs query <trace> [--name <s>] [--kind <k>] [--field <k[=v]>]\n\
         \u{20}             [--generation <n>] [--json]\n\
         \u{20}           | obs critical-path <trace> [--json] | obs flame <trace>\n\
         \u{20}           | obs diff <a.jsonl> <b.jsonl> [--json]\n\
         serve:      mcmap_cli serve [--addr <host:port>] [--jobs-dir <dir>]\n\
         \u{20}           [--workers <n>] [--slice <n>] [--cache-cap <n>] [--job-threads <n>]\n\
         client:     mcmap_cli client <addr> submit <benchmark> [pop gens] [--seed <n>]\n\
         \u{20}           | <status|cancel|resume|front|stream|wait> <id> | list | shutdown\n\
         \u{20}           | stats [--json] | status <id> [--json] | metrics [--prometheus]"
    );
    ExitCode::FAILURE
}

fn sampled(b: &Benchmark, seed: u64) -> Option<SampleDesign> {
    sample_designs(b, 1, seed).into_iter().next()
}

fn cmd_list() -> ExitCode {
    for name in [
        "cruise",
        "dt-med",
        "dt-large",
        "synth1",
        "synth2",
        "fleet-small",
        "fleet-med",
        "fleet-large",
    ] {
        let b = benchmark(name).expect("known name");
        println!(
            "{name:9} {:2} apps ({} critical), {:2} tasks, {} PEs, hyperperiod {}",
            b.apps.num_apps(),
            b.apps.nondroppable_apps().count(),
            b.apps.num_tasks(),
            b.arch.num_processors(),
            b.apps.hyperperiod()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_analyze(b: &Benchmark, seed: u64, json: bool) -> ExitCode {
    let Some(d) = sampled(b, seed) else {
        eprintln!("could not sample a converging design (try another seed)");
        return ExitCode::FAILURE;
    };
    let t_analysis = std::time::Instant::now();
    let mc = analyze(&d.hsys, &b.arch, &d.mapping, &b.policies, &d.dropped);
    let analysis_nanos = t_analysis.elapsed().as_nanos() as u64;
    if json {
        // One object per run, with the same `analysis` keys as the DSE's
        // `--eval-stats json` report (a single candidate, analyzed cold —
        // the delta counters exist but are necessarily zero here).
        let stats = AnalysisStats {
            candidates: 1,
            scenarios: mc.scenarios as u64,
            backend_calls: mc.backend_calls as u64,
            fixedpoint_iters: mc.fixedpoint_iters as u64,
            scenarios_pruned: mc.scenarios_pruned as u64,
            warm_iters_saved: mc.warm_iters_saved as u64,
            analysis_nanos,
            ..AnalysisStats::default()
        };
        let apps: Vec<String> = b
            .apps
            .apps()
            .map(|(id, app)| {
                let wcrt = mc.app_wcrt(&d.hsys, id, &d.dropped);
                format!(
                    "{{\"name\":\"{}\",\"wcrt\":{},\"deadline\":{},\"schedulable\":{}}}",
                    app.name(),
                    if wcrt == Time::MAX {
                        "null".to_string()
                    } else {
                        wcrt.ticks().to_string()
                    },
                    app.deadline().ticks(),
                    wcrt <= app.deadline(),
                )
            })
            .collect();
        let dropped: Vec<String> = d
            .dropped
            .iter()
            .map(|&a| format!("\"{}\"", b.apps.app(a).name()))
            .collect();
        println!(
            "{{\"seed\":{seed},\"schedulable\":{},\"dropped\":[{}],\
             \"apps\":[{}],\"analysis\":{}}}",
            mc.schedulable(&d.hsys, &d.dropped),
            dropped.join(","),
            apps.join(","),
            stats.to_json(),
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "sampled design (seed {seed}): {} hardened tasks, T_d = {:?}\n",
        d.hsys.num_tasks(),
        d.dropped
            .iter()
            .map(|&a| b.apps.app(a).name())
            .collect::<Vec<_>>()
    );
    println!(
        "{:16} {:>9} {:>9} {:>9}  binding state",
        "application", "wcrt", "deadline", "slack"
    );
    for (id, app) in b.apps.apps() {
        let wcrt = mc.app_wcrt(&d.hsys, id, &d.dropped);
        let binding = mc
            .binding_trigger(&d.hsys, id)
            .map(|t| format!("fault in {}", d.hsys.task(t).name))
            .unwrap_or_else(|| "fault-free".to_string());
        println!(
            "{:16} {:>9} {:>9} {:>9}  {}",
            app.name(),
            wcrt.to_string(),
            app.deadline().to_string(),
            app.deadline().saturating_sub(wcrt).to_string(),
            binding
        );
    }
    println!(
        "\nschedulable: {} ({} scenarios, {} backend calls, {} pruned, \
         {} warm iterations saved)",
        mc.schedulable(&d.hsys, &d.dropped),
        mc.scenarios,
        mc.backend_calls,
        mc.scenarios_pruned,
        mc.warm_iters_saved
    );
    ExitCode::SUCCESS
}

fn cmd_simulate(b: &Benchmark, runs: usize) -> ExitCode {
    let Some(d) = sampled(b, 11) else {
        eprintln!("could not sample a converging design");
        return ExitCode::FAILURE;
    };
    let mc = analyze(&d.hsys, &b.arch, &d.mapping, &b.policies, &d.dropped);
    let result = monte_carlo(
        &d.hsys,
        &b.arch,
        &d.mapping,
        &b.policies,
        &MonteCarloConfig {
            runs,
            boost: 1e5,
            sim: SimConfig::worst_case(d.dropped.clone()),
            ..MonteCarloConfig::default()
        },
    );
    println!(
        "{runs} boosted failure profiles; {} critical entries\n",
        result.critical_entries
    );
    println!(
        "{:16} {:>9} {:>9} {:>9} {:>9}",
        "application", "median", "p99", "max-sim", "bound"
    );
    for id in b.apps.app_ids() {
        println!(
            "{:16} {:>9} {:>9} {:>9} {:>9}",
            b.apps.app(id).name(),
            result.median(id).to_string(),
            result.percentile(id, 0.99).to_string(),
            result.app_wcrt[id.index()].to_string(),
            mc.app_wcrt(&d.hsys, id, &d.dropped).to_string(),
        );
    }
    ExitCode::SUCCESS
}

fn cmd_gantt(b: &Benchmark, seed: u64) -> ExitCode {
    let Some(d) = sampled(b, seed) else {
        eprintln!("could not sample a converging design");
        return ExitCode::FAILURE;
    };
    let sim = Simulator::new(&d.hsys, &b.arch, &d.mapping, b.policies.clone());
    let (_, trace) = sim.run_traced(&SimConfig::default(), &mut NoFaults);
    let names = Trace::name_table(&d.hsys, d.mapping.placement());
    let horizon = Time::from_ticks(b.apps.hyperperiod().ticks().min(20_000));
    print!("{}", trace.render_gantt(&names, horizon, 100));
    println!("\n(one fault-free hyperperiod, horizon {horizon}, 100 columns)");
    ExitCode::SUCCESS
}

/// `lint --explain MCxxxx`: prints the cause / example / fix card of one
/// diagnostic code (no benchmark needed).
fn cmd_explain(code: &str) -> ExitCode {
    match mcmap_lint::code_doc(code) {
        Some(doc) => {
            print!("{}", doc.render_text());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "lint: unknown code {code:?}; known codes are MC0001–MC0015 (model), \
                 MC0101–MC0113 (hardening/genome), MC0120–MC0122 (interference) — \
                 see `mcmap_cli lint <benchmark>` or the README code table"
            );
            ExitCode::FAILURE
        }
    }
}

/// `lint --explain` with no code: lists every diagnostic code the analyzer
/// can emit with its one-line summary.
fn cmd_explain_all() -> ExitCode {
    for doc in mcmap_lint::all_code_docs() {
        println!("{}: {}", doc.code, doc.summary);
    }
    ExitCode::SUCCESS
}

/// `serve`: runs the multi-tenant DSE job server until SIGINT/SIGTERM or a
/// client `shutdown` verb, then drains — running slices stop at their next
/// checkpointed generation boundary, so every unfinished job resumes
/// bit-identically.
fn cmd_serve(tail: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:7421".to_string();
    let mut cfg = mcmap_serve::ServeConfig::default();
    let mut i = 0;
    while i < tail.len() {
        let value = tail.get(i + 1);
        let parsed = value.and_then(|v| v.parse::<usize>().ok());
        match tail[i].as_str() {
            "--addr" => match value {
                Some(v) => addr = v.clone(),
                None => return usage(),
            },
            "--jobs-dir" => match value {
                Some(v) => cfg.jobs_dir = std::path::PathBuf::from(v),
                None => return usage(),
            },
            "--workers" => match parsed {
                Some(n) => cfg.workers = n,
                None => return usage(),
            },
            "--slice" => match parsed {
                Some(n) if n > 0 => cfg.slice = n,
                _ => return usage(),
            },
            "--cache-cap" => match parsed {
                Some(n) => cfg.cache_cap = n,
                None => return usage(),
            },
            "--job-threads" => match parsed {
                Some(n) => cfg.job_threads = n,
                None => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }
    let jobs_dir = cfg.jobs_dir.clone();
    let server = match mcmap_serve::Server::bind(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot start on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = server.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    // Bridge SIGINT/SIGTERM into the server's shutdown latch so a plain
    // `kill` drains gracefully (checkpoints written at the next boundary).
    let shutdown = server.shutdown_handle();
    let signal = mcmap_resilience::install_stop_flag();
    std::thread::spawn(move || loop {
        if signal.load(std::sync::atomic::Ordering::SeqCst) {
            shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
            return;
        }
        if shutdown.load(std::sync::atomic::Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    println!(
        "mcmap-serve listening on {local} ({} workers, jobs in {})",
        server.registry().worker_count(),
        jobs_dir.display(),
    );
    server.run();
    println!("serve: drained — unfinished jobs are checkpointed and resumable");
    ExitCode::SUCCESS
}

/// `client`: one verb against a running server.
fn cmd_client(tail: &[String]) -> ExitCode {
    let Some(addr) = tail.first() else {
        return usage();
    };
    let Some(verb) = tail.get(1).map(String::as_str) else {
        return usage();
    };
    let mut c = match mcmap_serve::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("client: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fail = |e: String| -> ExitCode {
        eprintln!("client: {e}");
        ExitCode::FAILURE
    };
    let arg = tail.get(2).map(String::as_str);
    match verb {
        "submit" => {
            let Some(bench) = arg else {
                return usage();
            };
            let mut pos = Vec::new();
            let mut seed = 8u64;
            let mut i = 3;
            while i < tail.len() {
                if tail[i] == "--seed" {
                    match tail.get(i + 1).and_then(|v| v.parse().ok()) {
                        Some(s) => seed = s,
                        None => return usage(),
                    }
                    i += 2;
                } else {
                    pos.push(tail[i].as_str());
                    i += 1;
                }
            }
            let budget = |i: usize| pos.get(i).and_then(|v| v.parse().ok()).unwrap_or(40);
            let spec = mcmap_serve::JobSpec {
                benchmark: bench.to_string(),
                population: budget(0),
                generations: budget(1),
                seed,
            };
            match c.submit(&spec) {
                Ok(id) => {
                    println!("{id}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "status" => {
            let Some(id) = arg else {
                return usage();
            };
            if tail.iter().any(|a| a == "--json") {
                match c.verb_raw(verb, Some(id)) {
                    Ok(text) => {
                        println!("{text}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(e),
                }
            } else {
                match c.status(id) {
                    Ok(job) => {
                        print!("{}", mcmap_serve::render::render_status(&job));
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(e),
                }
            }
        }
        "front" => {
            let Some(id) = arg else {
                return usage();
            };
            match c.verb_raw(verb, Some(id)) {
                Ok(text) => {
                    println!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "stats" => {
            if tail.iter().any(|a| a == "--json") {
                match c.verb_raw(verb, None) {
                    Ok(text) => {
                        println!("{text}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(e),
                }
            } else {
                match c.stats() {
                    Ok(stats) => {
                        print!("{}", mcmap_serve::render::render_stats(&stats));
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(e),
                }
            }
        }
        "metrics" => {
            if tail.iter().any(|a| a == "--prometheus") {
                match c.metrics_prometheus() {
                    Ok(text) => {
                        print!("{text}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(e),
                }
            } else {
                match c.verb_raw(verb, None) {
                    Ok(text) => {
                        println!("{text}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(e),
                }
            }
        }
        "list" => match c.verb_raw(verb, None) {
            Ok(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "cancel" | "resume" => {
            let Some(id) = arg else {
                return usage();
            };
            match c.verb_raw(verb, Some(id)) {
                Ok(_) => {
                    println!("ok");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "stream" => {
            let Some(id) = arg else {
                return usage();
            };
            match c.stream(id, |g| println!("generation {g}")) {
                Ok(state) => {
                    println!("done: {state}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "wait" => {
            let Some(id) = arg else {
                return usage();
            };
            match c.wait(id) {
                Ok(state) => {
                    println!("{state}");
                    if state == "completed" {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => fail(e),
            }
        }
        "shutdown" => match c.shutdown() {
            Ok(()) => {
                println!("ok");
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        _ => usage(),
    }
}

/// `lint --interference`: samples a repaired chromosome, builds its
/// interference graph, and renders it (text with diagnostics, `--json`, or
/// `--dot` for GraphViz).
fn cmd_interference(b: &Benchmark, flags: &[String]) -> ExitCode {
    let seed = flags
        .iter()
        .find_map(|f| f.parse::<u64>().ok())
        .unwrap_or(11);
    let space = GenomeSpace::new(&b.apps, &b.arch);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = space.random(&mut rng);
    repair_structure(&mut g, &space, &mut rng);
    let _ = repair_reliability(&mut g, &space, &b.apps, &b.arch, &mut rng, 80);
    let view = g.lint_view();
    let Some(ig) = mcmap_lint::InterferenceGraph::build(&b.apps, &b.arch, &view) else {
        eprintln!("lint: sampled genome does not fit the system (internal error)");
        return ExitCode::FAILURE;
    };
    if flags.iter().any(|f| f == "--dot") {
        print!("{}", ig.to_dot());
    } else if flags.iter().any(|f| f == "--json") {
        println!("{}", ig.to_json());
    } else {
        println!("interference graph of a repaired sample (seed {seed}):\n");
        print!("{}", ig.render_text());
        let report = mcmap_lint::Linter::new(&b.apps, &b.arch).lint_full(None, Some(&view));
        let interference: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code.starts_with("MC012"))
            .collect();
        if !interference.is_empty() {
            println!();
            for d in interference {
                println!("{d}");
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_lint(b: &Benchmark, flags: &[String]) -> ExitCode {
    let json = flags.iter().any(|f| f == "--json");
    if flags.iter().any(|f| f == "--interference") {
        return cmd_interference(b, flags);
    }
    let apps = match flags
        .iter()
        .position(|f| f == "--inject")
        .map(|i| flags.get(i + 1).map(String::as_str))
    {
        None => b.apps.clone(),
        Some(Some("cycle")) => mcmap_lint::inject::with_cycle(&b.apps),
        Some(Some("relbound")) => mcmap_lint::inject::with_unsatisfiable_reliability(&b.apps),
        Some(Some("inverted")) => mcmap_lint::inject::with_inverted_bounds(&b.apps),
        Some(_) => return usage(),
    };
    let report = mcmap_lint::Linter::new(&apps, &b.arch).lint();
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_dse(
    b: &Benchmark,
    key: &str,
    pop: usize,
    gens: usize,
    knobs: &EvalKnobs,
    validate: Option<u64>,
) -> ExitCode {
    let mut cfg = DseConfig {
        ga: GaConfig {
            population: pop,
            generations: gens,
            seed: 8,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::PowerService,
        policies: Some(b.policies.clone()),
        repair_iters: 80,
        ..DseConfig::default()
    };
    // A fleet benchmark brings its own hardening-space depth.
    if let Some(fleet) = mcmap_benchmarks::fleet_preset(key) {
        cfg.max_reexec = fleet.max_reexec;
        cfg.max_replicas = fleet.max_replicas;
    }
    knobs.apply(&mut cfg);
    mcmap_bench::hook_interrupts(&mut cfg);
    cfg.obs = knobs.recorder();
    let outcome = match explore_checked(&b.apps, &b.arch, cfg) {
        Ok(o) => o,
        Err(err) => {
            eprintln!("dse: {err}");
            if let Some(report) = err.lint_report() {
                eprint!("{}", report.render_text());
            }
            return ExitCode::FAILURE;
        }
    };
    if let Some(generation) = outcome.resumed_from {
        println!("resumed from checkpoint at generation {generation}");
    }
    println!(
        "{} evaluations, {} feasible\n",
        outcome.audit.evaluated, outcome.audit.feasible
    );
    println!("{:>12} {:>9}  dropped set", "power [mW]", "service");
    let mut rows: Vec<_> = outcome.reports.iter().filter(|r| r.feasible).collect();
    rows.sort_by(|a, b| a.power.partial_cmp(&b.power).expect("finite"));
    rows.dedup_by(|a, b| (a.power - b.power).abs() < 1e-9 && a.service == b.service);
    for r in rows {
        let names: Vec<&str> = r.dropped.iter().map(|&a| b.apps.app(a).name()).collect();
        println!(
            "{:>12.2} {:>9.1}  {{{}}}",
            r.power,
            r.service,
            names.join(", ")
        );
    }
    if !outcome.failures.is_empty() {
        println!(
            "\n{} candidate evaluation(s) degraded after repeated panics:",
            outcome.failures.len()
        );
        for failure in outcome.failures.iter().take(5) {
            println!("  {failure}");
        }
    }
    knobs.report("dse", &outcome.eval_stats);
    knobs.report_analysis("dse", &outcome.analysis);
    knobs.report_audit("dse", &outcome.audit);
    knobs.report_obs("dse", &outcome.obs);
    if outcome.interrupted {
        let done = outcome
            .result
            .history
            .last()
            .map_or(0, |row| row.generation);
        println!("\ninterrupted after generation {done} of {gens}; the results above are partial.");
        if let Some(path) = &knobs.checkpoint {
            println!(
                "resume with: mcmap_cli dse {key} {pop} {gens} --resume {path} --checkpoint {path}"
            );
        }
        return ExitCode::from(mcmap_bench::INTERRUPTED_EXIT);
    }
    if let Some(profiles) = validate {
        println!();
        let problem = MappingProblem::new(&b.apps, &b.arch, explore_config(b, pop, gens));
        let portfolio = Portfolio::extract(&problem, &outcome.result.front);
        println!(
            "portfolio: {} operating point(s) (context {:016x})",
            portfolio.points.len(),
            portfolio.context
        );
        if portfolio.points.is_empty() {
            eprintln!("dse --validate: no feasible operating point to validate");
            return ExitCode::FAILURE;
        }
        let ccfg = CampaignConfig {
            profiles,
            threads: knobs.threads,
            ..CampaignConfig::default()
        };
        return run_validation(b, key, pop, gens, &portfolio, &ccfg, false);
    }
    ExitCode::SUCCESS
}

/// The `dse`-shaped exploration configuration shared by `dse`,
/// `validate`, and `dse --validate`: the portfolio a campaign validates
/// must be decoded under the exact configuration (seed included) that
/// evaluated it.
fn explore_config(b: &Benchmark, pop: usize, gens: usize) -> DseConfig {
    DseConfig {
        ga: GaConfig {
            population: pop,
            generations: gens,
            seed: 8,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::PowerService,
        policies: Some(b.policies.clone()),
        repair_iters: 80,
        ..DseConfig::default()
    }
}

/// Extracts the portfolio, runs the Monte-Carlo campaign, prints the
/// deterministic summary to stdout (runs/sec goes to stderr — wall time
/// must not break summary byte-identity), and returns the exit code.
#[allow(clippy::too_many_arguments)]
fn run_validation(
    b: &Benchmark,
    key: &str,
    pop: usize,
    gens: usize,
    portfolio: &Portfolio,
    ccfg: &CampaignConfig,
    json: bool,
) -> ExitCode {
    let problem = MappingProblem::new(&b.apps, &b.arch, explore_config(b, pop, gens));
    let points = match portfolio.materialize(&problem) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("validate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if points.is_empty() {
        eprintln!("validate: the portfolio has no feasible operating point");
        return ExitCode::FAILURE;
    }
    let started = std::time::Instant::now();
    let summary = match run_campaign(&points, &b.arch, &b.policies, ccfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("validate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", summary.to_json());
    } else {
        print!("{}", summary.render_text());
    }
    let secs = started.elapsed().as_secs_f64();
    let fresh = summary
        .total_runs()
        .saturating_sub(summary.resumed_from.unwrap_or(0) * points.len() as u64);
    if secs > 0.0 {
        eprintln!(
            "{} simulation runs in {:.2}s ({:.0} runs/sec)",
            fresh,
            secs,
            fresh as f64 / secs
        );
    }
    if summary.interrupted {
        if let Some(path) = ccfg.checkpoint.as_ref().and_then(|p| p.to_str()) {
            eprintln!(
                "interrupted after {} of {} profiles; resume with: \
                 mcmap_cli validate {key} {pop} {gens} --checkpoint {path} --resume",
                summary.done, summary.profiles
            );
        }
        return ExitCode::from(mcmap_bench::INTERRUPTED_EXIT);
    }
    if summary.total_violations() > 0 {
        eprintln!(
            "validate: {} WCRT-bound violation(s) — the analysis is refuted on this portfolio",
            summary.total_violations()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_validate(b: &Benchmark, key: &str, tail: &[String]) -> ExitCode {
    let mut profiles: u64 = 1000;
    let mut seed: u64 = 0xC0FFEE;
    let mut boost: f64 = 1e3;
    let mut threads: usize = 0;
    let mut checkpoint: Option<String> = None;
    let mut resume = false;
    let mut portfolio_path: Option<String> = None;
    let mut json = false;
    let mut pos: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < tail.len() {
        let a = tail[i].as_str();
        let mut value = |what: &str| -> Option<String> {
            i += 1;
            let v = tail.get(i).cloned();
            if v.is_none() {
                eprintln!("validate: {what} needs a value");
            }
            v
        };
        match a {
            "--profiles" => match value("--profiles").and_then(|v| v.parse().ok()) {
                Some(v) => profiles = v,
                None => return usage(),
            },
            "--seed" => match value("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--boost" => match value("--boost").and_then(|v| v.parse().ok()) {
                Some(v) => boost = v,
                None => return usage(),
            },
            "--threads" => match value("--threads").and_then(|v| v.parse().ok()) {
                Some(v) => threads = v,
                None => return usage(),
            },
            "--checkpoint" => match value("--checkpoint") {
                Some(v) => checkpoint = Some(v),
                None => return usage(),
            },
            "--portfolio" => match value("--portfolio") {
                Some(v) => portfolio_path = Some(v),
                None => return usage(),
            },
            "--resume" => resume = true,
            "--json" => json = true,
            _ if a.starts_with("--") => {
                eprintln!("validate: unknown flag {a}");
                return usage();
            }
            _ => match a.parse() {
                Ok(v) => pos.push(v),
                Err(_) => return usage(),
            },
        }
        i += 1;
    }
    let pop = pos.first().copied().unwrap_or(24);
    let gens = pos.get(1).copied().unwrap_or(24);

    let stop = mcmap_resilience::install_stop_flag();

    // The portfolio: loaded from --portfolio when the file exists,
    // otherwise extracted from a fresh (deterministic, seed-8)
    // exploration and saved there for the next invocation.
    let stored = portfolio_path
        .as_ref()
        .filter(|p| std::path::Path::new(p).exists());
    let portfolio = match stored {
        Some(path) => match read_portfolio(std::path::Path::new(path)) {
            Ok((p, recovered)) => {
                if recovered {
                    eprintln!("validate: portfolio recovered from {path}.bak");
                }
                p
            }
            Err(e) => {
                eprintln!("validate: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut cfg = explore_config(b, pop, gens);
            cfg.resilience.stop = Some(stop.clone());
            let outcome = match explore_checked(&b.apps, &b.arch, cfg) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("validate: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if outcome.interrupted {
                eprintln!("validate: interrupted during exploration; nothing to validate yet");
                return ExitCode::from(mcmap_bench::INTERRUPTED_EXIT);
            }
            let problem = MappingProblem::new(&b.apps, &b.arch, explore_config(b, pop, gens));
            let portfolio = Portfolio::extract(&problem, &outcome.result.front);
            if let Some(path) = &portfolio_path {
                if let Err(e) = write_portfolio(std::path::Path::new(path), &portfolio) {
                    eprintln!("validate: {e}");
                    return ExitCode::FAILURE;
                }
            }
            portfolio
        }
    };
    println!(
        "portfolio: {} operating point(s) (context {:016x})",
        portfolio.points.len(),
        portfolio.context
    );
    let ccfg = CampaignConfig {
        profiles,
        seed,
        boost,
        threads,
        checkpoint: checkpoint.map(std::path::PathBuf::from),
        resume,
        stop: Some(stop),
        ..CampaignConfig::default()
    };
    run_validation(b, key, pop, gens, &portfolio, &ccfg, json)
}

fn cmd_obs(path: &str, json: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("obs: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    // Tolerant read: a trace cut short by a crash (torn final line, or
    // garbage past the valid prefix) still profiles — the reader keeps the
    // valid prefix and reports exactly what it dropped.
    let (profile, recovery) = mcmap_obs::TraceProfile::from_jsonl_lossy(&text);
    if recovery.lossy() {
        eprintln!(
            "obs: trace {path} is truncated: profiled {} event(s), dropped {} trailing \
             line(s) ({} byte(s)){}",
            recovery.parsed_events,
            recovery.dropped_lines,
            recovery.dropped_bytes,
            recovery
                .error
                .as_deref()
                .map(|e| format!(" — first bad line: {e}"))
                .unwrap_or_default()
        );
    }
    if recovery.lossy() && recovery.parsed_events == 0 {
        eprintln!("obs: no usable events in {path}");
        return ExitCode::FAILURE;
    }
    if json {
        println!("{}", profile.to_json());
    } else {
        print!("{}", profile.render_text());
    }
    ExitCode::SUCCESS
}

/// Loads a JSONL trace for the analytics subverbs, tolerating a torn tail
/// the same way `cmd_obs` does.
fn load_trace(path: &str) -> Result<Vec<mcmap_obs::Event>, ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("obs: cannot read {path}: {err}");
            return Err(ExitCode::FAILURE);
        }
    };
    let (events, recovery) = mcmap_obs::events_from_jsonl_lossy(&text);
    if recovery.lossy() {
        eprintln!(
            "obs: trace {path} is truncated: kept {} event(s), dropped {} trailing line(s)",
            recovery.parsed_events, recovery.dropped_lines
        );
    }
    if events.is_empty() {
        eprintln!("obs: no usable events in {path}");
        return Err(ExitCode::FAILURE);
    }
    Ok(events)
}

/// `obs query`: filter a trace by name substring, event kind, field
/// presence/value, and generation; print matches as a table or JSONL.
fn cmd_obs_query(path: &str, tail: &[String]) -> ExitCode {
    let mut q = mcmap_obs::TraceQuery::default();
    let mut json = false;
    let mut i = 0;
    while i < tail.len() {
        let value = tail.get(i + 1).map(String::as_str);
        match tail[i].as_str() {
            "--name" => match value {
                Some(v) => {
                    q.name = Some(v.to_string());
                    i += 2;
                }
                None => return usage(),
            },
            "--kind" => match value.and_then(mcmap_obs::EventKind::parse) {
                Some(k) => {
                    q.kind = Some(k);
                    i += 2;
                }
                None => {
                    eprintln!("obs query: --kind takes span_begin|span_end|counter|mark");
                    return ExitCode::FAILURE;
                }
            },
            "--field" => match value {
                Some(v) => {
                    q.field = Some(match v.split_once('=') {
                        Some((k, val)) => (k.to_string(), Some(val.to_string())),
                        None => (v.to_string(), None),
                    });
                    i += 2;
                }
                None => return usage(),
            },
            "--generation" => match value.and_then(|v| v.parse().ok()) {
                Some(g) => {
                    q.generation = Some(g);
                    i += 2;
                }
                None => return usage(),
            },
            "--json" => {
                json = true;
                i += 1;
            }
            _ => return usage(),
        }
    }
    let events = match load_trace(path) {
        Ok(e) => e,
        Err(code) => return code,
    };
    let hits = mcmap_obs::query(&events, &q);
    for e in &hits {
        if json {
            println!("{}", e.to_jsonl());
        } else {
            let fields: Vec<String> = e
                .fields
                .iter()
                .map(|(k, v)| {
                    let mut s = String::new();
                    v.write_json(&mut s);
                    format!("{k}={s}")
                })
                .collect();
            println!(
                "{:>6}  {:<10}  {:<24}  {}",
                e.seq,
                e.kind.as_str(),
                e.name,
                fields.join(" ")
            );
        }
    }
    if !json {
        eprintln!(
            "obs query: {} of {} event(s) matched",
            hits.len(),
            events.len()
        );
    }
    ExitCode::SUCCESS
}

/// `obs critical-path`: the slowest span chain of every generation.
fn cmd_obs_critical_path(path: &str, json: bool) -> ExitCode {
    let events = match load_trace(path) {
        Ok(e) => e,
        Err(code) => return code,
    };
    let paths = mcmap_obs::critical_paths(&events);
    if paths.is_empty() {
        eprintln!("obs critical-path: trace has no generation spans with wall times");
        return ExitCode::FAILURE;
    }
    if json {
        let mut out = String::from("[");
        for (i, p) in paths.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"generation\":{},\"total_ns\":{},\"steps\":[",
                p.generation, p.total_ns
            ));
            for (j, s) in p.steps.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"wall_ns\":{},\"self_ns\":{}}}",
                    s.name, s.wall_ns, s.self_ns
                ));
            }
            out.push_str("]}");
        }
        out.push(']');
        println!("{out}");
    } else {
        for p in &paths {
            println!("generation {:<4} total {} ns", p.generation, p.total_ns);
            for s in &p.steps {
                println!(
                    "  {:<28} wall {:>12} ns  self {:>12} ns",
                    s.name, s.wall_ns, s.self_ns
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// `obs flame`: folded-stack lines (`a;b;c self_ns`) ready for any
/// flame-graph renderer that eats the Brendan Gregg collapsed format.
fn cmd_obs_flame(path: &str) -> ExitCode {
    let events = match load_trace(path) {
        Ok(e) => e,
        Err(code) => return code,
    };
    let stacks = mcmap_obs::folded_stacks(&events);
    if stacks.is_empty() {
        eprintln!("obs flame: trace has no spans with wall times");
        return ExitCode::FAILURE;
    }
    for (stack, self_ns) in &stacks {
        println!("{stack} {self_ns}");
    }
    ExitCode::SUCCESS
}

/// `obs diff`: compare two traces — canonical event streams, counter
/// sums, span populations. Exits nonzero when the deterministic portions
/// differ, so it doubles as a replay-identity check in scripts.
fn cmd_obs_diff(path_a: &str, path_b: &str, json: bool) -> ExitCode {
    let (a, b) = match (load_trace(path_a), load_trace(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let diff = mcmap_obs::diff_traces(&a, &b);
    if json {
        println!("{}", diff.to_json());
    } else {
        print!("{}", diff.render_text());
    }
    if diff.deterministically_identical() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Strips the eval-engine flags (and their values) out of a `dse` argument
/// tail, leaving the positional `[pop gens]` budget.
fn dse_positionals(tail: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tail.len() {
        let a = tail[i].as_str();
        if a == "--threads"
            || a == "--cache-cap"
            || a == "--trace"
            || a == "--checkpoint"
            || a == "--resume"
            || a == "--eval-retries"
            || a == "--scenario-threads"
        {
            i += 2;
        } else if a == "--eval-stats"
            || a == "--obs-summary"
            || a == "--gen-stats"
            || a == "--audit"
        {
            i += 1;
            if matches!(
                tail.get(i).map(String::as_str),
                Some("json") | Some("text") | Some("off") | Some("0")
            ) {
                i += 1;
            }
        } else if a == "--validate" {
            i += 1;
            if tail.get(i).is_some_and(|v| v.parse::<u64>().is_ok()) {
                i += 1;
            }
        } else if a.starts_with("--") {
            i += 1;
        } else {
            out.push(tail[i].clone());
            i += 1;
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    if cmd == "list" {
        return cmd_list();
    }
    if cmd == "obs" {
        let json = args.iter().any(|a| a == "--json");
        // Analytics subverbs first; anything else is a trace path for the
        // classic profile rendering.
        return match args.get(1).map(String::as_str) {
            Some("query") => match args.get(2) {
                Some(path) => cmd_obs_query(path, &args[3..]),
                None => usage(),
            },
            Some("critical-path") => match args.get(2) {
                Some(path) => cmd_obs_critical_path(path, json),
                None => usage(),
            },
            Some("flame") => match args.get(2) {
                Some(path) => cmd_obs_flame(path),
                None => usage(),
            },
            Some("diff") => match (args.get(2), args.get(3)) {
                (Some(a), Some(b)) if !b.starts_with("--") => cmd_obs_diff(a, b, json),
                _ => usage(),
            },
            Some(path) => cmd_obs(path, json),
            None => usage(),
        };
    }
    if cmd == "serve" {
        return cmd_serve(&args[1..]);
    }
    if cmd == "client" {
        return cmd_client(&args[1..]);
    }
    // `lint --explain [MCxxxx]` documents one code (or lists them all), no
    // benchmark involved.
    if cmd == "lint" {
        if let Some(i) = args.iter().position(|a| a == "--explain") {
            return match args.get(i + 1).filter(|c| !c.starts_with("--")) {
                Some(code) => cmd_explain(code),
                None => cmd_explain_all(),
            };
        }
    }
    let Some(b) = args.get(1).and_then(|n| benchmark(n)) else {
        return usage();
    };
    let num = |i: usize, default: usize| -> usize {
        args.get(i).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    match cmd {
        "analyze" => cmd_analyze(&b, num(2, 11) as u64, args.iter().any(|a| a == "--json")),
        "simulate" => cmd_simulate(&b, num(2, 500)),
        "gantt" => cmd_gantt(&b, num(2, 11) as u64),
        "dot" => {
            print!("{}", mcmap_model::appset_to_dot(&b.apps));
            ExitCode::SUCCESS
        }
        "dse" => {
            let tail = &args[2..];
            let knobs = EvalKnobs::from_args(tail);
            let pos = dse_positionals(tail);
            let budget = |i: usize, default: usize| -> usize {
                pos.get(i).and_then(|v| v.parse().ok()).unwrap_or(default)
            };
            let validate = tail.iter().position(|a| a == "--validate").map(|i| {
                tail.get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(256u64)
            });
            cmd_dse(
                &b,
                args.get(1).map_or("cruise", String::as_str),
                budget(0, 40),
                budget(1, 40),
                &knobs,
                validate,
            )
        }
        "lint" => cmd_lint(&b, &args[2..]),
        "validate" => cmd_validate(&b, args.get(1).map_or("cruise", String::as_str), &args[2..]),
        _ => usage(),
    }
}
