//! **Fig. 1** — the paper's motivational example, reproduced end to end on
//! the simulator and the analysis:
//!
//! * (b) without faults, all three applications meet their deadlines;
//! * (c) a fault at task A triggers its re-execution and the high-critical
//!   task E misses its deadline when nothing may be dropped;
//! * (d) with the low-criticality application {G, H, I} declared droppable,
//!   the same fault leads to its jobs being discarded and E meets the
//!   deadline.
//!
//! Task B is actively replicated (as in the figure); per the paper's
//! footnote, detection and voting overheads are kept minimal.

use mcmap_bench::EvalKnobs;
use mcmap_eval::parallel_map_caught;
use mcmap_hardening::{harden, HTaskId, HardeningPlan, TaskHardening};
use mcmap_model::{
    AppId, AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcId, ProcKind, Processor,
    Task, TaskGraph, Time,
};
use mcmap_sched::{uniform_policies, Mapping, SchedPolicy};
use mcmap_sim::{NoFaults, ScriptedFaults, SimConfig, Simulator};
use std::process::ExitCode;

fn t(name: &str, wcet: u64) -> Task {
    Task::new(name).with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(wcet)))
}

fn main() -> ExitCode {
    let arch = Architecture::builder()
        .homogeneous(2, Processor::new("pe", ProcKind::new(0), 5.0, 20.0, 1e-6))
        .fabric(Fabric::new(1 << 20))
        .build()
        .expect("static example");

    // High-criticality graph: A and B feed E. Deadline 160.
    let high = TaskGraph::builder("high", Time::from_ticks(200))
        .deadline(Time::from_ticks(160))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 0.5,
        })
        .task(t("A", 30))
        .task(t("B", 10).with_voting_overhead(Time::from_ticks(2)))
        .task(t("E", 40))
        .channel(0, 2, 0)
        .channel(1, 2, 0)
        .build()
        .expect("static example");
    // Low-criticality graph kept through critical mode: C → D.
    let low1 = TaskGraph::builder("low1", Time::from_ticks(400))
        .criticality(Criticality::Droppable { service: 2.0 })
        .task(t("C", 25))
        .task(t("D", 25))
        .channel(0, 1, 0)
        .build()
        .expect("static example");
    // Low-criticality graph that may be dropped: G → H → I.
    let low2 = TaskGraph::builder("low2", Time::from_ticks(400))
        .criticality(Criticality::Droppable { service: 1.0 })
        .task(t("G", 30))
        .task(t("H", 30))
        .task(t("I", 30))
        .channel(0, 1, 0)
        .channel(1, 2, 0)
        .build()
        .expect("static example");
    let apps = AppSet::new(vec![high, low1, low2]).expect("static example");

    // Hardening per the figure: A re-executed, B actively replicated.
    let mut plan = HardeningPlan::unhardened(&apps);
    plan.set_by_flat_index(0, TaskHardening::reexecution(1));
    plan.set_by_flat_index(
        1,
        TaskHardening::active(vec![ProcId::new(0)], ProcId::new(1)),
    );
    let hsys = harden(&apps, &plan, &arch).expect("static example");

    // Mapping and priorities chosen to match the figure's schedule.
    // Hardened task order: A, B, B#active0 (fixed pe0), B#voter (fixed
    // pe1), E | C, D | G, H, I.
    let placement = vec![
        ProcId::new(0), // A
        ProcId::new(1), // B (primary)
        ProcId::new(0), // B#active0 (fixed)
        ProcId::new(1), // B#voter (fixed)
        ProcId::new(1), // E
        ProcId::new(0), // C
        ProcId::new(1), // D
        ProcId::new(0), // G
        ProcId::new(1), // H
        ProcId::new(1), // I
    ];
    let mapping = Mapping::new(&hsys, &arch, placement)
        .expect("static example")
        .with_priorities(vec![2, 0, 0, 1, 5, 6, 7, 3, 3, 4]);
    let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
    let sim = Simulator::new(&hsys, &arch, &mapping, policies.clone());

    let deadline = apps.app(AppId::new(0)).deadline();
    let report = |label: &str, r: &mcmap_sim::SimResult| {
        println!(
            "{label:42} E-graph finish: {:>5}  (deadline {})  {}",
            r.app_wcrt[0],
            deadline,
            if r.app_wcrt[0] <= deadline {
                "MET"
            } else {
                "MISSED"
            }
        );
        println!(
            "{:42} low1 completed: {}, low2 completed: {}, dropped: {}",
            "", r.completed_instances[1], r.completed_instances[2], r.dropped_instances[2]
        );
    };

    println!("Fig. 1 motivational example (one hyperperiod, 2 PEs)\n");

    // The three scenarios (b)/(c)/(d) are independent simulations, so they
    // run on the evaluation worker pool; each builds its own fault script,
    // and the gather preserves scenario order.
    let knobs = EvalKnobs::parse();
    let obs = knobs.recorder();
    let scenarios: [usize; 3] = [0, 1, 2];
    let span = obs.span(
        "fig1.scenarios",
        &[("scenarios", mcmap_obs::Value::from(scenarios.len()))],
    );
    let t0 = std::time::Instant::now();
    let caught = parallel_map_caught(&scenarios, knobs.threads, |&s| match s {
        // (b) No faults.
        0 => sim.run(&SimConfig::default(), &mut NoFaults),
        // (c) Fault at A, nothing droppable.
        1 => {
            let mut fault = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
            sim.run(&SimConfig::default(), &mut fault)
        }
        // (d) Fault at A, {G, H, I} dropped in critical mode.
        _ => {
            let mut fault = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
            sim.run(
                &SimConfig {
                    dropped: vec![AppId::new(2)],
                    ..SimConfig::default()
                },
                &mut fault,
            )
        }
    });
    let wall = t0.elapsed();
    span.end();
    // The (b)/(c)/(d) comparison needs all three traces, so a panicking
    // scenario ends the run — but with a labeled diagnostic and the
    // telemetry flushed, not a torn worker pool.
    let mut runs = Vec::with_capacity(caught.len());
    for (label, outcome) in ["no-fault", "fault", "fault-drop"].iter().zip(caught) {
        match outcome {
            Ok(r) => runs.push(r),
            Err(payload) => {
                eprintln!(
                    "fig1: scenario {label} panicked: {}",
                    mcmap_resilience::panic_message(payload.as_ref())
                );
                knobs.report_obs("fig1-motivation", &obs);
                return ExitCode::FAILURE;
            }
        }
    }
    let [nominal, strict, rescued] = &runs[..] else {
        unreachable!("three scenarios in, three results out");
    };
    // Per-scenario outcomes, emitted in scenario order on the driver
    // thread: the canonical trace is identical for any --threads.
    for (label, r) in [
        ("no-fault", nominal),
        ("fault", strict),
        ("fault-drop", rescued),
    ] {
        obs.counter(
            "fig1.scenario",
            &[
                ("scenario", mcmap_obs::Value::from(label)),
                ("finish", mcmap_obs::Value::from(r.app_wcrt[0].ticks())),
                ("met", mcmap_obs::Value::from(r.app_wcrt[0] <= deadline)),
                (
                    "dropped_instances",
                    mcmap_obs::Value::from(r.dropped_instances[2]),
                ),
            ],
        );
    }

    report("(b) no fault:", nominal);
    assert!(nominal.app_wcrt[0] <= deadline);

    report("\n(c) fault at A, no dropping:", strict);
    assert!(
        strict.app_wcrt[0] > deadline,
        "the fault must push E past its deadline without dropping"
    );

    report("\n(d) fault at A, dropping {G,H,I}:", rescued);
    assert!(rescued.app_wcrt[0] <= deadline);
    assert!(rescued.dropped_instances[2] > 0);

    // Static verdicts from Algorithm 1 agree with the traces.
    let without = mcmap_core::analyze(&hsys, &arch, &mapping, &policies, &[]);
    let with = mcmap_core::analyze(&hsys, &arch, &mapping, &policies, &[AppId::new(2)]);
    println!(
        "\nAlgorithm 1: WCRT(high) = {} without dropping, {} with T_d = {{low2}}.",
        without.app_wcrt(&hsys, AppId::new(0), &[]),
        with.app_wcrt(&hsys, AppId::new(0), &[AppId::new(2)]),
    );
    for (id, app) in apps.apps() {
        println!(
            "  {}: no-drop wcrt {} / with-drop wcrt {} (deadline {})",
            app.name(),
            without.app_wcrt(&hsys, id, &[]),
            with.app_wcrt(&hsys, id, &[AppId::new(2)]),
            app.deadline()
        );
    }
    println!(
        "Verdicts: without dropping schedulable = {}, with dropping schedulable = {}.",
        without.schedulable(&hsys, &[]),
        with.schedulable(&hsys, &[AppId::new(2)])
    );
    assert!(!without.schedulable(&hsys, &[]));
    assert!(with.schedulable(&hsys, &[AppId::new(2)]));
    println!("\nThe configuration is rescued exactly as in Fig. 1(d).");
    knobs.report_wall("fig1-motivation", scenarios.len(), wall);
    knobs.report_obs("fig1-motivation", &obs);
    ExitCode::SUCCESS
}
