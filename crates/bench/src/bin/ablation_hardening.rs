//! **Ablation** — the §2.2 hardening trade-off made concrete: harden every
//! critical task of the Cruise benchmark uniformly with each technique
//! (re-execution / active replication / passive replication) and compare
//! the resulting reliability, worst-case response times, and expected
//! power on a fixed isolation mapping.
//!
//! This quantifies why the DSE overwhelmingly picks re-execution (§5.2):
//! it is the cheapest in power, at the price of critical-state WCRT
//! inflation — which task dropping then absorbs.

use mcmap_bench::EvalKnobs;
use mcmap_benchmarks::cruise;
use mcmap_core::{analyze, expected_power};
use mcmap_eval::parallel_map_caught;
use mcmap_hardening::{harden, HardenedSystem, HardeningPlan, Reliability, TaskHardening};
use mcmap_model::{AppId, ProcId};
use mcmap_sched::Mapping;
use std::process::ExitCode;

/// Builds a plan hardening every critical task with `make(flat)`.
fn plan_with(
    b: &mcmap_benchmarks::Benchmark,
    make: impl Fn(usize) -> TaskHardening,
) -> HardeningPlan {
    let mut plan = HardeningPlan::unhardened(&b.apps);
    for (flat, r) in b.apps.task_refs().iter().enumerate() {
        if !b.apps.app(r.app).criticality().is_droppable() {
            plan.set_by_flat_index(flat, make(flat));
        }
    }
    plan
}

/// Isolation mapping: critical apps on the big cores, droppables on the
/// little cores; fixed (replica/voter) slots honoured.
fn mapping_for(b: &mcmap_benchmarks::Benchmark, hsys: &HardenedSystem) -> Mapping {
    let placement: Vec<ProcId> = hsys
        .tasks()
        .map(|(_, t)| {
            if let Some(p) = t.fixed_proc {
                return p;
            }
            match t.app.index() {
                0 | 1 => ProcId::new(t.app.index()), // critical apps on big cores
                2 => ProcId::new(2),                 // nav alone on little0
                _ => ProcId::new(3),                 // infotainment + diagnostics on little1
            }
        })
        .collect();
    Mapping::new(hsys, &b.arch, placement).expect("isolation mapping is valid")
}

fn main() -> ExitCode {
    let b = cruise();
    let knobs = EvalKnobs::parse();
    let dropped: Vec<AppId> = b.apps.droppable_apps().collect();

    // Replicas of critical app i live on the *other* big core and a little
    // core; voters on the app's own core.
    let variants: Vec<(&str, HardeningPlan)> = vec![
        (
            "re-execution k=1",
            plan_with(&b, |_| TaskHardening::reexecution(1)),
        ),
        (
            "re-execution k=2",
            plan_with(&b, |_| TaskHardening::reexecution(2)),
        ),
        (
            "active triplication",
            plan_with(&b, |flat| {
                let own = ProcId::new(if flat < 5 { 0 } else { 1 });
                let other = ProcId::new(if flat < 5 { 1 } else { 0 });
                TaskHardening::active(vec![other, ProcId::new(2)], own)
            }),
        ),
        (
            "passive duplex+standby",
            plan_with(&b, |flat| {
                let own = ProcId::new(if flat < 5 { 0 } else { 1 });
                let other = ProcId::new(if flat < 5 { 1 } else { 0 });
                TaskHardening::passive(vec![other], vec![ProcId::new(3)], own)
            }),
        ),
    ];

    println!("Hardening-technique ablation on Cruise (isolation mapping, T_d = all droppable)\n");
    println!(
        "{:22} | {:>10} | {:>9} {:>9} | {:>9} | {:>6}",
        "technique", "power[mW]", "wcrt(sc)", "wcrt(bm)", "max fail", "sched"
    );
    println!("{}", "-".repeat(80));

    // The four variants are independent, so they run on the evaluation
    // worker pool; gathering preserves variant order, so the table is
    // identical for any `--threads`.
    let obs = knobs.recorder();
    let span = obs.span(
        "ablation.variants",
        &[("variants", mcmap_obs::Value::from(variants.len()))],
    );
    let t0 = std::time::Instant::now();
    let rows = parallel_map_caught(&variants, knobs.threads, |(name, plan)| {
        let hsys = harden(&b.apps, plan, &b.arch).expect("static plans are valid");
        let mapping = mapping_for(&b, &hsys);
        let rel = Reliability::new(&hsys, &b.arch);
        let worst_fail = rel
            .check_all(mapping.placement())
            .into_iter()
            .map(|v| v.failure_probability)
            .fold(0.0f64, f64::max);
        let mc = analyze(&hsys, &b.arch, &mapping, &b.policies, &dropped);
        let power = expected_power(&hsys, &b.arch, &mapping, &[true; 4], &dropped, 0.3);
        let row = format!(
            "{:22} | {:>10.2} | {:>9} {:>9} | {:>9.2e} | {:>6}",
            name,
            power,
            mc.app_wcrt(&hsys, AppId::new(0), &dropped).to_string(),
            mc.app_wcrt(&hsys, AppId::new(1), &dropped).to_string(),
            worst_fail,
            mc.schedulable(&hsys, &dropped),
        );
        (row, mc.scenarios, mc.backend_calls, power)
    });
    let wall = t0.elapsed();
    span.end();
    // Per-variant effort and power, emitted in variant order on the driver
    // thread: the canonical trace is identical for any --threads. A variant
    // that panicked degrades to a labeled failure row instead of taking the
    // other three down with it.
    let mut panicked = 0usize;
    for ((name, _), outcome) in variants.iter().zip(&rows) {
        match outcome {
            Ok((_, scenarios, backend_calls, power)) => obs.counter(
                "ablation.variant",
                &[
                    ("name", mcmap_obs::Value::from(*name)),
                    ("scenarios", mcmap_obs::Value::from(*scenarios)),
                    ("backend_calls", mcmap_obs::Value::from(*backend_calls)),
                    ("power", mcmap_obs::Value::from(*power)),
                ],
            ),
            Err(payload) => {
                panicked += 1;
                obs.counter(
                    "ablation.variant_failed",
                    &[
                        ("name", mcmap_obs::Value::from(*name)),
                        (
                            "message",
                            mcmap_obs::Value::from(
                                mcmap_resilience::panic_message(payload.as_ref()).as_str(),
                            ),
                        ),
                    ],
                );
            }
        }
    }
    for ((name, _), outcome) in variants.iter().zip(&rows) {
        match outcome {
            Ok((row, ..)) => println!("{row}"),
            Err(payload) => println!(
                "{:22} | analysis panicked: {}",
                name,
                mcmap_resilience::panic_message(payload.as_ref())
            ),
        }
    }
    println!("\nRe-execution is the cheapest technique in power; replication buys back the");
    println!("critical-state WCRT inflation at the cost of permanently duplicated work.");
    knobs.report_wall("ablation-hardening", rows.len(), wall);
    knobs.report_obs("ablation-hardening", &obs);
    if panicked > 0 {
        eprintln!(
            "ablation-hardening: {panicked} of {} variants failed.",
            rows.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
