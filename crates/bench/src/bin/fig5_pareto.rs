//! **Fig. 5** — co-optimization of service and power consumption for the
//! *DT-med* benchmark: the Pareto front of (expected power, retained
//! service) pairs, annotated with each point's dropped application set.
//!
//! The paper obtains five Pareto-optimal points spanning from φ (everything
//! droppable dropped — best power) to {t1, t2, t3} (nothing dropped —
//! maximum service).

use mcmap_bench::{env_u64, env_usize, hook_interrupts, EvalKnobs, INTERRUPTED_EXIT};
use mcmap_benchmarks::dt_med;
use mcmap_core::{explore, DseConfig, ObjectiveMode};
use mcmap_ga::GaConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let pop = env_usize("MCMAP_POP", 60);
    let gens = env_usize("MCMAP_GENS", 200);
    let seed = env_u64("MCMAP_SEED", 8);
    let knobs = EvalKnobs::parse();

    let b = knobs.fleet_or(seed, dt_med());
    let mut cfg = DseConfig {
        ga: GaConfig {
            population: pop,
            generations: gens,
            seed,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::PowerService,
        allow_dropping: true,
        audit: false,
        policies: Some(b.policies.clone()),
        repair_iters: 80,
        ..DseConfig::default()
    };
    knobs.apply(&mut cfg);
    hook_interrupts(&mut cfg);
    cfg.obs = knobs.recorder();
    let outcome = explore(&b.apps, &b.arch, cfg);
    if outcome.interrupted {
        println!("(interrupted — the front below reflects the last completed generation)\n");
    }

    // Collect feasible, distinct (power, service) points.
    let mut points: Vec<(f64, f64, String)> = outcome
        .reports
        .iter()
        .filter(|r| r.feasible)
        .map(|r| {
            let names: Vec<&str> = r.dropped.iter().map(|&a| b.apps.app(a).name()).collect();
            let label = if names.is_empty() {
                "{} (nothing dropped)".to_string()
            } else {
                format!("{{{}}}", names.join(", "))
            };
            (r.power, r.service, label)
        })
        .collect();
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite power"));
    points.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);

    println!(
        "Fig. 5: power-service Pareto front of {} (budget {pop}x{gens}, seed {seed})\n",
        b.name
    );
    println!("{:>12} {:>10}  dropped set T_d", "power [mW]", "service");
    println!("{}", "-".repeat(58));
    for (power, service, label) in &points {
        println!("{power:>12.2} {service:>10.1}  {label}");
    }
    println!(
        "\n{} Pareto-optimal design points (total service available: {:.1}).",
        points.len(),
        b.apps.total_service()
    );
    if points.len() >= 2 {
        let lo = &points[0];
        let hi = points.last().expect("nonempty");
        assert!(
            lo.1 <= hi.1,
            "the cheapest point must not dominate the service-richest point"
        );
        println!(
            "Trade-off span: {:.2} mW at service {:.1} … {:.2} mW at service {:.1}.",
            lo.0, lo.1, hi.0, hi.1
        );
    }
    let label = format!("fig5/{}", b.name);
    knobs.report(&label, &outcome.eval_stats);
    knobs.report_audit(&label, &outcome.audit);
    knobs.report_obs(&label, &outcome.obs);
    if outcome.interrupted {
        return ExitCode::from(INTERRUPTED_EXIT);
    }
    ExitCode::SUCCESS
}
