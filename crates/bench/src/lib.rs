//! # mcmap-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5). Each artifact has a dedicated binary:
//!
//! | binary            | paper artifact |
//! |-------------------|----------------|
//! | `table2_wcrt`     | Table 2 — WCRT of the two critical Cruise applications under Adhoc / WC-Sim / Proposed / Naive |
//! | `sec52_dropping`  | §5.2 — optimized power with vs. without dropping, rescue ratios, hardening mix |
//! | `fig5_pareto`     | Fig. 5 — power–service Pareto front of DT-med |
//! | `fig1_motivation` | Fig. 1 — the motivational task-dropping scenario |
//!
//! Budgets are configurable through environment variables (`MCMAP_POP`,
//! `MCMAP_GENS`, `MCMAP_SIM_RUNS`, `MCMAP_SEED`) so the tables regenerate in
//! minutes by default and can be pushed towards the paper's 100×5000 budget
//! when time allows.

#![warn(missing_docs)]

use mcmap_benchmarks::Benchmark;
use mcmap_core::{repair_reliability, repair_structure, GenomeSpace};
use mcmap_hardening::{harden, HardenedSystem};
use mcmap_model::{AppId, ProcId};
use mcmap_sched::Mapping;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reads a `usize` experiment parameter from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` experiment parameter from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A concrete design (hardening + mapping + dropped set) of a benchmark,
/// used by the Table 2 experiment as a "sample mapping".
#[derive(Debug)]
pub struct SampleDesign {
    /// The hardened system.
    pub hsys: HardenedSystem,
    /// The task-to-processor binding.
    pub mapping: Mapping,
    /// The dropped application set `T_d`.
    pub dropped: Vec<AppId>,
}

/// Generates `count` distinct sample designs of a benchmark by sampling
/// repaired chromosomes (clustered seeds mixed with uniform ones) and
/// keeping those whose fault-free state converges.
pub fn sample_designs(b: &Benchmark, count: usize, seed: u64) -> Vec<SampleDesign> {
    let space = GenomeSpace::new(&b.apps, &b.arch);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut designs = Vec::new();
    let mut attempts = 0;
    while designs.len() < count && attempts < 500 {
        attempts += 1;
        let mut g = if attempts % 2 == 0 {
            space.clustered(&mut rng)
        } else {
            space.random(&mut rng)
        };
        repair_structure(&mut g, &space, &mut rng);
        if !repair_reliability(&mut g, &space, &b.apps, &b.arch, &mut rng, 80) {
            continue;
        }
        let (plan, dropped, bindings) = space.decode(&g);
        let Ok(hsys) = harden(&b.apps, &plan, &b.arch) else {
            continue;
        };
        let placement: Vec<ProcId> = hsys
            .tasks()
            .map(|(_, t)| match t.fixed_proc {
                Some(p) => p,
                None => bindings[hsys.flat_of_origin(t.origin).expect("origin tracked")],
            })
            .collect();
        let Ok(mapping) = Mapping::new(&hsys, &b.arch, placement) else {
            continue;
        };
        // Keep designs whose fault-free state is well-behaved.
        let analysis = mcmap_core::analyze(&hsys, &b.arch, &mapping, &b.policies, &dropped);
        if !analysis.normal.converged || !analysis.worst.converged {
            continue;
        }
        designs.push(SampleDesign {
            hsys,
            mapping,
            dropped,
        });
    }
    designs
}

/// Formats a time value for table output (`-` for [`mcmap_model::Time::MAX`]).
pub fn fmt_time(t: mcmap_model::Time) -> String {
    if t == mcmap_model::Time::MAX {
        "-".to_string()
    } else {
        t.ticks().to_string()
    }
}

/// Output format of an `--eval-stats` report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Human-readable multi-line text.
    Text,
    /// Single-object JSON (for `BENCH_*.json` tooling).
    Json,
}

/// The shared evaluation-engine knobs of every experiment binary:
/// `--threads N` / `MCMAP_THREADS`, `--cache-cap N` / `MCMAP_CACHE_CAP`,
/// and `--eval-stats [text|json]` / `MCMAP_EVAL_STATS=text|json`.
///
/// CLI flags take precedence over environment variables. `threads == 0`
/// (the default) means one worker per available core — results are
/// bit-identical for any thread count, so this is purely a speed knob.
#[derive(Debug, Clone, Copy)]
pub struct EvalKnobs {
    /// Evaluation worker threads (0 = one per core).
    pub threads: usize,
    /// Memoization-cache entry bound (0 disables caching).
    pub cache_cap: usize,
    /// When set, print engine instrumentation after the run.
    pub eval_stats: Option<StatsFormat>,
}

impl EvalKnobs {
    /// Reads the knobs from the process arguments and environment.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// Reads the knobs from an explicit argument list (env as fallback).
    pub fn from_args(args: &[String]) -> Self {
        let value_of = |flag: &str| -> Option<String> {
            args.iter().position(|a| a == flag).and_then(|i| {
                args.get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .or(Some(String::new()))
            })
        };
        let stats_env = std::env::var("MCMAP_EVAL_STATS").ok();
        let stats_arg = value_of("--eval-stats");
        let eval_stats = match (stats_arg, stats_env) {
            (Some(v), _) | (None, Some(v)) => match v.as_str() {
                "json" => Some(StatsFormat::Json),
                "0" | "off" => None,
                _ => Some(StatsFormat::Text),
            },
            (None, None) => None,
        };
        EvalKnobs {
            threads: value_of("--threads")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| env_usize("MCMAP_THREADS", 0)),
            cache_cap: value_of("--cache-cap")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| env_usize("MCMAP_CACHE_CAP", 65_536)),
            eval_stats,
        }
    }

    /// Applies the knobs to an exploration config.
    pub fn apply(&self, cfg: &mut mcmap_core::DseConfig) {
        cfg.ga.threads = self.threads;
        cfg.cache_cap = self.cache_cap;
    }

    /// Prints one engine snapshot in the requested format (no-op when
    /// `--eval-stats` was not requested).
    pub fn report(&self, label: &str, stats: &mcmap_core::EvalStats) {
        match self.eval_stats {
            None => {}
            Some(StatsFormat::Text) => {
                println!("\n[{label}]");
                print!("{}", stats.render_text());
            }
            Some(StatsFormat::Json) => {
                println!("{{\"label\":\"{label}\",\"eval\":{}}}", stats.to_json());
            }
        }
    }

    /// Prints a plain wall-clock throughput line for binaries whose work is
    /// a fixed item list rather than a GA population (no-op when
    /// `--eval-stats` was not requested).
    pub fn report_wall(&self, label: &str, items: usize, wall: std::time::Duration) {
        let secs = wall.as_secs_f64();
        let rate = if secs > 0.0 { items as f64 / secs } else { 0.0 };
        match self.eval_stats {
            None => {}
            Some(StatsFormat::Text) => {
                println!(
                    "\n[{label}] {items} items in {secs:.3} s ({rate:.2} items/s, threads = {})",
                    self.threads
                );
            }
            Some(StatsFormat::Json) => {
                println!(
                    "{{\"label\":\"{label}\",\"items\":{items},\"wall_secs\":{secs:.6},\
                     \"items_per_sec\":{rate:.3},\"threads\":{}}}",
                    self.threads
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_model::Time;

    #[test]
    fn env_parsers_fall_back_to_defaults() {
        assert_eq!(env_usize("MCMAP_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_u64("MCMAP_DOES_NOT_EXIST", 9), 9);
    }

    #[test]
    fn fmt_time_renders_unbounded_as_dash() {
        assert_eq!(fmt_time(Time::from_ticks(42)), "42");
        assert_eq!(fmt_time(Time::MAX), "-");
    }

    #[test]
    fn eval_knobs_parse_flags() {
        let args: Vec<String> = [
            "--threads",
            "4",
            "--cache-cap",
            "128",
            "--eval-stats",
            "json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let k = EvalKnobs::from_args(&args);
        assert_eq!(k.threads, 4);
        assert_eq!(k.cache_cap, 128);
        assert_eq!(k.eval_stats, Some(StatsFormat::Json));

        // A bare `--eval-stats` (even as the last flag) means text.
        let k = EvalKnobs::from_args(&["--eval-stats".to_string()]);
        assert_eq!(k.eval_stats, Some(StatsFormat::Text));

        // The flag value must not swallow a following flag.
        let args: Vec<String> = ["--eval-stats", "--threads", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let k = EvalKnobs::from_args(&args);
        assert_eq!(k.eval_stats, Some(StatsFormat::Text));
        assert_eq!(k.threads, 2);
    }

    #[test]
    fn sample_designs_produce_valid_converging_designs() {
        let b = mcmap_benchmarks::cruise();
        let designs = sample_designs(&b, 3, 11);
        assert_eq!(designs.len(), 3);
        for d in &designs {
            // Placement covers all tasks and honours fixed slots.
            assert_eq!(d.mapping.placement().len(), d.hsys.num_tasks());
            for (id, t) in d.hsys.tasks() {
                if let Some(p) = t.fixed_proc {
                    assert_eq!(d.mapping.proc_of(id), p);
                }
            }
            // The dropped set only names droppable applications.
            for a in &d.dropped {
                assert!(b.apps.app(*a).criticality().is_droppable());
            }
        }
    }
}
