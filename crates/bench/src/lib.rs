//! # mcmap-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5). Each artifact has a dedicated binary:
//!
//! | binary            | paper artifact |
//! |-------------------|----------------|
//! | `table2_wcrt`     | Table 2 — WCRT of the two critical Cruise applications under Adhoc / WC-Sim / Proposed / Naive |
//! | `sec52_dropping`  | §5.2 — optimized power with vs. without dropping, rescue ratios, hardening mix |
//! | `fig5_pareto`     | Fig. 5 — power–service Pareto front of DT-med |
//! | `fig1_motivation` | Fig. 1 — the motivational task-dropping scenario |
//!
//! Budgets are configurable through environment variables (`MCMAP_POP`,
//! `MCMAP_GENS`, `MCMAP_SIM_RUNS`, `MCMAP_SEED`) so the tables regenerate in
//! minutes by default and can be pushed towards the paper's 100×5000 budget
//! when time allows.

#![warn(missing_docs)]

use mcmap_benchmarks::Benchmark;
use mcmap_core::{repair_reliability, repair_structure, GenomeSpace};
use mcmap_hardening::{harden, HardenedSystem};
use mcmap_model::{AppId, ProcId};
use mcmap_sched::Mapping;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reads a `usize` experiment parameter from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` experiment parameter from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A concrete design (hardening + mapping + dropped set) of a benchmark,
/// used by the Table 2 experiment as a "sample mapping".
#[derive(Debug)]
pub struct SampleDesign {
    /// The hardened system.
    pub hsys: HardenedSystem,
    /// The task-to-processor binding.
    pub mapping: Mapping,
    /// The dropped application set `T_d`.
    pub dropped: Vec<AppId>,
}

/// Generates `count` distinct sample designs of a benchmark by sampling
/// repaired chromosomes (clustered seeds mixed with uniform ones) and
/// keeping those whose fault-free state converges.
pub fn sample_designs(b: &Benchmark, count: usize, seed: u64) -> Vec<SampleDesign> {
    let space = GenomeSpace::new(&b.apps, &b.arch);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut designs = Vec::new();
    let mut attempts = 0;
    while designs.len() < count && attempts < 500 {
        attempts += 1;
        let mut g = if attempts % 2 == 0 {
            space.clustered(&mut rng)
        } else {
            space.random(&mut rng)
        };
        repair_structure(&mut g, &space, &mut rng);
        if !repair_reliability(&mut g, &space, &b.apps, &b.arch, &mut rng, 80) {
            continue;
        }
        let (plan, dropped, bindings) = space.decode(&g);
        let Ok(hsys) = harden(&b.apps, &plan, &b.arch) else {
            continue;
        };
        let placement: Vec<ProcId> = hsys
            .tasks()
            .map(|(_, t)| match t.fixed_proc {
                Some(p) => p,
                None => bindings[hsys.flat_of_origin(t.origin).expect("origin tracked")],
            })
            .collect();
        let Ok(mapping) = Mapping::new(&hsys, &b.arch, placement) else {
            continue;
        };
        // Keep designs whose fault-free state is well-behaved.
        let analysis = mcmap_core::analyze(&hsys, &b.arch, &mapping, &b.policies, &dropped);
        if !analysis.normal.converged || !analysis.worst.converged {
            continue;
        }
        designs.push(SampleDesign {
            hsys,
            mapping,
            dropped,
        });
    }
    designs
}

/// Formats a time value for table output (`-` for [`mcmap_model::Time::MAX`]).
pub fn fmt_time(t: mcmap_model::Time) -> String {
    if t == mcmap_model::Time::MAX {
        "-".to_string()
    } else {
        t.ticks().to_string()
    }
}

/// Output format of an `--eval-stats` report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Human-readable multi-line text.
    Text,
    /// Single-object JSON (for `BENCH_*.json` tooling).
    Json,
}

/// The shared evaluation-engine and observability knobs of every experiment
/// binary: `--threads N` / `MCMAP_THREADS`, `--cache-cap N` /
/// `MCMAP_CACHE_CAP`, `--eval-stats [text|json]` /
/// `MCMAP_EVAL_STATS=text|json`, `--trace <path.jsonl>` / `MCMAP_TRACE`,
/// `--obs-summary [text|json]` / `MCMAP_OBS_SUMMARY`, `--gen-stats
/// [text|json]` / `MCMAP_GEN_STATS`, `--audit [text|json]` /
/// `MCMAP_AUDIT`, plus the analysis fast-path knobs `--scenario-threads N`
/// / `MCMAP_SCENARIO_THREADS`, `--no-warm-start` / `MCMAP_NO_WARM_START`,
/// `--no-prune` / `MCMAP_NO_PRUNE`, `--no-delta` / `MCMAP_NO_DELTA`, and
/// the workload override `--fleet <preset>` / `MCMAP_FLEET`.
///
/// CLI flags take precedence over environment variables. `threads == 0`
/// (the default) means one worker per available core — results are
/// bit-identical for any thread count, so this is purely a speed knob; so
/// are all the observability flags (tracing never perturbs the search) and
/// the analysis fast-path knobs (warm starts, scenario pruning, and the
/// scenario thread count all reproduce the cold reference bit-for-bit).
#[derive(Debug, Clone)]
pub struct EvalKnobs {
    /// Evaluation worker threads (0 = one per core).
    pub threads: usize,
    /// Memoization-cache entry bound (0 disables caching).
    pub cache_cap: usize,
    /// When set, print engine instrumentation after the run.
    pub eval_stats: Option<StatsFormat>,
    /// When set, stream the full event trace to this JSONL file.
    pub trace: Option<String>,
    /// When set, print the trace profile (spans / counters / generations)
    /// after the run.
    pub obs_summary: Option<StatsFormat>,
    /// When set, print the per-generation GA convergence table after the
    /// run.
    pub gen_stats: Option<StatsFormat>,
    /// When set, enable the §5.2 solution audit and print its snapshot
    /// after the run.
    pub audit: Option<StatsFormat>,
    /// When set, checkpoint the exploration to this path after every
    /// generation (`--checkpoint` / `MCMAP_CHECKPOINT`).
    pub checkpoint: Option<String>,
    /// When set, resume the exploration from this checkpoint
    /// (`--resume` / `MCMAP_RESUME`).
    pub resume: Option<String>,
    /// Retry budget for candidates whose evaluation panics
    /// (`--eval-retries` / `MCMAP_EVAL_RETRIES`, default 1).
    pub eval_retries: u32,
    /// Worker threads for the per-candidate scenario fan-out
    /// (`--scenario-threads` / `MCMAP_SCENARIO_THREADS`, default 1 —
    /// candidate-level parallelism usually saturates the cores already).
    pub scenario_threads: usize,
    /// Disables warm-started scenario fixed points
    /// (`--no-warm-start` / `MCMAP_NO_WARM_START`).
    pub no_warm_start: bool,
    /// Disables dominance pruning of scenario bound-vectors
    /// (`--no-prune` / `MCMAP_NO_PRUNE`).
    pub no_prune: bool,
    /// Disables the incremental genome-delta analysis
    /// (`--no-delta` / `MCMAP_NO_DELTA`).
    pub no_delta: bool,
    /// When set, swap the experiment's benchmark for a generated fleet
    /// preset (`--fleet <fleet-small|fleet-med|fleet-large>` /
    /// `MCMAP_FLEET`) — the 500–5000-task workloads the parallel
    /// evaluation path is sized against.
    pub fleet: Option<String>,
}

impl EvalKnobs {
    /// Reads the knobs from the process arguments and environment.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// Reads the knobs from an explicit argument list (env as fallback).
    pub fn from_args(args: &[String]) -> Self {
        let value_of = |flag: &str| -> Option<String> {
            args.iter().position(|a| a == flag).and_then(|i| {
                args.get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .or(Some(String::new()))
            })
        };
        let format_knob = |flag: &str, env: &str| -> Option<StatsFormat> {
            let arg = value_of(flag);
            match (arg, std::env::var(env).ok()) {
                (Some(v), _) | (None, Some(v)) => match v.as_str() {
                    "json" => Some(StatsFormat::Json),
                    "0" | "off" => None,
                    _ => Some(StatsFormat::Text),
                },
                (None, None) => None,
            }
        };
        EvalKnobs {
            threads: value_of("--threads")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| env_usize("MCMAP_THREADS", 0)),
            cache_cap: value_of("--cache-cap")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| env_usize("MCMAP_CACHE_CAP", 65_536)),
            eval_stats: format_knob("--eval-stats", "MCMAP_EVAL_STATS"),
            trace: value_of("--trace")
                .filter(|v| !v.is_empty())
                .or_else(|| std::env::var("MCMAP_TRACE").ok())
                .filter(|v| !v.is_empty()),
            obs_summary: format_knob("--obs-summary", "MCMAP_OBS_SUMMARY"),
            gen_stats: format_knob("--gen-stats", "MCMAP_GEN_STATS"),
            audit: format_knob("--audit", "MCMAP_AUDIT"),
            checkpoint: value_of("--checkpoint")
                .filter(|v| !v.is_empty())
                .or_else(|| std::env::var("MCMAP_CHECKPOINT").ok())
                .filter(|v| !v.is_empty()),
            resume: value_of("--resume")
                .filter(|v| !v.is_empty())
                .or_else(|| std::env::var("MCMAP_RESUME").ok())
                .filter(|v| !v.is_empty()),
            eval_retries: value_of("--eval-retries")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| env_u64("MCMAP_EVAL_RETRIES", 1) as u32),
            scenario_threads: value_of("--scenario-threads")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| env_usize("MCMAP_SCENARIO_THREADS", 1)),
            no_warm_start: args.iter().any(|a| a == "--no-warm-start")
                || env_usize("MCMAP_NO_WARM_START", 0) != 0,
            no_prune: args.iter().any(|a| a == "--no-prune") || env_usize("MCMAP_NO_PRUNE", 0) != 0,
            no_delta: args.iter().any(|a| a == "--no-delta") || env_usize("MCMAP_NO_DELTA", 0) != 0,
            fleet: value_of("--fleet")
                .filter(|v| !v.is_empty())
                .or_else(|| std::env::var("MCMAP_FLEET").ok())
                .filter(|v| !v.is_empty()),
        }
    }

    /// Resolves the `--fleet` knob into its preset configuration, or
    /// `None` when the knob is unset. Exits the process (code 2) on an
    /// unknown preset name — silently running the wrong workload would be
    /// worse.
    pub fn fleet_config(&self) -> Option<mcmap_benchmarks::FleetConfig> {
        let name = self.fleet.as_deref()?;
        match mcmap_benchmarks::fleet_preset(name) {
            Some(cfg) => Some(cfg),
            None => {
                eprintln!(
                    "mcmap: unknown fleet preset {name:?} \
                     (known: fleet-small, fleet-med, fleet-large)"
                );
                std::process::exit(2);
            }
        }
    }

    /// Swaps `fallback` for the generated `--fleet` benchmark when the
    /// knob is set. Experiment binaries call this right after picking
    /// their paper benchmark, so every DSE-driven experiment can run at
    /// fleet scale without new plumbing.
    pub fn fleet_or(&self, seed: u64, fallback: Benchmark) -> Benchmark {
        match self.fleet_config() {
            Some(cfg) => mcmap_benchmarks::fleet(&cfg, seed),
            None => fallback,
        }
    }

    /// Whether any observability output (trace file, profile summary,
    /// generation table) was requested.
    pub fn wants_obs(&self) -> bool {
        self.trace.is_some() || self.obs_summary.is_some() || self.gen_stats.is_some()
    }

    /// Builds the recorder the requested observability knobs imply: the
    /// disabled no-op recorder when none was asked for, otherwise an
    /// in-memory ring plus, with `--trace`, a JSONL file sink.
    ///
    /// Build it **once per process** and clone it into every
    /// [`DseConfig`](mcmap_core::DseConfig) (clones share the same sinks
    /// and sequence counter): rebuilding would truncate the trace file
    /// between runs.
    ///
    /// Exits the process (code 2) when the trace file cannot be created —
    /// silently dropping a requested trace would be worse.
    pub fn recorder(&self) -> mcmap_obs::Recorder {
        if !self.wants_obs() {
            return mcmap_obs::Recorder::default();
        }
        // Attach only the sinks the requested outputs need: the in-memory
        // ring exists for in-process readback (`--obs-summary` /
        // `--gen-stats`), so a pure `--trace` run skips it and pays for
        // exactly one sink on the emission hot path.
        let mut builder = mcmap_obs::RecorderBuilder::new();
        if self.obs_summary.is_some() || self.gen_stats.is_some() {
            builder = builder.ring(1 << 20);
        }
        if let Some(path) = &self.trace {
            let file = std::path::Path::new(path);
            let attached = match self.resume_trace_seq() {
                Some(trace_seq) => {
                    salvage_trace(file, trace_seq);
                    builder.jsonl_append(file, trace_seq)
                }
                None => builder.jsonl(file),
            };
            builder = match attached {
                Ok(b) => b,
                Err(err) => {
                    eprintln!("mcmap: cannot create trace file {path}: {err}");
                    std::process::exit(2);
                }
            };
        }
        builder.build()
    }

    /// The checkpoint's trace high-water mark when this run resumes, or
    /// `None` for a fresh run. An unreadable checkpoint also yields `None`
    /// here — the exploration itself reports the typed error.
    fn resume_trace_seq(&self) -> Option<u64> {
        let resume = self.resume.as_ref()?;
        mcmap_core::read_checkpoint_with_fallback(std::path::Path::new(resume))
            .ok()
            .map(|(ckpt, _)| ckpt.trace_seq)
    }

    /// Applies the knobs to an exploration config (threads, cache bound,
    /// audit mode). The observability recorder is installed separately —
    /// build it once with [`Self::recorder`] and clone it into
    /// `cfg.obs` — because rebuilding it per config would truncate the
    /// trace file between runs.
    pub fn apply(&self, cfg: &mut mcmap_core::DseConfig) {
        cfg.ga.threads = self.threads;
        cfg.cache_cap = self.cache_cap;
        if self.audit.is_some() {
            cfg.audit = true;
        }
        cfg.resilience.checkpoint = self.checkpoint.as_ref().map(std::path::PathBuf::from);
        cfg.resilience.resume = self.resume.as_ref().map(std::path::PathBuf::from);
        cfg.resilience.eval_retries = self.eval_retries;
        cfg.analysis = mcmap_core::AnalysisOptions {
            warm_start: !self.no_warm_start,
            prune: !self.no_prune,
            scenario_threads: self.scenario_threads,
        };
        cfg.delta = !self.no_delta;
        // A fleet run also deepens the hardening space to the preset's
        // bounds — that is part of what makes the workload fleet-scale.
        if let Some(fleet) = self.fleet_config() {
            cfg.max_reexec = fleet.max_reexec;
            cfg.max_replicas = fleet.max_replicas;
        }
    }

    /// Prints one engine snapshot in the requested format (no-op when
    /// `--eval-stats` was not requested).
    pub fn report(&self, label: &str, stats: &mcmap_core::EvalStats) {
        match self.eval_stats {
            None => {}
            Some(StatsFormat::Text) => {
                println!("\n[{label}]");
                print!("{}", stats.render_text());
            }
            Some(StatsFormat::Json) => {
                println!("{{\"label\":\"{label}\",\"eval\":{}}}", stats.to_json());
            }
        }
    }

    /// Prints one WCRT-analysis effort snapshot in the requested format
    /// (no-op when `--eval-stats` was not requested). Piggybacks on the
    /// `--eval-stats` knob because the analysis counters answer the same
    /// question — where did the evaluation time go — at the layer below.
    pub fn report_analysis(&self, label: &str, stats: &mcmap_core::AnalysisStats) {
        match self.eval_stats {
            None => {}
            Some(StatsFormat::Text) => {
                println!("\n[{label}]");
                print!("{}", stats.render_text());
            }
            Some(StatsFormat::Json) => {
                println!("{{\"label\":\"{label}\",\"analysis\":{}}}", stats.to_json());
            }
        }
    }

    /// Prints the requested observability reports for a finished run: the
    /// trace-file confirmation, the `--obs-summary` profile, and the
    /// `--gen-stats` convergence table (no-op when none was requested).
    pub fn report_obs(&self, label: &str, telemetry: &mcmap_obs::Recorder) {
        telemetry.flush();
        // A lossy trace is worse than no trace when it goes unnoticed:
        // surface ring overwrites and JSONL write failures unconditionally.
        let dropped = telemetry.dropped_events();
        if dropped > 0 {
            eprintln!(
                "[{label}] WARNING: {dropped} event(s) dropped (ring overwritten or \
                 trace-file write failed) — the recorded trace is incomplete"
            );
        }
        if let Some(path) = &self.trace {
            println!(
                "[{label}] trace written to {path} ({} events)",
                telemetry.emitted()
            );
        }
        if self.obs_summary.is_none() && self.gen_stats.is_none() {
            return;
        }
        let profile = mcmap_obs::TraceProfile::from_events(&telemetry.events());
        match self.obs_summary {
            None => {}
            Some(StatsFormat::Text) => {
                println!("\n[{label}] observability profile");
                print!("{}", profile.render_text());
            }
            Some(StatsFormat::Json) => {
                println!("{{\"label\":\"{label}\",\"obs\":{}}}", profile.to_json());
            }
        }
        match self.gen_stats {
            None => {}
            Some(StatsFormat::Text) => {
                println!("\n[{label}] generations");
                print!("{}", profile.render_generations());
            }
            Some(StatsFormat::Json) => {
                println!(
                    "{{\"label\":\"{label}\",\"generations\":{}}}",
                    profile.generations_json()
                );
            }
        }
    }

    /// Prints the `--audit` snapshot report (no-op when not requested).
    pub fn report_audit(&self, label: &str, audit: &mcmap_core::AuditSnapshot) {
        match self.audit {
            None => {}
            Some(StatsFormat::Text) => {
                println!("\n[{label}]");
                print!("{}", audit.render_text());
            }
            Some(StatsFormat::Json) => {
                println!("{{\"label\":\"{label}\",\"audit\":{}}}", audit.to_json());
            }
        }
    }

    /// Prints a plain wall-clock throughput line for binaries whose work is
    /// a fixed item list rather than a GA population (no-op when
    /// `--eval-stats` was not requested).
    pub fn report_wall(&self, label: &str, items: usize, wall: std::time::Duration) {
        let secs = wall.as_secs_f64();
        let rate = if secs > 0.0 { items as f64 / secs } else { 0.0 };
        match self.eval_stats {
            None => {}
            Some(StatsFormat::Text) => {
                println!(
                    "\n[{label}] {items} items in {secs:.3} s ({rate:.2} items/s, threads = {})",
                    self.threads
                );
            }
            Some(StatsFormat::Json) => {
                println!(
                    "{{\"label\":\"{label}\",\"items\":{items},\"wall_secs\":{secs:.6},\
                     \"items_per_sec\":{rate:.3},\"threads\":{}}}",
                    self.threads
                );
            }
        }
    }
}

/// Rewrites the trace file at `path` down to its valid prefix of events
/// with `seq <= trace_seq` — the part the checkpoint being resumed from
/// vouches for. A crash can leave a torn final line and events past the
/// checkpoint boundary (the interrupted process kept running); both must
/// go before the resumed run appends, or the stitched stream would differ
/// from an uninterrupted run's. The rewrite is atomic (write-temp, fsync,
/// rename) so a crash *here* cannot make things worse.
fn salvage_trace(path: &std::path::Path, trace_seq: u64) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let (events, recovery) = mcmap_obs::events_from_jsonl_lossy(&text);
    let mut out = String::with_capacity(text.len());
    let mut kept = 0usize;
    for event in &events {
        if event.seq <= trace_seq {
            event.write_jsonl(&mut out);
            out.push('\n');
            kept += 1;
        }
    }
    if out == text {
        return;
    }
    let dropped = events.len() - kept;
    if dropped > 0 || recovery.lossy() {
        eprintln!(
            "mcmap: salvaged trace {}: kept {kept} event(s) up to seq {trace_seq}, \
             dropped {dropped} event(s) past the checkpoint and {} torn byte(s)",
            path.display(),
            recovery.dropped_bytes
        );
    }
    if let Err(err) = mcmap_resilience::atomic_write(path, out.as_bytes()) {
        eprintln!("mcmap: cannot salvage trace {}: {err}", path.display());
        std::process::exit(2);
    }
}

/// Installs the process-wide SIGINT/SIGTERM stop flag and wires it into an
/// exploration config: a signalled run finishes its current generation,
/// writes its checkpoint (when enabled), flushes the trace, and returns
/// with `interrupted = true` instead of dying mid-write.
pub fn hook_interrupts(cfg: &mut mcmap_core::DseConfig) {
    cfg.resilience.stop = Some(mcmap_resilience::install_stop_flag());
}

/// Conventional exit code of a run stopped by SIGINT/SIGTERM (128 + SIGINT).
pub const INTERRUPTED_EXIT: u8 = 130;

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_model::Time;

    #[test]
    fn env_parsers_fall_back_to_defaults() {
        assert_eq!(env_usize("MCMAP_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_u64("MCMAP_DOES_NOT_EXIST", 9), 9);
    }

    #[test]
    fn fmt_time_renders_unbounded_as_dash() {
        assert_eq!(fmt_time(Time::from_ticks(42)), "42");
        assert_eq!(fmt_time(Time::MAX), "-");
    }

    #[test]
    fn eval_knobs_parse_flags() {
        let args: Vec<String> = [
            "--threads",
            "4",
            "--cache-cap",
            "128",
            "--eval-stats",
            "json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let k = EvalKnobs::from_args(&args);
        assert_eq!(k.threads, 4);
        assert_eq!(k.cache_cap, 128);
        assert_eq!(k.eval_stats, Some(StatsFormat::Json));
        assert_eq!(k.scenario_threads, 1, "fast-path default");
        assert!(!k.no_warm_start);
        assert!(!k.no_prune);

        // A bare `--eval-stats` (even as the last flag) means text.
        let k = EvalKnobs::from_args(&["--eval-stats".to_string()]);
        assert_eq!(k.eval_stats, Some(StatsFormat::Text));

        // The flag value must not swallow a following flag.
        let args: Vec<String> = ["--eval-stats", "--threads", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let k = EvalKnobs::from_args(&args);
        assert_eq!(k.eval_stats, Some(StatsFormat::Text));
        assert_eq!(k.threads, 2);
    }

    #[test]
    fn eval_knobs_parse_analysis_flags() {
        let args: Vec<String> = [
            "--scenario-threads",
            "3",
            "--no-warm-start",
            "--no-prune",
            "--no-delta",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let k = EvalKnobs::from_args(&args);
        assert_eq!(k.scenario_threads, 3);
        assert!(k.no_warm_start);
        assert!(k.no_prune);
        assert!(k.no_delta);

        let mut cfg = mcmap_core::DseConfig::default();
        k.apply(&mut cfg);
        assert!(!cfg.analysis.warm_start);
        assert!(!cfg.analysis.prune);
        assert_eq!(cfg.analysis.scenario_threads, 3);
        assert!(!cfg.delta);

        // The defaults leave the fast path on.
        let k = EvalKnobs::from_args(&[]);
        let mut cfg = mcmap_core::DseConfig::default();
        k.apply(&mut cfg);
        assert!(cfg.analysis.warm_start);
        assert!(cfg.analysis.prune);
        assert_eq!(cfg.analysis.scenario_threads, 1);
        assert!(cfg.delta);
    }

    #[test]
    fn eval_knobs_parse_obs_flags() {
        let args: Vec<String> = [
            "--trace",
            "/tmp/x.jsonl",
            "--obs-summary",
            "json",
            "--gen-stats",
            "--audit",
            "json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let k = EvalKnobs::from_args(&args);
        assert_eq!(k.trace.as_deref(), Some("/tmp/x.jsonl"));
        assert_eq!(k.obs_summary, Some(StatsFormat::Json));
        assert_eq!(k.gen_stats, Some(StatsFormat::Text));
        assert_eq!(k.audit, Some(StatsFormat::Json));
        assert!(k.wants_obs());

        let k = EvalKnobs::from_args(&[]);
        assert_eq!(k.trace, None);
        assert!(!k.wants_obs());
        assert!(!k.recorder().enabled(), "no knobs → disabled recorder");

        // An enabled recorder without --trace is ring-only.
        let k = EvalKnobs::from_args(&["--obs-summary".to_string()]);
        assert!(k.recorder().enabled());

        // `--audit` also flips the exploration into audit mode.
        let mut cfg = mcmap_core::DseConfig::default();
        assert!(!cfg.audit);
        k.apply(&mut cfg);
        assert!(!cfg.audit, "no --audit flag, mode untouched");
        let k = EvalKnobs::from_args(&["--audit".to_string()]);
        k.apply(&mut cfg);
        assert!(cfg.audit);
    }

    #[test]
    fn fleet_knob_swaps_the_benchmark_and_deepens_hardening() {
        let args: Vec<String> = ["--fleet", "fleet-small"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let k = EvalKnobs::from_args(&args);
        assert_eq!(k.fleet.as_deref(), Some("fleet-small"));
        let b = k.fleet_or(7, mcmap_benchmarks::cruise());
        assert!(b.name.starts_with("fleet-small"), "got {}", b.name);
        assert_eq!(b.arch.num_processors(), 16);
        let mut cfg = mcmap_core::DseConfig::default();
        k.apply(&mut cfg);
        let preset = mcmap_benchmarks::fleet_small_config();
        assert_eq!(cfg.max_reexec, preset.max_reexec);
        assert_eq!(cfg.max_replicas, preset.max_replicas);

        // Unset knob: the fallback benchmark and config pass through.
        let k = EvalKnobs::from_args(&[]);
        assert_eq!(k.fleet, None);
        assert_eq!(k.fleet_or(7, mcmap_benchmarks::cruise()).name, "Cruise");
        let mut cfg = mcmap_core::DseConfig::default();
        let (reexec, replicas) = (cfg.max_reexec, cfg.max_replicas);
        k.apply(&mut cfg);
        assert_eq!((cfg.max_reexec, cfg.max_replicas), (reexec, replicas));
    }

    #[test]
    fn sample_designs_produce_valid_converging_designs() {
        let b = mcmap_benchmarks::cruise();
        let designs = sample_designs(&b, 3, 11);
        assert_eq!(designs.len(), 3);
        for d in &designs {
            // Placement covers all tasks and honours fixed slots.
            assert_eq!(d.mapping.placement().len(), d.hsys.num_tasks());
            for (id, t) in d.hsys.tasks() {
                if let Some(p) = t.fixed_proc {
                    assert_eq!(d.mapping.proc_of(id), p);
                }
            }
            // The dropped set only names droppable applications.
            for a in &d.dropped {
                assert!(b.apps.app(*a).criticality().is_droppable());
            }
        }
    }
}
