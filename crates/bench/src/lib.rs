//! # mcmap-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5). Each artifact has a dedicated binary:
//!
//! | binary            | paper artifact |
//! |-------------------|----------------|
//! | `table2_wcrt`     | Table 2 — WCRT of the two critical Cruise applications under Adhoc / WC-Sim / Proposed / Naive |
//! | `sec52_dropping`  | §5.2 — optimized power with vs. without dropping, rescue ratios, hardening mix |
//! | `fig5_pareto`     | Fig. 5 — power–service Pareto front of DT-med |
//! | `fig1_motivation` | Fig. 1 — the motivational task-dropping scenario |
//!
//! Budgets are configurable through environment variables (`MCMAP_POP`,
//! `MCMAP_GENS`, `MCMAP_SIM_RUNS`, `MCMAP_SEED`) so the tables regenerate in
//! minutes by default and can be pushed towards the paper's 100×5000 budget
//! when time allows.

#![warn(missing_docs)]

use mcmap_benchmarks::Benchmark;
use mcmap_core::{repair_reliability, repair_structure, GenomeSpace};
use mcmap_hardening::{harden, HardenedSystem};
use mcmap_model::{AppId, ProcId};
use mcmap_sched::Mapping;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reads a `usize` experiment parameter from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` experiment parameter from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A concrete design (hardening + mapping + dropped set) of a benchmark,
/// used by the Table 2 experiment as a "sample mapping".
#[derive(Debug)]
pub struct SampleDesign {
    /// The hardened system.
    pub hsys: HardenedSystem,
    /// The task-to-processor binding.
    pub mapping: Mapping,
    /// The dropped application set `T_d`.
    pub dropped: Vec<AppId>,
}

/// Generates `count` distinct sample designs of a benchmark by sampling
/// repaired chromosomes (clustered seeds mixed with uniform ones) and
/// keeping those whose fault-free state converges.
pub fn sample_designs(b: &Benchmark, count: usize, seed: u64) -> Vec<SampleDesign> {
    let space = GenomeSpace::new(&b.apps, &b.arch);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut designs = Vec::new();
    let mut attempts = 0;
    while designs.len() < count && attempts < 500 {
        attempts += 1;
        let mut g = if attempts % 2 == 0 {
            space.clustered(&mut rng)
        } else {
            space.random(&mut rng)
        };
        repair_structure(&mut g, &space, &mut rng);
        if !repair_reliability(&mut g, &space, &b.apps, &b.arch, &mut rng, 80) {
            continue;
        }
        let (plan, dropped, bindings) = space.decode(&g);
        let Ok(hsys) = harden(&b.apps, &plan, &b.arch) else {
            continue;
        };
        let placement: Vec<ProcId> = hsys
            .tasks()
            .map(|(_, t)| match t.fixed_proc {
                Some(p) => p,
                None => bindings[hsys.flat_of_origin(t.origin).expect("origin tracked")],
            })
            .collect();
        let Ok(mapping) = Mapping::new(&hsys, &b.arch, placement) else {
            continue;
        };
        // Keep designs whose fault-free state is well-behaved.
        let analysis = mcmap_core::analyze(&hsys, &b.arch, &mapping, &b.policies, &dropped);
        if !analysis.normal.converged || !analysis.worst.converged {
            continue;
        }
        designs.push(SampleDesign {
            hsys,
            mapping,
            dropped,
        });
    }
    designs
}

/// Formats a time value for table output (`-` for [`mcmap_model::Time::MAX`]).
pub fn fmt_time(t: mcmap_model::Time) -> String {
    if t == mcmap_model::Time::MAX {
        "-".to_string()
    } else {
        t.ticks().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_model::Time;

    #[test]
    fn env_parsers_fall_back_to_defaults() {
        assert_eq!(env_usize("MCMAP_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_u64("MCMAP_DOES_NOT_EXIST", 9), 9);
    }

    #[test]
    fn fmt_time_renders_unbounded_as_dash() {
        assert_eq!(fmt_time(Time::from_ticks(42)), "42");
        assert_eq!(fmt_time(Time::MAX), "-");
    }

    #[test]
    fn sample_designs_produce_valid_converging_designs() {
        let b = mcmap_benchmarks::cruise();
        let designs = sample_designs(&b, 3, 11);
        assert_eq!(designs.len(), 3);
        for d in &designs {
            // Placement covers all tasks and honours fixed slots.
            assert_eq!(d.mapping.placement().len(), d.hsys.num_tasks());
            for (id, t) in d.hsys.tasks() {
                if let Some(p) = t.fixed_proc {
                    assert_eq!(d.mapping.proc_of(id), p);
                }
            }
            // The dropped set only names droppable applications.
            for a in &d.dropped {
                assert!(b.apps.app(*a).criticality().is_droppable());
            }
        }
    }
}
