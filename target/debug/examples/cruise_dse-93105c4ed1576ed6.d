/root/repo/target/debug/examples/cruise_dse-93105c4ed1576ed6.d: examples/cruise_dse.rs Cargo.toml

/root/repo/target/debug/examples/libcruise_dse-93105c4ed1576ed6.rmeta: examples/cruise_dse.rs Cargo.toml

examples/cruise_dse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
