/root/repo/target/debug/examples/gantt-c4e58d00e1eb5deb.d: examples/gantt.rs

/root/repo/target/debug/examples/gantt-c4e58d00e1eb5deb: examples/gantt.rs

examples/gantt.rs:
