/root/repo/target/debug/examples/gantt-5d4e713a7bd7d568.d: examples/gantt.rs

/root/repo/target/debug/examples/gantt-5d4e713a7bd7d568: examples/gantt.rs

examples/gantt.rs:
