/root/repo/target/debug/examples/fault_injection-ae3046c625a09a6a.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-ae3046c625a09a6a: examples/fault_injection.rs

examples/fault_injection.rs:
