/root/repo/target/debug/examples/sensitivity-82903281bba906dc.d: examples/sensitivity.rs

/root/repo/target/debug/examples/sensitivity-82903281bba906dc: examples/sensitivity.rs

examples/sensitivity.rs:
