/root/repo/target/debug/examples/motivation-29dfed18b7dba3df.d: examples/motivation.rs

/root/repo/target/debug/examples/motivation-29dfed18b7dba3df: examples/motivation.rs

examples/motivation.rs:
