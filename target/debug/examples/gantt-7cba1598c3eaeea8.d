/root/repo/target/debug/examples/gantt-7cba1598c3eaeea8.d: examples/gantt.rs Cargo.toml

/root/repo/target/debug/examples/libgantt-7cba1598c3eaeea8.rmeta: examples/gantt.rs Cargo.toml

examples/gantt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
