/root/repo/target/debug/examples/cruise_dse-d54b27cc5875e8a0.d: examples/cruise_dse.rs

/root/repo/target/debug/examples/cruise_dse-d54b27cc5875e8a0: examples/cruise_dse.rs

examples/cruise_dse.rs:
