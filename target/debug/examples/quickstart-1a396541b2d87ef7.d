/root/repo/target/debug/examples/quickstart-1a396541b2d87ef7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1a396541b2d87ef7: examples/quickstart.rs

examples/quickstart.rs:
