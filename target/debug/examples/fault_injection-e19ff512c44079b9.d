/root/repo/target/debug/examples/fault_injection-e19ff512c44079b9.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-e19ff512c44079b9: examples/fault_injection.rs

examples/fault_injection.rs:
