/root/repo/target/debug/examples/sensitivity-1fab5ee7266dbad9.d: examples/sensitivity.rs

/root/repo/target/debug/examples/sensitivity-1fab5ee7266dbad9: examples/sensitivity.rs

examples/sensitivity.rs:
