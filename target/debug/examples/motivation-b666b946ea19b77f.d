/root/repo/target/debug/examples/motivation-b666b946ea19b77f.d: examples/motivation.rs Cargo.toml

/root/repo/target/debug/examples/libmotivation-b666b946ea19b77f.rmeta: examples/motivation.rs Cargo.toml

examples/motivation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
