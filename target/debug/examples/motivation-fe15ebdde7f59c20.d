/root/repo/target/debug/examples/motivation-fe15ebdde7f59c20.d: examples/motivation.rs

/root/repo/target/debug/examples/motivation-fe15ebdde7f59c20: examples/motivation.rs

examples/motivation.rs:
