/root/repo/target/debug/examples/fault_injection-18679b4de137cfef.d: examples/fault_injection.rs Cargo.toml

/root/repo/target/debug/examples/libfault_injection-18679b4de137cfef.rmeta: examples/fault_injection.rs Cargo.toml

examples/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
