/root/repo/target/debug/examples/cruise_dse-cbc5488c511c1f78.d: examples/cruise_dse.rs

/root/repo/target/debug/examples/cruise_dse-cbc5488c511c1f78: examples/cruise_dse.rs

examples/cruise_dse.rs:
