/root/repo/target/debug/examples/sensitivity-d6552bcb14c5fd6e.d: examples/sensitivity.rs Cargo.toml

/root/repo/target/debug/examples/libsensitivity-d6552bcb14c5fd6e.rmeta: examples/sensitivity.rs Cargo.toml

examples/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
