/root/repo/target/debug/examples/quickstart-108665c41e92e423.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-108665c41e92e423: examples/quickstart.rs

examples/quickstart.rs:
