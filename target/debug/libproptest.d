/root/repo/target/debug/libproptest.rlib: /root/repo/compat/proptest/src/lib.rs
