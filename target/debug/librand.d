/root/repo/target/debug/librand.rlib: /root/repo/compat/rand/src/lib.rs
