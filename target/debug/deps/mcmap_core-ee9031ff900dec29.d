/root/repo/target/debug/deps/mcmap_core-ee9031ff900dec29.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/libmcmap_core-ee9031ff900dec29.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/libmcmap_core-ee9031ff900dec29.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/dse.rs:
crates/core/src/genome.rs:
crates/core/src/objective.rs:
crates/core/src/repair.rs:
crates/core/src/sensitivity.rs:
