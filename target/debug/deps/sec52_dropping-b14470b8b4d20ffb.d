/root/repo/target/debug/deps/sec52_dropping-b14470b8b4d20ffb.d: crates/bench/src/bin/sec52_dropping.rs Cargo.toml

/root/repo/target/debug/deps/libsec52_dropping-b14470b8b4d20ffb.rmeta: crates/bench/src/bin/sec52_dropping.rs Cargo.toml

crates/bench/src/bin/sec52_dropping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
