/root/repo/target/debug/deps/mcmap_bench-e8ca52addb73da04.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_bench-e8ca52addb73da04.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
