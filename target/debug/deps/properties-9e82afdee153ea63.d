/root/repo/target/debug/deps/properties-9e82afdee153ea63.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-9e82afdee153ea63.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
