/root/repo/target/debug/deps/experiments-dcca03db31bb5c9f.d: tests/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-dcca03db31bb5c9f.rmeta: tests/experiments.rs Cargo.toml

tests/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
