/root/repo/target/debug/deps/rand-eb9b6f882d8f2259.d: compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-eb9b6f882d8f2259.rmeta: compat/rand/src/lib.rs Cargo.toml

compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
