/root/repo/target/debug/deps/mcmap_core-56fbe860ac01ebb8.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_core-56fbe860ac01ebb8.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/dse.rs:
crates/core/src/genome.rs:
crates/core/src/objective.rs:
crates/core/src/repair.rs:
crates/core/src/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
