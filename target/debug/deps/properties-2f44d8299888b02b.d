/root/repo/target/debug/deps/properties-2f44d8299888b02b.d: crates/model/tests/properties.rs

/root/repo/target/debug/deps/properties-2f44d8299888b02b: crates/model/tests/properties.rs

crates/model/tests/properties.rs:
