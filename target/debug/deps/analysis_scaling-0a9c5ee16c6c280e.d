/root/repo/target/debug/deps/analysis_scaling-0a9c5ee16c6c280e.d: crates/bench/benches/analysis_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_scaling-0a9c5ee16c6c280e.rmeta: crates/bench/benches/analysis_scaling.rs Cargo.toml

crates/bench/benches/analysis_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
