/root/repo/target/debug/deps/mcmap_lint-cff7896affc2ad6e.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs

/root/repo/target/debug/deps/libmcmap_lint-cff7896affc2ad6e.rlib: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs

/root/repo/target/debug/deps/libmcmap_lint-cff7896affc2ad6e.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/genome.rs:
crates/lint/src/inject.rs:
crates/lint/src/passes.rs:
