/root/repo/target/debug/deps/criterion-0b91e5e8474aa20e.d: compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-0b91e5e8474aa20e.rmeta: compat/criterion/src/lib.rs Cargo.toml

compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
