/root/repo/target/debug/deps/criterion-b66fd2aec1ef5711.d: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b66fd2aec1ef5711.rlib: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b66fd2aec1ef5711.rmeta: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
