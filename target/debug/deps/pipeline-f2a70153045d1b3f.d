/root/repo/target/debug/deps/pipeline-f2a70153045d1b3f.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-f2a70153045d1b3f: tests/pipeline.rs

tests/pipeline.rs:
