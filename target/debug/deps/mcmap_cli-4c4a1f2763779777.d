/root/repo/target/debug/deps/mcmap_cli-4c4a1f2763779777.d: crates/bench/src/bin/mcmap_cli.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_cli-4c4a1f2763779777.rmeta: crates/bench/src/bin/mcmap_cli.rs Cargo.toml

crates/bench/src/bin/mcmap_cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
