/root/repo/target/debug/deps/ablation_hardening-389d169812b64b79.d: crates/bench/src/bin/ablation_hardening.rs Cargo.toml

/root/repo/target/debug/deps/libablation_hardening-389d169812b64b79.rmeta: crates/bench/src/bin/ablation_hardening.rs Cargo.toml

crates/bench/src/bin/ablation_hardening.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
