/root/repo/target/debug/deps/properties-5da10a05e2ce7d0f.d: crates/sched/tests/properties.rs

/root/repo/target/debug/deps/properties-5da10a05e2ce7d0f: crates/sched/tests/properties.rs

crates/sched/tests/properties.rs:
