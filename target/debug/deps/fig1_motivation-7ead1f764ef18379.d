/root/repo/target/debug/deps/fig1_motivation-7ead1f764ef18379.d: crates/bench/src/bin/fig1_motivation.rs

/root/repo/target/debug/deps/fig1_motivation-7ead1f764ef18379: crates/bench/src/bin/fig1_motivation.rs

crates/bench/src/bin/fig1_motivation.rs:
