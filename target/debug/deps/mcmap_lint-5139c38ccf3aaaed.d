/root/repo/target/debug/deps/mcmap_lint-5139c38ccf3aaaed.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_lint-5139c38ccf3aaaed.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs Cargo.toml

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/genome.rs:
crates/lint/src/inject.rs:
crates/lint/src/passes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
