/root/repo/target/debug/deps/mcmap-7fa8528f8b3bcde8.d: src/lib.rs

/root/repo/target/debug/deps/mcmap-7fa8528f8b3bcde8: src/lib.rs

src/lib.rs:
