/root/repo/target/debug/deps/mcmap_lint-5c3bfd12d6c6b2d3.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs

/root/repo/target/debug/deps/mcmap_lint-5c3bfd12d6c6b2d3: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/genome.rs:
crates/lint/src/inject.rs:
crates/lint/src/passes.rs:
