/root/repo/target/debug/deps/counterexamples-58e722628c9f602a.d: crates/lint/tests/counterexamples.rs Cargo.toml

/root/repo/target/debug/deps/libcounterexamples-58e722628c9f602a.rmeta: crates/lint/tests/counterexamples.rs Cargo.toml

crates/lint/tests/counterexamples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
