/root/repo/target/debug/deps/fig1_motivation-331512708c01a26f.d: crates/bench/src/bin/fig1_motivation.rs

/root/repo/target/debug/deps/fig1_motivation-331512708c01a26f: crates/bench/src/bin/fig1_motivation.rs

crates/bench/src/bin/fig1_motivation.rs:
