/root/repo/target/debug/deps/mcmap_core-578026804085f502.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/mcmap_core-578026804085f502: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/dse.rs:
crates/core/src/genome.rs:
crates/core/src/objective.rs:
crates/core/src/repair.rs:
crates/core/src/sensitivity.rs:
