/root/repo/target/debug/deps/mcmap_cli-acee73f1e10c4296.d: crates/bench/src/bin/mcmap_cli.rs

/root/repo/target/debug/deps/mcmap_cli-acee73f1e10c4296: crates/bench/src/bin/mcmap_cli.rs

crates/bench/src/bin/mcmap_cli.rs:
