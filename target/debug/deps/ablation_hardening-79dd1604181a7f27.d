/root/repo/target/debug/deps/ablation_hardening-79dd1604181a7f27.d: crates/bench/src/bin/ablation_hardening.rs

/root/repo/target/debug/deps/ablation_hardening-79dd1604181a7f27: crates/bench/src/bin/ablation_hardening.rs

crates/bench/src/bin/ablation_hardening.rs:
