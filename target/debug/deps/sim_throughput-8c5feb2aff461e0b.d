/root/repo/target/debug/deps/sim_throughput-8c5feb2aff461e0b.d: crates/bench/benches/sim_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsim_throughput-8c5feb2aff461e0b.rmeta: crates/bench/benches/sim_throughput.rs Cargo.toml

crates/bench/benches/sim_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
