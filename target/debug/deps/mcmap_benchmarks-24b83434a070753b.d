/root/repo/target/debug/deps/mcmap_benchmarks-24b83434a070753b.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_benchmarks-24b83434a070753b.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs Cargo.toml

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/arch.rs:
crates/benchmarks/src/cruise.rs:
crates/benchmarks/src/dt.rs:
crates/benchmarks/src/synth.rs:
crates/benchmarks/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
