/root/repo/target/debug/deps/mcmap_sched-5f530581c9d80f77.d: crates/sched/src/lib.rs crates/sched/src/coarse.rs crates/sched/src/holistic.rs crates/sched/src/mapping.rs crates/sched/src/windows.rs

/root/repo/target/debug/deps/mcmap_sched-5f530581c9d80f77: crates/sched/src/lib.rs crates/sched/src/coarse.rs crates/sched/src/holistic.rs crates/sched/src/mapping.rs crates/sched/src/windows.rs

crates/sched/src/lib.rs:
crates/sched/src/coarse.rs:
crates/sched/src/holistic.rs:
crates/sched/src/mapping.rs:
crates/sched/src/windows.rs:
