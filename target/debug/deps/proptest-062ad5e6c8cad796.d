/root/repo/target/debug/deps/proptest-062ad5e6c8cad796.d: compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-062ad5e6c8cad796.rmeta: compat/proptest/src/lib.rs Cargo.toml

compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
