/root/repo/target/debug/deps/properties-042999e0c79c5fc0.d: crates/ga/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-042999e0c79c5fc0.rmeta: crates/ga/tests/properties.rs Cargo.toml

crates/ga/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
