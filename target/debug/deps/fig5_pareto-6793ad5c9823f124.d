/root/repo/target/debug/deps/fig5_pareto-6793ad5c9823f124.d: crates/bench/src/bin/fig5_pareto.rs

/root/repo/target/debug/deps/fig5_pareto-6793ad5c9823f124: crates/bench/src/bin/fig5_pareto.rs

crates/bench/src/bin/fig5_pareto.rs:
