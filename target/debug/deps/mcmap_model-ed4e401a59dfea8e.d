/root/repo/target/debug/deps/mcmap_model-ed4e401a59dfea8e.d: crates/model/src/lib.rs crates/model/src/appset.rs crates/model/src/arch.rs crates/model/src/channel.rs crates/model/src/dot.rs crates/model/src/error.rs crates/model/src/graph.rs crates/model/src/ids.rs crates/model/src/task.rs crates/model/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_model-ed4e401a59dfea8e.rmeta: crates/model/src/lib.rs crates/model/src/appset.rs crates/model/src/arch.rs crates/model/src/channel.rs crates/model/src/dot.rs crates/model/src/error.rs crates/model/src/graph.rs crates/model/src/ids.rs crates/model/src/task.rs crates/model/src/time.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/appset.rs:
crates/model/src/arch.rs:
crates/model/src/channel.rs:
crates/model/src/dot.rs:
crates/model/src/error.rs:
crates/model/src/graph.rs:
crates/model/src/ids.rs:
crates/model/src/task.rs:
crates/model/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
