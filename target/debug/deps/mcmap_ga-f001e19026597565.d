/root/repo/target/debug/deps/mcmap_ga-f001e19026597565.d: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs

/root/repo/target/debug/deps/libmcmap_ga-f001e19026597565.rlib: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs

/root/repo/target/debug/deps/libmcmap_ga-f001e19026597565.rmeta: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs

crates/ga/src/lib.rs:
crates/ga/src/driver.rs:
crates/ga/src/hypervolume.rs:
crates/ga/src/nsga2.rs:
crates/ga/src/problem.rs:
crates/ga/src/spea2.rs:
