/root/repo/target/debug/deps/mcmap_sim-4f40de4a94422d6d.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/mcmap_sim-4f40de4a94422d6d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/fault.rs:
crates/sim/src/monte.rs:
crates/sim/src/trace.rs:
