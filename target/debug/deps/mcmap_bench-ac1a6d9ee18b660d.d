/root/repo/target/debug/deps/mcmap_bench-ac1a6d9ee18b660d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcmap_bench-ac1a6d9ee18b660d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcmap_bench-ac1a6d9ee18b660d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
