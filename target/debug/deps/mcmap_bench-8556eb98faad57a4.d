/root/repo/target/debug/deps/mcmap_bench-8556eb98faad57a4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mcmap_bench-8556eb98faad57a4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
