/root/repo/target/debug/deps/dse_power-9f27097ba8398b71.d: crates/bench/benches/dse_power.rs Cargo.toml

/root/repo/target/debug/deps/libdse_power-9f27097ba8398b71.rmeta: crates/bench/benches/dse_power.rs Cargo.toml

crates/bench/benches/dse_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
