/root/repo/target/debug/deps/pareto_front-0d734c7ebd139643.d: crates/bench/benches/pareto_front.rs Cargo.toml

/root/repo/target/debug/deps/libpareto_front-0d734c7ebd139643.rmeta: crates/bench/benches/pareto_front.rs Cargo.toml

crates/bench/benches/pareto_front.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
