/root/repo/target/debug/deps/mcmap_cli-c3e527ccbc3644a1.d: crates/bench/src/bin/mcmap_cli.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_cli-c3e527ccbc3644a1.rmeta: crates/bench/src/bin/mcmap_cli.rs Cargo.toml

crates/bench/src/bin/mcmap_cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
