/root/repo/target/debug/deps/rand-8d83c7870216523f.d: compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-8d83c7870216523f.rmeta: compat/rand/src/lib.rs Cargo.toml

compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
