/root/repo/target/debug/deps/mcmap_sim-fc899393d6da9d94.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libmcmap_sim-fc899393d6da9d94.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libmcmap_sim-fc899393d6da9d94.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/fault.rs:
crates/sim/src/monte.rs:
crates/sim/src/trace.rs:
