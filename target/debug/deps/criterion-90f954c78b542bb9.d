/root/repo/target/debug/deps/criterion-90f954c78b542bb9.d: compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-90f954c78b542bb9.rmeta: compat/criterion/src/lib.rs Cargo.toml

compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
