/root/repo/target/debug/deps/criterion-54ec5a85a33af042.d: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-54ec5a85a33af042: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
