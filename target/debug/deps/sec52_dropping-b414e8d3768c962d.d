/root/repo/target/debug/deps/sec52_dropping-b414e8d3768c962d.d: crates/bench/src/bin/sec52_dropping.rs

/root/repo/target/debug/deps/sec52_dropping-b414e8d3768c962d: crates/bench/src/bin/sec52_dropping.rs

crates/bench/src/bin/sec52_dropping.rs:
