/root/repo/target/debug/deps/fig5_pareto-4fd1a09a0b08554d.d: crates/bench/src/bin/fig5_pareto.rs

/root/repo/target/debug/deps/fig5_pareto-4fd1a09a0b08554d: crates/bench/src/bin/fig5_pareto.rs

crates/bench/src/bin/fig5_pareto.rs:
