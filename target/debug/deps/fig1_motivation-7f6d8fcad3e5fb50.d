/root/repo/target/debug/deps/fig1_motivation-7f6d8fcad3e5fb50.d: crates/bench/src/bin/fig1_motivation.rs

/root/repo/target/debug/deps/fig1_motivation-7f6d8fcad3e5fb50: crates/bench/src/bin/fig1_motivation.rs

crates/bench/src/bin/fig1_motivation.rs:
