/root/repo/target/debug/deps/mcmap_hardening-03f3ef666f8823d5.d: crates/hardening/src/lib.rs crates/hardening/src/dot.rs crates/hardening/src/htask.rs crates/hardening/src/reliability.rs crates/hardening/src/spec.rs crates/hardening/src/transform.rs

/root/repo/target/debug/deps/mcmap_hardening-03f3ef666f8823d5: crates/hardening/src/lib.rs crates/hardening/src/dot.rs crates/hardening/src/htask.rs crates/hardening/src/reliability.rs crates/hardening/src/spec.rs crates/hardening/src/transform.rs

crates/hardening/src/lib.rs:
crates/hardening/src/dot.rs:
crates/hardening/src/htask.rs:
crates/hardening/src/reliability.rs:
crates/hardening/src/spec.rs:
crates/hardening/src/transform.rs:
