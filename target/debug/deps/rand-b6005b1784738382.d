/root/repo/target/debug/deps/rand-b6005b1784738382.d: compat/rand/src/lib.rs

/root/repo/target/debug/deps/rand-b6005b1784738382: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
