/root/repo/target/debug/deps/experiments-b9f218aa41ae7c8a.d: tests/experiments.rs

/root/repo/target/debug/deps/experiments-b9f218aa41ae7c8a: tests/experiments.rs

tests/experiments.rs:
