/root/repo/target/debug/deps/mcmap-b0c7f27a8147732d.d: src/lib.rs

/root/repo/target/debug/deps/mcmap-b0c7f27a8147732d: src/lib.rs

src/lib.rs:
