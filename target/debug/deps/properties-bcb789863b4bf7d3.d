/root/repo/target/debug/deps/properties-bcb789863b4bf7d3.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-bcb789863b4bf7d3: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
