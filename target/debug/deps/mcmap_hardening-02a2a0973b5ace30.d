/root/repo/target/debug/deps/mcmap_hardening-02a2a0973b5ace30.d: crates/hardening/src/lib.rs crates/hardening/src/dot.rs crates/hardening/src/htask.rs crates/hardening/src/reliability.rs crates/hardening/src/spec.rs crates/hardening/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_hardening-02a2a0973b5ace30.rmeta: crates/hardening/src/lib.rs crates/hardening/src/dot.rs crates/hardening/src/htask.rs crates/hardening/src/reliability.rs crates/hardening/src/spec.rs crates/hardening/src/transform.rs Cargo.toml

crates/hardening/src/lib.rs:
crates/hardening/src/dot.rs:
crates/hardening/src/htask.rs:
crates/hardening/src/reliability.rs:
crates/hardening/src/spec.rs:
crates/hardening/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
