/root/repo/target/debug/deps/fig5_pareto-faa62d29db570ae9.d: crates/bench/src/bin/fig5_pareto.rs

/root/repo/target/debug/deps/fig5_pareto-faa62d29db570ae9: crates/bench/src/bin/fig5_pareto.rs

crates/bench/src/bin/fig5_pareto.rs:
