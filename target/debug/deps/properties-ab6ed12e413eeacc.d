/root/repo/target/debug/deps/properties-ab6ed12e413eeacc.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ab6ed12e413eeacc.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
