/root/repo/target/debug/deps/ablation_selector-476cb84ec4883364.d: crates/bench/benches/ablation_selector.rs Cargo.toml

/root/repo/target/debug/deps/libablation_selector-476cb84ec4883364.rmeta: crates/bench/benches/ablation_selector.rs Cargo.toml

crates/bench/benches/ablation_selector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
