/root/repo/target/debug/deps/properties-36257ff0e7311ee7.d: crates/ga/tests/properties.rs

/root/repo/target/debug/deps/properties-36257ff0e7311ee7: crates/ga/tests/properties.rs

crates/ga/tests/properties.rs:
