/root/repo/target/debug/deps/experiments-c1f02112d1ac8f09.d: tests/experiments.rs

/root/repo/target/debug/deps/experiments-c1f02112d1ac8f09: tests/experiments.rs

tests/experiments.rs:
