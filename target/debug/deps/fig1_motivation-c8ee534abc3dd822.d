/root/repo/target/debug/deps/fig1_motivation-c8ee534abc3dd822.d: crates/bench/src/bin/fig1_motivation.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_motivation-c8ee534abc3dd822.rmeta: crates/bench/src/bin/fig1_motivation.rs Cargo.toml

crates/bench/src/bin/fig1_motivation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
