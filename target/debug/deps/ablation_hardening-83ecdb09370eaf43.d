/root/repo/target/debug/deps/ablation_hardening-83ecdb09370eaf43.d: crates/bench/src/bin/ablation_hardening.rs

/root/repo/target/debug/deps/ablation_hardening-83ecdb09370eaf43: crates/bench/src/bin/ablation_hardening.rs

crates/bench/src/bin/ablation_hardening.rs:
