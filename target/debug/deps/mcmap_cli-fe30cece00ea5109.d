/root/repo/target/debug/deps/mcmap_cli-fe30cece00ea5109.d: crates/bench/src/bin/mcmap_cli.rs

/root/repo/target/debug/deps/mcmap_cli-fe30cece00ea5109: crates/bench/src/bin/mcmap_cli.rs

crates/bench/src/bin/mcmap_cli.rs:
