/root/repo/target/debug/deps/counterexamples-52e715a6f6143007.d: crates/lint/tests/counterexamples.rs

/root/repo/target/debug/deps/counterexamples-52e715a6f6143007: crates/lint/tests/counterexamples.rs

crates/lint/tests/counterexamples.rs:
