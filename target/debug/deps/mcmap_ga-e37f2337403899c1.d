/root/repo/target/debug/deps/mcmap_ga-e37f2337403899c1.d: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs

/root/repo/target/debug/deps/mcmap_ga-e37f2337403899c1: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs

crates/ga/src/lib.rs:
crates/ga/src/driver.rs:
crates/ga/src/hypervolume.rs:
crates/ga/src/nsga2.rs:
crates/ga/src/problem.rs:
crates/ga/src/spea2.rs:
