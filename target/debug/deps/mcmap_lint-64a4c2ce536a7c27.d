/root/repo/target/debug/deps/mcmap_lint-64a4c2ce536a7c27.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs

/root/repo/target/debug/deps/mcmap_lint-64a4c2ce536a7c27: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/genome.rs:
crates/lint/src/inject.rs:
crates/lint/src/passes.rs:
