/root/repo/target/debug/deps/properties-9ea6240e93b86997.d: crates/sched/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-9ea6240e93b86997.rmeta: crates/sched/tests/properties.rs Cargo.toml

crates/sched/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
