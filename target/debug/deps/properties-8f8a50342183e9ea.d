/root/repo/target/debug/deps/properties-8f8a50342183e9ea.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-8f8a50342183e9ea: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
