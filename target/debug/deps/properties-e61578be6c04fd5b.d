/root/repo/target/debug/deps/properties-e61578be6c04fd5b.d: crates/hardening/tests/properties.rs

/root/repo/target/debug/deps/properties-e61578be6c04fd5b: crates/hardening/tests/properties.rs

crates/hardening/tests/properties.rs:
