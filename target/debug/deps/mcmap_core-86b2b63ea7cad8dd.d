/root/repo/target/debug/deps/mcmap_core-86b2b63ea7cad8dd.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/libmcmap_core-86b2b63ea7cad8dd.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/libmcmap_core-86b2b63ea7cad8dd.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/dse.rs:
crates/core/src/genome.rs:
crates/core/src/objective.rs:
crates/core/src/repair.rs:
crates/core/src/sensitivity.rs:
