/root/repo/target/debug/deps/pipeline-0341246ffc1286db.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-0341246ffc1286db.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
