/root/repo/target/debug/deps/mcmap-429bfe65a68e9547.d: src/lib.rs

/root/repo/target/debug/deps/libmcmap-429bfe65a68e9547.rlib: src/lib.rs

/root/repo/target/debug/deps/libmcmap-429bfe65a68e9547.rmeta: src/lib.rs

src/lib.rs:
