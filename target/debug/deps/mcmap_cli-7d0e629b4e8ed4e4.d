/root/repo/target/debug/deps/mcmap_cli-7d0e629b4e8ed4e4.d: crates/bench/src/bin/mcmap_cli.rs

/root/repo/target/debug/deps/mcmap_cli-7d0e629b4e8ed4e4: crates/bench/src/bin/mcmap_cli.rs

crates/bench/src/bin/mcmap_cli.rs:
