/root/repo/target/debug/deps/mcmap_ga-6e3ded6c6e45825c.d: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_ga-6e3ded6c6e45825c.rmeta: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs Cargo.toml

crates/ga/src/lib.rs:
crates/ga/src/driver.rs:
crates/ga/src/hypervolume.rs:
crates/ga/src/nsga2.rs:
crates/ga/src/problem.rs:
crates/ga/src/spea2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
