/root/repo/target/debug/deps/pipeline-ffb44f61c66ee810.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-ffb44f61c66ee810: tests/pipeline.rs

tests/pipeline.rs:
