/root/repo/target/debug/deps/proptest-0edbedaf50343439.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0edbedaf50343439.rlib: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0edbedaf50343439.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
