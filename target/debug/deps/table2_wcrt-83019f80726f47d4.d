/root/repo/target/debug/deps/table2_wcrt-83019f80726f47d4.d: crates/bench/src/bin/table2_wcrt.rs

/root/repo/target/debug/deps/table2_wcrt-83019f80726f47d4: crates/bench/src/bin/table2_wcrt.rs

crates/bench/src/bin/table2_wcrt.rs:
