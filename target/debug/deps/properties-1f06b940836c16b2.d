/root/repo/target/debug/deps/properties-1f06b940836c16b2.d: crates/hardening/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1f06b940836c16b2.rmeta: crates/hardening/tests/properties.rs Cargo.toml

crates/hardening/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
