/root/repo/target/debug/deps/fig5_pareto-f4ece73967a28058.d: crates/bench/src/bin/fig5_pareto.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_pareto-f4ece73967a28058.rmeta: crates/bench/src/bin/fig5_pareto.rs Cargo.toml

crates/bench/src/bin/fig5_pareto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
