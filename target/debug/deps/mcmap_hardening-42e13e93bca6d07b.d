/root/repo/target/debug/deps/mcmap_hardening-42e13e93bca6d07b.d: crates/hardening/src/lib.rs crates/hardening/src/dot.rs crates/hardening/src/htask.rs crates/hardening/src/reliability.rs crates/hardening/src/spec.rs crates/hardening/src/transform.rs

/root/repo/target/debug/deps/libmcmap_hardening-42e13e93bca6d07b.rlib: crates/hardening/src/lib.rs crates/hardening/src/dot.rs crates/hardening/src/htask.rs crates/hardening/src/reliability.rs crates/hardening/src/spec.rs crates/hardening/src/transform.rs

/root/repo/target/debug/deps/libmcmap_hardening-42e13e93bca6d07b.rmeta: crates/hardening/src/lib.rs crates/hardening/src/dot.rs crates/hardening/src/htask.rs crates/hardening/src/reliability.rs crates/hardening/src/spec.rs crates/hardening/src/transform.rs

crates/hardening/src/lib.rs:
crates/hardening/src/dot.rs:
crates/hardening/src/htask.rs:
crates/hardening/src/reliability.rs:
crates/hardening/src/spec.rs:
crates/hardening/src/transform.rs:
