/root/repo/target/debug/deps/rand-e142f7087c6d6c60.d: compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e142f7087c6d6c60.rlib: compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e142f7087c6d6c60.rmeta: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
