/root/repo/target/debug/deps/mcmap-79d5f51c0ddbde8a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap-79d5f51c0ddbde8a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
