/root/repo/target/debug/deps/sec52_dropping-f253d59e49459f48.d: crates/bench/src/bin/sec52_dropping.rs

/root/repo/target/debug/deps/sec52_dropping-f253d59e49459f48: crates/bench/src/bin/sec52_dropping.rs

crates/bench/src/bin/sec52_dropping.rs:
