/root/repo/target/debug/deps/mcmap_benchmarks-6431f9ca611771c7.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_benchmarks-6431f9ca611771c7.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs Cargo.toml

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/arch.rs:
crates/benchmarks/src/cruise.rs:
crates/benchmarks/src/dt.rs:
crates/benchmarks/src/synth.rs:
crates/benchmarks/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
