/root/repo/target/debug/deps/mcmap-dace08531250526b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap-dace08531250526b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
