/root/repo/target/debug/deps/mcmap_bench-589b0e0fdd2efe3b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mcmap_bench-589b0e0fdd2efe3b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
