/root/repo/target/debug/deps/table2_wcrt-6931c77538befc4c.d: crates/bench/src/bin/table2_wcrt.rs

/root/repo/target/debug/deps/table2_wcrt-6931c77538befc4c: crates/bench/src/bin/table2_wcrt.rs

crates/bench/src/bin/table2_wcrt.rs:
