/root/repo/target/debug/deps/mcmap_sim-2642953d7d177a5c.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_sim-2642953d7d177a5c.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/fault.rs:
crates/sim/src/monte.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
