/root/repo/target/debug/deps/table2_wcrt-aad703ca26a7928b.d: crates/bench/src/bin/table2_wcrt.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_wcrt-aad703ca26a7928b.rmeta: crates/bench/src/bin/table2_wcrt.rs Cargo.toml

crates/bench/src/bin/table2_wcrt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
