/root/repo/target/debug/deps/mcmap_model-58d63d470de9fdae.d: crates/model/src/lib.rs crates/model/src/appset.rs crates/model/src/arch.rs crates/model/src/channel.rs crates/model/src/dot.rs crates/model/src/error.rs crates/model/src/graph.rs crates/model/src/ids.rs crates/model/src/task.rs crates/model/src/time.rs

/root/repo/target/debug/deps/libmcmap_model-58d63d470de9fdae.rlib: crates/model/src/lib.rs crates/model/src/appset.rs crates/model/src/arch.rs crates/model/src/channel.rs crates/model/src/dot.rs crates/model/src/error.rs crates/model/src/graph.rs crates/model/src/ids.rs crates/model/src/task.rs crates/model/src/time.rs

/root/repo/target/debug/deps/libmcmap_model-58d63d470de9fdae.rmeta: crates/model/src/lib.rs crates/model/src/appset.rs crates/model/src/arch.rs crates/model/src/channel.rs crates/model/src/dot.rs crates/model/src/error.rs crates/model/src/graph.rs crates/model/src/ids.rs crates/model/src/task.rs crates/model/src/time.rs

crates/model/src/lib.rs:
crates/model/src/appset.rs:
crates/model/src/arch.rs:
crates/model/src/channel.rs:
crates/model/src/dot.rs:
crates/model/src/error.rs:
crates/model/src/graph.rs:
crates/model/src/ids.rs:
crates/model/src/task.rs:
crates/model/src/time.rs:
