/root/repo/target/debug/deps/mcmap_benchmarks-13497b0d4081efec.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs

/root/repo/target/debug/deps/libmcmap_benchmarks-13497b0d4081efec.rlib: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs

/root/repo/target/debug/deps/libmcmap_benchmarks-13497b0d4081efec.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/arch.rs:
crates/benchmarks/src/cruise.rs:
crates/benchmarks/src/dt.rs:
crates/benchmarks/src/synth.rs:
crates/benchmarks/src/util.rs:
