/root/repo/target/debug/deps/table2_wcrt-d6698dac2cc58a3a.d: crates/bench/src/bin/table2_wcrt.rs

/root/repo/target/debug/deps/table2_wcrt-d6698dac2cc58a3a: crates/bench/src/bin/table2_wcrt.rs

crates/bench/src/bin/table2_wcrt.rs:
