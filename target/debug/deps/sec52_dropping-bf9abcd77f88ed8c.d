/root/repo/target/debug/deps/sec52_dropping-bf9abcd77f88ed8c.d: crates/bench/src/bin/sec52_dropping.rs Cargo.toml

/root/repo/target/debug/deps/libsec52_dropping-bf9abcd77f88ed8c.rmeta: crates/bench/src/bin/sec52_dropping.rs Cargo.toml

crates/bench/src/bin/sec52_dropping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
