/root/repo/target/debug/deps/mcmap_sched-47fc1b301f450431.d: crates/sched/src/lib.rs crates/sched/src/coarse.rs crates/sched/src/holistic.rs crates/sched/src/mapping.rs crates/sched/src/windows.rs

/root/repo/target/debug/deps/libmcmap_sched-47fc1b301f450431.rlib: crates/sched/src/lib.rs crates/sched/src/coarse.rs crates/sched/src/holistic.rs crates/sched/src/mapping.rs crates/sched/src/windows.rs

/root/repo/target/debug/deps/libmcmap_sched-47fc1b301f450431.rmeta: crates/sched/src/lib.rs crates/sched/src/coarse.rs crates/sched/src/holistic.rs crates/sched/src/mapping.rs crates/sched/src/windows.rs

crates/sched/src/lib.rs:
crates/sched/src/coarse.rs:
crates/sched/src/holistic.rs:
crates/sched/src/mapping.rs:
crates/sched/src/windows.rs:
