/root/repo/target/debug/deps/table2_wcrt-69a35b72510e8d0e.d: crates/bench/src/bin/table2_wcrt.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_wcrt-69a35b72510e8d0e.rmeta: crates/bench/src/bin/table2_wcrt.rs Cargo.toml

crates/bench/src/bin/table2_wcrt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
