/root/repo/target/debug/deps/mcmap_bench-e503b1238de1ee22.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcmap_bench-e503b1238de1ee22.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcmap_bench-e503b1238de1ee22.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
