/root/repo/target/debug/deps/sec52_dropping-d4597522e530680b.d: crates/bench/src/bin/sec52_dropping.rs

/root/repo/target/debug/deps/sec52_dropping-d4597522e530680b: crates/bench/src/bin/sec52_dropping.rs

crates/bench/src/bin/sec52_dropping.rs:
