/root/repo/target/debug/deps/properties-705a9fab7e1c11cd.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-705a9fab7e1c11cd: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
