/root/repo/target/debug/deps/ablation_hardening-01938654162f0db2.d: crates/bench/src/bin/ablation_hardening.rs

/root/repo/target/debug/deps/ablation_hardening-01938654162f0db2: crates/bench/src/bin/ablation_hardening.rs

crates/bench/src/bin/ablation_hardening.rs:
