/root/repo/target/debug/deps/ablation_pessimism-0d38717a74c0ebb7.d: crates/bench/benches/ablation_pessimism.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pessimism-0d38717a74c0ebb7.rmeta: crates/bench/benches/ablation_pessimism.rs Cargo.toml

crates/bench/benches/ablation_pessimism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
