/root/repo/target/debug/deps/properties-1e56d18dc04ea301.d: crates/model/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1e56d18dc04ea301.rmeta: crates/model/tests/properties.rs Cargo.toml

crates/model/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
