/root/repo/target/debug/deps/mcmap_ga-56529ce9a1f5c9f1.d: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_ga-56529ce9a1f5c9f1.rmeta: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs Cargo.toml

crates/ga/src/lib.rs:
crates/ga/src/driver.rs:
crates/ga/src/hypervolume.rs:
crates/ga/src/nsga2.rs:
crates/ga/src/problem.rs:
crates/ga/src/spea2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
