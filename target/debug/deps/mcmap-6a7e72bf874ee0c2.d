/root/repo/target/debug/deps/mcmap-6a7e72bf874ee0c2.d: src/lib.rs

/root/repo/target/debug/deps/libmcmap-6a7e72bf874ee0c2.rlib: src/lib.rs

/root/repo/target/debug/deps/libmcmap-6a7e72bf874ee0c2.rmeta: src/lib.rs

src/lib.rs:
