/root/repo/target/debug/deps/fig1_motivation-6b0861c643b2c992.d: crates/bench/benches/fig1_motivation.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_motivation-6b0861c643b2c992.rmeta: crates/bench/benches/fig1_motivation.rs Cargo.toml

crates/bench/benches/fig1_motivation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
