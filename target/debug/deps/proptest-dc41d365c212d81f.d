/root/repo/target/debug/deps/proptest-dc41d365c212d81f.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-dc41d365c212d81f: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
