/root/repo/target/debug/deps/mcmap_sched-50e0bb8bfeccb72f.d: crates/sched/src/lib.rs crates/sched/src/coarse.rs crates/sched/src/holistic.rs crates/sched/src/mapping.rs crates/sched/src/windows.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_sched-50e0bb8bfeccb72f.rmeta: crates/sched/src/lib.rs crates/sched/src/coarse.rs crates/sched/src/holistic.rs crates/sched/src/mapping.rs crates/sched/src/windows.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/coarse.rs:
crates/sched/src/holistic.rs:
crates/sched/src/mapping.rs:
crates/sched/src/windows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
