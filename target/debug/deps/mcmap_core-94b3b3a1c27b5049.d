/root/repo/target/debug/deps/mcmap_core-94b3b3a1c27b5049.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/mcmap_core-94b3b3a1c27b5049: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/dse.rs:
crates/core/src/genome.rs:
crates/core/src/objective.rs:
crates/core/src/repair.rs:
crates/core/src/sensitivity.rs:
