/root/repo/target/debug/deps/mcmap_sim-36a0f07db7e5e2df.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmcmap_sim-36a0f07db7e5e2df.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/fault.rs:
crates/sim/src/monte.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
