/root/repo/target/debug/deps/mcmap_benchmarks-6b756b885a81933f.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs

/root/repo/target/debug/deps/mcmap_benchmarks-6b756b885a81933f: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/arch.rs:
crates/benchmarks/src/cruise.rs:
crates/benchmarks/src/dt.rs:
crates/benchmarks/src/synth.rs:
crates/benchmarks/src/util.rs:
