/root/repo/target/debug/libcriterion.rlib: /root/repo/compat/criterion/src/lib.rs
