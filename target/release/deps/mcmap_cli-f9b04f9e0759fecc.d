/root/repo/target/release/deps/mcmap_cli-f9b04f9e0759fecc.d: crates/bench/src/bin/mcmap_cli.rs

/root/repo/target/release/deps/mcmap_cli-f9b04f9e0759fecc: crates/bench/src/bin/mcmap_cli.rs

crates/bench/src/bin/mcmap_cli.rs:
