/root/repo/target/release/deps/mcmap_hardening-7c56328fafe2f780.d: crates/hardening/src/lib.rs crates/hardening/src/dot.rs crates/hardening/src/htask.rs crates/hardening/src/reliability.rs crates/hardening/src/spec.rs crates/hardening/src/transform.rs

/root/repo/target/release/deps/libmcmap_hardening-7c56328fafe2f780.rlib: crates/hardening/src/lib.rs crates/hardening/src/dot.rs crates/hardening/src/htask.rs crates/hardening/src/reliability.rs crates/hardening/src/spec.rs crates/hardening/src/transform.rs

/root/repo/target/release/deps/libmcmap_hardening-7c56328fafe2f780.rmeta: crates/hardening/src/lib.rs crates/hardening/src/dot.rs crates/hardening/src/htask.rs crates/hardening/src/reliability.rs crates/hardening/src/spec.rs crates/hardening/src/transform.rs

crates/hardening/src/lib.rs:
crates/hardening/src/dot.rs:
crates/hardening/src/htask.rs:
crates/hardening/src/reliability.rs:
crates/hardening/src/spec.rs:
crates/hardening/src/transform.rs:
