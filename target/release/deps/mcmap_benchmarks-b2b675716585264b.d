/root/repo/target/release/deps/mcmap_benchmarks-b2b675716585264b.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs

/root/repo/target/release/deps/libmcmap_benchmarks-b2b675716585264b.rlib: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs

/root/repo/target/release/deps/libmcmap_benchmarks-b2b675716585264b.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/arch.rs crates/benchmarks/src/cruise.rs crates/benchmarks/src/dt.rs crates/benchmarks/src/synth.rs crates/benchmarks/src/util.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/arch.rs:
crates/benchmarks/src/cruise.rs:
crates/benchmarks/src/dt.rs:
crates/benchmarks/src/synth.rs:
crates/benchmarks/src/util.rs:
