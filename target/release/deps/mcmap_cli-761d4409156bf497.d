/root/repo/target/release/deps/mcmap_cli-761d4409156bf497.d: crates/bench/src/bin/mcmap_cli.rs

/root/repo/target/release/deps/mcmap_cli-761d4409156bf497: crates/bench/src/bin/mcmap_cli.rs

crates/bench/src/bin/mcmap_cli.rs:
