/root/repo/target/release/deps/mcmap_sim-0c049aa56b9cf73c.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libmcmap_sim-0c049aa56b9cf73c.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libmcmap_sim-0c049aa56b9cf73c.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/monte.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/fault.rs:
crates/sim/src/monte.rs:
crates/sim/src/trace.rs:
