/root/repo/target/release/deps/mcmap-7b34bf58de13f8d8.d: src/lib.rs

/root/repo/target/release/deps/libmcmap-7b34bf58de13f8d8.rlib: src/lib.rs

/root/repo/target/release/deps/libmcmap-7b34bf58de13f8d8.rmeta: src/lib.rs

src/lib.rs:
