/root/repo/target/release/deps/mcmap_core-bc334722d34c9b2c.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

/root/repo/target/release/deps/libmcmap_core-bc334722d34c9b2c.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

/root/repo/target/release/deps/libmcmap_core-bc334722d34c9b2c.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/dse.rs crates/core/src/genome.rs crates/core/src/objective.rs crates/core/src/repair.rs crates/core/src/sensitivity.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/dse.rs:
crates/core/src/genome.rs:
crates/core/src/objective.rs:
crates/core/src/repair.rs:
crates/core/src/sensitivity.rs:
