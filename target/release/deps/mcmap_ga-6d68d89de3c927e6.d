/root/repo/target/release/deps/mcmap_ga-6d68d89de3c927e6.d: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs

/root/repo/target/release/deps/libmcmap_ga-6d68d89de3c927e6.rlib: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs

/root/repo/target/release/deps/libmcmap_ga-6d68d89de3c927e6.rmeta: crates/ga/src/lib.rs crates/ga/src/driver.rs crates/ga/src/hypervolume.rs crates/ga/src/nsga2.rs crates/ga/src/problem.rs crates/ga/src/spea2.rs

crates/ga/src/lib.rs:
crates/ga/src/driver.rs:
crates/ga/src/hypervolume.rs:
crates/ga/src/nsga2.rs:
crates/ga/src/problem.rs:
crates/ga/src/spea2.rs:
