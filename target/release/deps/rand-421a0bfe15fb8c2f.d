/root/repo/target/release/deps/rand-421a0bfe15fb8c2f.d: compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-421a0bfe15fb8c2f.rlib: compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-421a0bfe15fb8c2f.rmeta: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
