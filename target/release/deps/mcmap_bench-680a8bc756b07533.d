/root/repo/target/release/deps/mcmap_bench-680a8bc756b07533.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmcmap_bench-680a8bc756b07533.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmcmap_bench-680a8bc756b07533.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
