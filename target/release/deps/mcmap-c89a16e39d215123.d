/root/repo/target/release/deps/mcmap-c89a16e39d215123.d: src/lib.rs

/root/repo/target/release/deps/libmcmap-c89a16e39d215123.rlib: src/lib.rs

/root/repo/target/release/deps/libmcmap-c89a16e39d215123.rmeta: src/lib.rs

src/lib.rs:
