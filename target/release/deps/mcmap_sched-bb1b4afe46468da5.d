/root/repo/target/release/deps/mcmap_sched-bb1b4afe46468da5.d: crates/sched/src/lib.rs crates/sched/src/coarse.rs crates/sched/src/holistic.rs crates/sched/src/mapping.rs crates/sched/src/windows.rs

/root/repo/target/release/deps/libmcmap_sched-bb1b4afe46468da5.rlib: crates/sched/src/lib.rs crates/sched/src/coarse.rs crates/sched/src/holistic.rs crates/sched/src/mapping.rs crates/sched/src/windows.rs

/root/repo/target/release/deps/libmcmap_sched-bb1b4afe46468da5.rmeta: crates/sched/src/lib.rs crates/sched/src/coarse.rs crates/sched/src/holistic.rs crates/sched/src/mapping.rs crates/sched/src/windows.rs

crates/sched/src/lib.rs:
crates/sched/src/coarse.rs:
crates/sched/src/holistic.rs:
crates/sched/src/mapping.rs:
crates/sched/src/windows.rs:
