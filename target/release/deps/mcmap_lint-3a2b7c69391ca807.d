/root/repo/target/release/deps/mcmap_lint-3a2b7c69391ca807.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs

/root/repo/target/release/deps/libmcmap_lint-3a2b7c69391ca807.rlib: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs

/root/repo/target/release/deps/libmcmap_lint-3a2b7c69391ca807.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/genome.rs crates/lint/src/inject.rs crates/lint/src/passes.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/genome.rs:
crates/lint/src/inject.rs:
crates/lint/src/passes.rs:
