/root/repo/target/release/deps/mcmap_model-60bf57b0293357e9.d: crates/model/src/lib.rs crates/model/src/appset.rs crates/model/src/arch.rs crates/model/src/channel.rs crates/model/src/dot.rs crates/model/src/error.rs crates/model/src/graph.rs crates/model/src/ids.rs crates/model/src/task.rs crates/model/src/time.rs

/root/repo/target/release/deps/libmcmap_model-60bf57b0293357e9.rlib: crates/model/src/lib.rs crates/model/src/appset.rs crates/model/src/arch.rs crates/model/src/channel.rs crates/model/src/dot.rs crates/model/src/error.rs crates/model/src/graph.rs crates/model/src/ids.rs crates/model/src/task.rs crates/model/src/time.rs

/root/repo/target/release/deps/libmcmap_model-60bf57b0293357e9.rmeta: crates/model/src/lib.rs crates/model/src/appset.rs crates/model/src/arch.rs crates/model/src/channel.rs crates/model/src/dot.rs crates/model/src/error.rs crates/model/src/graph.rs crates/model/src/ids.rs crates/model/src/task.rs crates/model/src/time.rs

crates/model/src/lib.rs:
crates/model/src/appset.rs:
crates/model/src/arch.rs:
crates/model/src/channel.rs:
crates/model/src/dot.rs:
crates/model/src/error.rs:
crates/model/src/graph.rs:
crates/model/src/ids.rs:
crates/model/src/task.rs:
crates/model/src/time.rs:
