/root/repo/target/release/deps/mcmap_bench-b047ce35db896eea.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmcmap_bench-b047ce35db896eea.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmcmap_bench-b047ce35db896eea.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
