//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *API subset* it actually uses: [`RngCore`], [`SeedableRng`], the
//! [`Rng`] extension trait with `gen_range`/`gen_bool`, [`rngs::StdRng`]
//! (xoshiro256++ seeded via splitmix64), and [`seq::SliceRandom::choose`].
//! Determinism is the contract: identical seeds produce identical streams
//! across runs and platforms. Statistical quality matches what the
//! workspace needs (design-space exploration and tests), not cryptography.

/// A source of random `u32`/`u64` words. Object-safe so generic code can
/// take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64`, expanding it into the
    /// full internal state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of one output word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Types that support uniform sampling between two bounds. The blanket
/// [`SampleRange`] impls below are generic over this trait — a single impl
/// per range shape, exactly like the real crate, so type inference can
/// unify the range's element type with the expression context (e.g.
/// `u64 * rng.gen_range(40..=90)`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`, or `[low, high]` when `inclusive`.
    /// Panics on empty ranges.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                if inclusive {
                    assert!(low <= high, "cannot sample empty range");
                } else {
                    assert!(low < high, "cannot sample empty range");
                }
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: f64,
        high: f64,
        inclusive: bool,
    ) -> f64 {
        if inclusive {
            assert!(low <= high, "cannot sample empty range");
        } else {
            assert!(low < high, "cannot sample empty range");
        }
        low + unit_f64(rng) * (high - low)
    }
}

/// A range that supports uniform single-value sampling.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ state seeded by
    /// splitmix64. Small, fast, and fully deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Snapshots the raw xoshiro256++ state, e.g. for checkpointing a
        /// long run. Feeding the words back through [`StdRng::from_state`]
        /// resumes the exact output stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

/// Random slice operations.
pub mod seq {
    use super::RngCore;

    /// Random selection over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;
        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() as usize) % self.len();
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u8..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_covers_slice() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..256 {
            let &v = items.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynr: &mut dyn RngCore = &mut rng;
        let _ = dynr.next_u32();
        let mut buf = [0u8; 13];
        dynr.fill_bytes(&mut buf);
    }
}
