//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *API subset* its benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros. There is no
//! statistical machinery: each benchmark runs a short calibrated loop and
//! prints the mean wall-clock time per iteration. Good enough to smoke-run
//! benches and eyeball regressions; not a replacement for real criterion.

use std::fmt;
use std::time::{Duration, Instant};

/// How long each measurement aims to run.
const TARGET_MEASURE: Duration = Duration::from_millis(200);
/// Hard cap on iterations per measurement.
const MAX_ITERS: u64 = 100_000;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, rendered as
    /// `name/param`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, first calibrating an iteration count, then measuring.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in the target window?
        let probe_start = Instant::now();
        std::hint::black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let iters = (TARGET_MEASURE.as_nanos() / probe.as_nanos().max(1))
            .clamp(1, MAX_ITERS as u128) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let total = start.elapsed();
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        println!(
            "{}/{}: {} per iter ({} iters)",
            self.name,
            label,
            fmt_ns(b.mean_ns),
            b.iters
        );
    }

    /// Sets the sample count. Accepted for API compatibility; the shim's
    /// single-pass measurement ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark under this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, f);
        self
    }

    /// Runs one parameterised benchmark under this group.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
        };
        group.run(&id.label, f);
        self
    }
}

/// Prevents the optimiser from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 7u32.pow(2)));
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 4).label, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::from("s").label, "s");
    }
}
