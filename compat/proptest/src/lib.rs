//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *API subset* its property tests use: the [`Strategy`] trait with
//! `prop_map`, integer/float range strategies, tuple strategies,
//! [`Just`], `prop::collection::vec`, `prop::sample::select`, `any::<T>()`,
//! and the `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!`
//! macros. There is no shrinking: a failing case panics with the assertion
//! message. Generation is deterministic per test (seeded from the test
//! name), so failures reproduce exactly on re-run.

use core::fmt;

/// Deterministic generator driving strategy sampling (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then a fixed tweak so short names do not
        // collapse onto tiny states.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() as usize) % bound
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case asked to be discarded (`prop_assume!` failed).
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// A boxed, type-erased strategy (what `prop_oneof!` arms become).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy, erasing its concrete type.
pub fn boxed_strategy<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice between heterogeneous strategies of one value type.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Builds a union over the given arms; must be nonempty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted length specifications for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `elem`, with a length drawn
    /// from `size` (a `usize` or a `usize` range).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min;
            let len = if span <= 1 {
                self.size.min
            } else {
                self.size.min + rng.below(span)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniform choice from `options`; must be nonempty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// The case-driving loop behind the `proptest!` macro.
pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRng};

    /// Runs `case` until `cfg.cases` cases pass, panicking on the first
    /// failure and tolerating a bounded number of `prop_assume!` rejects.
    pub fn run<F>(cfg: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::deterministic(name);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let reject_budget = cfg.cases.saturating_mul(50).saturating_add(100);
        while passed < cfg.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > reject_budget {
                        panic!(
                            "property `{name}`: too many rejected cases \
                             ({rejected} rejects for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{name}` failed after {passed} passing cases: {msg}");
                }
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests. Each function runs `cases` times with fresh
/// values drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::runner::run(&__cfg, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                let __out: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __out
            });
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Fails the current case with an assertion message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        $crate::prop_assert!(($left) == ($right), $($fmt)+)
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies that all yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u8..=3).generate(&mut rng);
            assert!((1..=3).contains(&w));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_and_select_and_oneof_compose() {
        let mut rng = crate::TestRng::deterministic("compose");
        let strat = (
            prop::sample::select(vec![10u64, 20]),
            prop::collection::vec(0usize..4, 1..3),
        )
            .prop_map(|(p, v)| (p, v.len()));
        for _ in 0..200 {
            let (p, n) = strat.generate(&mut rng);
            assert!(p == 10 || p == 20);
            assert!((1..3).contains(&n));
        }
        let u = prop_oneof![Just(1u8), 2u8..=3, (0u8..1).prop_map(|x| x + 4)];
        for _ in 0..200 {
            let v = u.generate(&mut rng);
            assert!(v == 1 || v == 2 || v == 3 || v == 4);
        }
    }

    #[test]
    fn exact_len_vec() {
        let mut rng = crate::TestRng::deterministic("exact");
        let v = prop::collection::vec(any::<bool>(), 12).generate(&mut rng);
        assert_eq!(v.len(), 12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(a in 0u64..50, b in any::<bool>(), v in prop::collection::vec(0usize..3, 1..4)) {
            prop_assume!(a != 13);
            prop_assert!(a < 50);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(a + 1, a);
            if b {
                prop_assert!(v.len() < 4, "len {} out of bounds", v.len());
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0i32..10) {
            prop_assert!((0..10).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u8..4) {
                prop_assert!(x > 100, "x={} is not large", x);
            }
        }
        inner();
    }
}
