//! Quickstart: model a small mixed-criticality system, harden it, map it,
//! and obtain worst-case response-time guarantees under task dropping.
//!
//! Run with: `cargo run --example quickstart`

use mcmap::core::analyze;
use mcmap::hardening::{harden, HardeningPlan, Reliability, TaskHardening};
use mcmap::model::{
    AppId, AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcId, ProcKind, Processor,
    Task, TaskGraph, Time,
};
use mcmap::sched::{uniform_policies, Mapping, SchedPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Platform: two cores on a shared bus.
    let arch = Architecture::builder()
        .homogeneous(
            2,
            Processor::new("core", ProcKind::new(0), 10.0, 60.0, 1e-6),
        )
        .fabric(Fabric::new(32))
        .build()?;

    // 2. Applications: a safety-critical control loop and a droppable
    //    logging pipeline.
    let control = TaskGraph::builder("control", Time::from_ticks(1_000))
        .deadline(Time::from_ticks(800))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 1e-5,
        })
        .task(
            Task::new("sense")
                .with_uniform_exec(
                    1,
                    ExecBounds::new(Time::from_ticks(40), Time::from_ticks(90)),
                )
                .with_detect_overhead(Time::from_ticks(5)),
        )
        .task(
            Task::new("act")
                .with_uniform_exec(
                    1,
                    ExecBounds::new(Time::from_ticks(60), Time::from_ticks(120)),
                )
                .with_detect_overhead(Time::from_ticks(5)),
        )
        .channel(0, 1, 64)
        .build()?;
    let logging = TaskGraph::builder("logging", Time::from_ticks(2_000))
        .criticality(Criticality::Droppable { service: 1.0 })
        .task(Task::new("collect").with_uniform_exec(
            1,
            ExecBounds::new(Time::from_ticks(150), Time::from_ticks(400)),
        ))
        .build()?;
    let apps = AppSet::new(vec![control, logging])?;

    // 3. Hardening: re-execute both control tasks once on a fault.
    let mut plan = HardeningPlan::unhardened(&apps);
    plan.set_by_flat_index(0, TaskHardening::reexecution(1));
    plan.set_by_flat_index(1, TaskHardening::reexecution(1));
    let hsys = harden(&apps, &plan, &arch)?;

    // 4. Mapping: control on core 0, logging on core 1.
    let mapping = Mapping::new(
        &hsys,
        &arch,
        vec![ProcId::new(0), ProcId::new(0), ProcId::new(1)],
    )?;
    let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);

    // 5. Reliability check.
    let rel = Reliability::new(&hsys, &arch);
    for v in rel.check_all(mapping.placement()) {
        println!(
            "reliability of {}: {:.2e} (bound {:.0e}) -> {}",
            apps.app(v.app).name(),
            v.failure_probability,
            v.bound,
            if v.satisfied { "ok" } else { "VIOLATED" }
        );
    }

    // 6. Mixed-criticality WCRT analysis (Algorithm 1), dropping `logging`
    //    in the critical state.
    let dropped = vec![AppId::new(1)];
    let mc = analyze(&hsys, &arch, &mapping, &policies, &dropped);
    for (id, app) in apps.apps() {
        println!(
            "{}: fault-free WCRT {} | protocol WCRT {} (deadline {})",
            app.name(),
            mc.normal.app_wcrt(&hsys, id),
            mc.app_wcrt(&hsys, id, &dropped),
            app.deadline()
        );
    }
    println!(
        "schedulable under the mixed-criticality protocol: {}",
        mc.schedulable(&hsys, &dropped)
    );
    Ok(())
}
