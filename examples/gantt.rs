//! Visualize a simulated schedule: re-run the Fig. 1-style scenario and
//! render ASCII Gantt charts of the fault-free, faulted, and rescued
//! hyperperiods, plus a GraphViz dump of the hardened task graph.
//!
//! Run with: `cargo run --example gantt`

use mcmap::hardening::{harden, hardened_to_dot, HTaskId, HardeningPlan, TaskHardening};
use mcmap::model::{
    AppId, AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcId, ProcKind, Processor,
    Task, TaskGraph, Time,
};
use mcmap::sched::{uniform_policies, Mapping, SchedPolicy};
use mcmap::sim::{NoFaults, ScriptedFaults, SimConfig, Simulator, Trace};

fn task(name: &str, wcet: u64) -> Task {
    Task::new(name).with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(wcet)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = Architecture::builder()
        .homogeneous(2, Processor::new("pe", ProcKind::new(0), 5.0, 20.0, 1e-6))
        .fabric(Fabric::new(1 << 20))
        .build()?;
    let high = TaskGraph::builder("high", Time::from_ticks(200))
        .deadline(Time::from_ticks(160))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 0.5,
        })
        .task(task("Alpha", 30))
        .task(task("Exec", 50))
        .channel(0, 1, 0)
        .build()?;
    let low = TaskGraph::builder("low", Time::from_ticks(400))
        .criticality(Criticality::Droppable { service: 1.0 })
        .task(task("Gather", 30))
        .task(task("Handle", 30))
        .task(task("Io", 30))
        .channel(0, 1, 0)
        .channel(1, 2, 0)
        .build()?;
    let apps = AppSet::new(vec![high, low])?;
    let mut plan = HardeningPlan::unhardened(&apps);
    plan.set_by_flat_index(0, TaskHardening::reexecution(1));
    let hsys = harden(&apps, &plan, &arch)?;
    let mapping = Mapping::new(
        &hsys,
        &arch,
        vec![
            ProcId::new(0),
            ProcId::new(1),
            ProcId::new(0),
            ProcId::new(1),
            ProcId::new(1),
        ],
    )?
    .with_priorities(vec![0, 4, 1, 2, 3]);
    let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
    let sim = Simulator::new(&hsys, &arch, &mapping, policies);

    let names = Trace::name_table(&hsys, mapping.placement());
    let horizon = Time::from_ticks(200);
    let width = 72;

    println!("(legend: A=Alpha E=Exec G=Gather H=Handle I=Io, '!'=critical entry)\n");

    let (_, trace) = sim.run_traced(&SimConfig::default(), &mut NoFaults);
    println!("fault-free hyperperiod:");
    print!("{}", trace.render_gantt(&names, horizon, width));

    let mut faults = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
    let (_, trace) = sim.run_traced(&SimConfig::default(), &mut faults);
    println!("\nfault at Alpha, no dropping (Exec slips past 160):");
    print!("{}", trace.render_gantt(&names, horizon, width));

    let mut faults = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
    let (_, trace) = sim.run_traced(
        &SimConfig {
            dropped: vec![AppId::new(1)],
            ..SimConfig::default()
        },
        &mut faults,
    );
    println!("\nfault at Alpha, dropping {{Gather, Handle, Io}}:");
    print!("{}", trace.render_gantt(&names, horizon, width));

    println!("\nGraphViz of the hardened system (pipe into `dot -Tpng`):\n");
    print!("{}", hardened_to_dot(&hsys));
    Ok(())
}
