//! Fault-injection study: validate the static WCRT bound of Algorithm 1
//! against Monte-Carlo simulation with increasingly aggressive fault
//! injection on the DT-med benchmark.
//!
//! Run with: `cargo run --release --example fault_injection`

use mcmap::benchmarks::dt_med;
use mcmap::core::{analyze, repair_reliability, repair_structure, GenomeSpace};
use mcmap::hardening::harden;
use mcmap::model::{AppId, ProcId};
use mcmap::sched::Mapping;
use mcmap::sim::{monte_carlo, MonteCarloConfig, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let b = dt_med();

    // Build one repaired, reliability-satisfying design.
    let space = GenomeSpace::new(&b.apps, &b.arch);
    let mut rng = StdRng::seed_from_u64(12);
    let mut genome = space.clustered(&mut rng);
    repair_structure(&mut genome, &space, &mut rng);
    assert!(repair_reliability(
        &mut genome,
        &space,
        &b.apps,
        &b.arch,
        &mut rng,
        100
    ));
    let (plan, dropped, bindings) = space.decode(&genome);
    let hsys = harden(&b.apps, &plan, &b.arch).expect("repaired plans are valid");
    let placement: Vec<ProcId> = hsys
        .tasks()
        .map(|(_, t)| match t.fixed_proc {
            Some(p) => p,
            None => bindings[hsys.flat_of_origin(t.origin).expect("origin tracked")],
        })
        .collect();
    let mapping = Mapping::new(&hsys, &b.arch, placement).expect("repaired plans map");

    let mc = analyze(&hsys, &b.arch, &mapping, &b.policies, &dropped);
    println!(
        "design: {} hardened tasks, dropped set T_d = {:?}\n",
        hsys.num_tasks(),
        dropped
    );

    println!(
        "{:>10} {:>8} | per-app max simulated response vs. static bound",
        "boost", "profiles"
    );
    for boost in [1.0, 1e3, 1e5, 1e7] {
        let result = monte_carlo(
            &hsys,
            &b.arch,
            &mapping,
            &b.policies,
            &MonteCarloConfig {
                runs: 400,
                seed: 77,
                boost,
                sim: SimConfig::worst_case(dropped.clone()),
            },
        );
        print!("{boost:>10.0} {:>8}", 400);
        for id in b.apps.app_ids() {
            let sim_wcrt = result.app_wcrt[id.index()];
            let bound = mc.app_wcrt(&hsys, id, &dropped);
            assert!(
                sim_wcrt <= bound,
                "{}: simulation {} exceeded the bound {}",
                b.apps.app(id).name(),
                sim_wcrt,
                bound
            );
            print!(" | {} {}/{}", b.apps.app(id).name(), sim_wcrt, bound);
        }
        println!(
            "  (critical entries: {}, unsafe: {})",
            result.critical_entries, result.unsafe_instances
        );
    }
    println!("\nEvery simulated response stayed within the Algorithm 1 bound.");

    // Empirical reliability cross-check: with unboosted faults the design's
    // unsafe-instance count should be zero over this horizon.
    let baseline = monte_carlo(
        &hsys,
        &b.arch,
        &mapping,
        &b.policies,
        &MonteCarloConfig {
            runs: 400,
            seed: 78,
            boost: 1.0,
            sim: SimConfig::worst_case(dropped.clone()),
        },
    );
    println!(
        "unboosted campaign: {} unsafe instances across {} runs (reliability holds).",
        baseline.unsafe_instances, baseline.runs
    );
    let _ = AppId::new(0);
}
