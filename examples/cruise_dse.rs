//! Full design-space exploration of the Cruise benchmark: optimize
//! processor allocation, hardening, binding, and the dropped set for
//! expected power and retained service simultaneously, then print the
//! Pareto front.
//!
//! Run with: `cargo run --release --example cruise_dse`
//! (environment: `MCMAP_POP`, `MCMAP_GENS`, `MCMAP_SEED`)

use mcmap::benchmarks::cruise;
use mcmap::core::{explore, DseConfig, ObjectiveMode};
use mcmap::ga::GaConfig;

fn env(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let b = cruise();
    let cfg = DseConfig {
        ga: GaConfig {
            population: env("MCMAP_POP", 40),
            generations: env("MCMAP_GENS", 40),
            seed: env("MCMAP_SEED", 8) as u64,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::PowerService,
        allow_dropping: true,
        audit: true,
        policies: Some(b.policies.clone()),
        repair_iters: 60,
        ..DseConfig::default()
    };
    println!(
        "exploring {}: {} tasks on {} processors…",
        b.name,
        b.apps.num_tasks(),
        b.arch.num_processors()
    );
    let outcome = explore(&b.apps, &b.arch, cfg);

    println!(
        "\n{} evaluations, {} feasible; rescue ratio {:.1}%, re-execution share {:.1}%\n",
        outcome.audit.evaluated,
        outcome.audit.feasible,
        outcome.audit.rescue_ratio() * 100.0,
        outcome.audit.reexecution_share() * 100.0
    );

    println!(
        "{:>12} {:>9}  dropped in critical mode",
        "power [mW]", "service"
    );
    let mut rows: Vec<_> = outcome.reports.iter().filter(|r| r.feasible).collect();
    rows.sort_by(|a, b| a.power.partial_cmp(&b.power).expect("finite power"));
    rows.dedup_by(|a, b| (a.power - b.power).abs() < 1e-9 && a.service == b.service);
    for r in rows {
        let names: Vec<&str> = r.dropped.iter().map(|&a| b.apps.app(a).name()).collect();
        println!(
            "{:>12.2} {:>9.1}  {}",
            r.power,
            r.service,
            if names.is_empty() {
                "(none)".to_string()
            } else {
                names.join(", ")
            }
        );
    }
}
