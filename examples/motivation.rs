//! The paper's Fig. 1 motivational story, condensed: a single transient
//! fault pushes a critical application past its deadline — unless the
//! scheduler may drop low-criticality work during the critical state.
//!
//! Run with: `cargo run --example motivation`
//! (The full annotated version with replication lives in
//! `crates/bench/src/bin/fig1_motivation.rs`.)

use mcmap::core::analyze;
use mcmap::hardening::{harden, HTaskId, HardeningPlan, TaskHardening};
use mcmap::model::{
    AppId, AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcId, ProcKind, Processor,
    Task, TaskGraph, Time,
};
use mcmap::sched::{uniform_policies, Mapping, SchedPolicy};
use mcmap::sim::{NoFaults, ScriptedFaults, SimConfig, Simulator};

fn task(name: &str, wcet: u64) -> Task {
    Task::new(name).with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(wcet)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = Architecture::builder()
        .homogeneous(2, Processor::new("pe", ProcKind::new(0), 5.0, 20.0, 1e-6))
        .fabric(Fabric::new(1 << 20))
        .build()?;

    // Critical chain A → E (A re-executed once on a fault).
    let high = TaskGraph::builder("high", Time::from_ticks(200))
        .deadline(Time::from_ticks(160))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 0.5,
        })
        .task(task("A", 30))
        .task(task("E", 50))
        .channel(0, 1, 0)
        .build()?;
    // Droppable chain G → H → I.
    let low = TaskGraph::builder("low", Time::from_ticks(400))
        .criticality(Criticality::Droppable { service: 1.0 })
        .task(task("G", 30))
        .task(task("H", 30))
        .task(task("I", 30))
        .channel(0, 1, 0)
        .channel(1, 2, 0)
        .build()?;
    let apps = AppSet::new(vec![high, low])?;

    let mut plan = HardeningPlan::unhardened(&apps);
    plan.set_by_flat_index(0, TaskHardening::reexecution(1));
    let hsys = harden(&apps, &plan, &arch)?;

    // A and G on pe0; E, H, I on pe1 where H and I outrank E.
    let mapping = Mapping::new(
        &hsys,
        &arch,
        vec![
            ProcId::new(0), // A
            ProcId::new(1), // E
            ProcId::new(0), // G
            ProcId::new(1), // H
            ProcId::new(1), // I
        ],
    )?
    .with_priorities(vec![0, 4, 1, 2, 3]);
    let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
    let sim = Simulator::new(&hsys, &arch, &mapping, policies.clone());
    let deadline = apps.app(AppId::new(0)).deadline();

    let fault_free = sim.run(&SimConfig::default(), &mut NoFaults);
    let mut faults = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
    let faulted = sim.run(&SimConfig::default(), &mut faults);
    let mut faults = ScriptedFaults::new().with_fault(HTaskId::new(0), 0, 0);
    let rescued = sim.run(
        &SimConfig {
            dropped: vec![AppId::new(1)],
            ..SimConfig::default()
        },
        &mut faults,
    );

    println!("deadline of the critical chain: {deadline}");
    println!(
        "fault-free:          E finishes at {}",
        fault_free.app_wcrt[0]
    );
    println!("fault, no dropping:  E finishes at {}", faulted.app_wcrt[0]);
    println!("fault, dropping low: E finishes at {}", rescued.app_wcrt[0]);
    assert!(fault_free.app_wcrt[0] <= deadline);
    assert!(faulted.app_wcrt[0] > deadline);
    assert!(rescued.app_wcrt[0] <= deadline);

    let verdict_keep = analyze(&hsys, &arch, &mapping, &policies, &[]);
    let verdict_drop = analyze(&hsys, &arch, &mapping, &policies, &[AppId::new(1)]);
    println!(
        "\nAlgorithm 1 agrees: schedulable without dropping = {}, with dropping = {}.",
        verdict_keep.schedulable(&hsys, &[]),
        verdict_drop.schedulable(&hsys, &[AppId::new(1)])
    );
    Ok(())
}
