//! Explain a finished design: run a short DSE on Cruise, take the best
//! feasible design, and interrogate it — per-application slack, the fault
//! that binds each WCRT, and what-if perturbations of the hardening and
//! the dropped set.
//!
//! Run with: `cargo run --release --example sensitivity`

use mcmap::benchmarks::cruise;
use mcmap::core::{DseConfig, MappingProblem, ObjectiveMode, Sensitivity};
use mcmap::ga::{optimize, GaConfig};

fn main() {
    let b = cruise();
    let cfg = DseConfig {
        ga: GaConfig {
            population: 30,
            generations: 25,
            seed: 8,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::Power,
        policies: Some(b.policies.clone()),
        repair_iters: 60,
        ..DseConfig::default()
    };
    let ga_cfg = cfg.ga.clone();
    let problem = MappingProblem::new(&b.apps, &b.arch, cfg);
    let result = optimize(&problem, &ga_cfg);

    // Pick the cheapest feasible front member.
    let best = result
        .front
        .iter()
        .filter(|i| i.eval.feasible)
        .min_by(|a, b| {
            a.eval.objectives[0]
                .partial_cmp(&b.eval.objectives[0])
                .expect("finite power")
        })
        .expect("the Cruise DSE finds feasible designs");
    println!(
        "best design: {:.2} mW expected power\n",
        best.eval.objectives[0]
    );

    let (plan, dropped, bindings) = problem.decode_repaired(&best.genotype);
    println!(
        "dropped in critical mode: {:?}",
        dropped
            .iter()
            .map(|&a| b.apps.app(a).name())
            .collect::<Vec<_>>()
    );
    println!("hardening mix: {}\n", plan.technique_histogram());

    let study = Sensitivity::new(
        &b.apps,
        &b.arch,
        &b.policies,
        plan,
        bindings,
        dropped.clone(),
    );

    println!("per-application slack:");
    for s in study.slack().expect("the best design instantiates") {
        let trigger = s
            .binding_trigger
            .map(|t| format!("fault scenario of flat task {t}"))
            .unwrap_or_else(|| "the fault-free hyperperiod".to_string());
        println!(
            "  {:14} wcrt {:>6} / deadline {:>6} (slack {:>6}) — bound by {}",
            b.apps.app(s.app).name(),
            s.wcrt,
            s.deadline,
            s.slack,
            trigger
        );
    }

    println!("\nhardening what-ifs (re-execution degree ±1):");
    for (flat, k) in study.reexecution_sites().into_iter().take(4) {
        if let Some(w) = study.what_if_reexec(flat, k + 1) {
            println!(
                "  task {:2}: k {} -> {}: worst alive WCRT {} -> {} (schedulable: {})",
                flat, w.reexec.0, w.reexec.1, w.worst_wcrt.0, w.worst_wcrt.1, w.schedulable_after
            );
        }
        if k > 0 {
            if let Some(w) = study.what_if_reexec(flat, k - 1) {
                println!(
                    "  task {:2}: k {} -> {}: worst alive WCRT {} -> {} (reliable: {})",
                    flat, w.reexec.0, w.reexec.1, w.worst_wcrt.0, w.worst_wcrt.1, w.reliable_after
                );
            }
        }
    }

    println!("\ndrop-set what-ifs (keep one dropped application):");
    for &app in &dropped {
        if let Some((before, after, schedulable)) = study.what_if_keep(app) {
            println!(
                "  keep {:14}: worst alive WCRT {} -> {} (still schedulable: {})",
                b.apps.app(app).name(),
                before,
                after,
                schedulable
            );
        }
    }
}
