//! Miniature versions of the paper's experiments as integration tests:
//! every invariant the experiment binaries assert is also checked here at
//! reduced budgets, so `cargo test` alone validates the reproduction.

use mcmap::benchmarks::{all_benchmarks, cruise, dt_med};
use mcmap::core::{adhoc_analysis, analyze, analyze_naive, explore, DseConfig, ObjectiveMode};
use mcmap::ga::GaConfig;
use mcmap::hardening::{harden, HardeningPlan, TaskHardening};
use mcmap::model::{AppId, ProcId, Time};
use mcmap::sched::Mapping;
use mcmap::sim::{monte_carlo, MonteCarloConfig, SimConfig};

/// The Table 2 sample design M1 (see `crates/bench/src/bin/table2_wcrt.rs`).
fn table2_design_m1() -> (
    mcmap::benchmarks::Benchmark,
    mcmap::hardening::HardenedSystem,
    Mapping,
    Vec<AppId>,
) {
    let b = cruise();
    let mut plan = HardeningPlan::unhardened(&b.apps);
    plan.set_by_flat_index(0, TaskHardening::reexecution(1));
    plan.set_by_flat_index(5, TaskHardening::reexecution(1));
    let hsys = harden(&b.apps, &plan, &b.arch).unwrap();
    let mapping = Mapping::new(
        &hsys,
        &b.arch,
        [0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 0, 0, 3, 3, 3, 1, 1]
            .into_iter()
            .map(ProcId::new)
            .collect(),
    )
    .unwrap()
    .with_priorities(vec![0, 3, 4, 5, 6, 2, 3, 4, 0, 1, 1, 2, 0, 1, 2, 0, 1]);
    let dropped = b.apps.droppable_apps().collect();
    (b, hsys, mapping, dropped)
}

#[test]
fn table2_safety_orderings() {
    let (b, hsys, mapping, dropped) = table2_design_m1();
    let mc = analyze(&hsys, &b.arch, &mapping, &b.policies, &dropped);
    let naive = analyze_naive(&hsys, &b.arch, &mapping, &b.policies, &dropped);
    let adhoc = adhoc_analysis(&hsys, &b.arch, &mapping, &b.policies, &dropped);
    let wcsim = monte_carlo(
        &hsys,
        &b.arch,
        &mapping,
        &b.policies,
        &MonteCarloConfig {
            runs: 200,
            boost: 1e6,
            sim: SimConfig::worst_case(dropped.clone()),
            ..MonteCarloConfig::default()
        },
    );
    let mut strict_gap = false;
    for app in b.apps.nondroppable_apps() {
        let proposed = mc.app_wcrt(&hsys, app, &dropped);
        assert!(wcsim.app_wcrt[app.index()] <= proposed);
        assert!(adhoc[app.index()] <= proposed);
        assert!(naive.app_wcrt(&hsys, app) >= proposed);
        strict_gap |= naive.app_wcrt(&hsys, app) > proposed;
    }
    assert!(
        strict_gap,
        "the contended sample mapping must show a strict Naive > Proposed gap"
    );
}

#[test]
fn table2_attributes_the_binding_state() {
    let (b, hsys, mapping, dropped) = table2_design_m1();
    let mc = analyze(&hsys, &b.arch, &mapping, &b.policies, &dropped);
    assert_eq!(mc.scenarios, 2, "two re-executed heads → two scenarios");
    for app in b.apps.app_ids() {
        let normal = mc.normal.app_wcrt(&hsys, app);
        match mc.binding_trigger(&hsys, app) {
            // A fault scenario binds: its response must strictly exceed the
            // fault-free one and match the merged worst case.
            Some(trigger) => {
                let (_, wcrts) = mc
                    .scenario_app_wcrt
                    .iter()
                    .find(|(t, _)| *t == trigger)
                    .expect("trigger comes from the scenario list");
                assert!(wcrts[app.index()] > normal);
                assert_eq!(wcrts[app.index()], mc.worst.app_wcrt(&hsys, app));
            }
            // The fault-free state binds: no scenario exceeds it. For
            // speed-control this is the interesting case — in every fault
            // scenario the co-located nav pipeline is certainly dropped,
            // so the *fault-free* hyperperiod is the worst one.
            None => {
                for (_, wcrts) in &mc.scenario_app_wcrt {
                    assert!(wcrts[app.index()] <= normal);
                }
                assert_eq!(mc.worst.app_wcrt(&hsys, app), normal);
            }
        }
    }
    // And specifically: speed-control is normal-bound in design M1.
    assert_eq!(mc.binding_trigger(&hsys, AppId::new(0)), None);
}

#[test]
fn sec52_dropping_saves_power_on_dt_med() {
    let b = dt_med();
    let base = DseConfig {
        ga: GaConfig {
            population: 32,
            generations: 24,
            seed: 8,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::Power,
        policies: Some(b.policies.clone()),
        repair_iters: 60,
        ..DseConfig::default()
    };
    let with = explore(
        &b.apps,
        &b.arch,
        DseConfig {
            allow_dropping: true,
            audit: true,
            ..base.clone()
        },
    );
    let without = explore(
        &b.apps,
        &b.arch,
        DseConfig {
            allow_dropping: false,
            ..base
        },
    );
    let pw = with.best_power().expect("DT-med has feasible designs");
    let pwo = without
        .best_power()
        .expect("DT-med is feasible without dropping too");
    assert!(
        pw <= pwo,
        "allowing dropping explores a superset: {pw} > {pwo}"
    );
    // Rescues happen on DT-med (its droppable deadlines sit in the band).
    assert!(with.audit.rescue_ratio() > 0.0);
    // Re-execution dominates the applied hardenings (§5.2).
    assert!(with.audit.reexecution_share() > 0.5);
}

#[test]
fn fig5_front_spans_the_service_range() {
    let b = dt_med();
    let outcome = explore(
        &b.apps,
        &b.arch,
        DseConfig {
            ga: GaConfig {
                population: 24,
                generations: 25,
                seed: 8,
                ..GaConfig::default()
            },
            objectives: ObjectiveMode::PowerService,
            policies: Some(b.policies.clone()),
            repair_iters: 60,
            ..DseConfig::default()
        },
    );
    let feasible: Vec<_> = outcome.reports.iter().filter(|r| r.feasible).collect();
    assert!(feasible.len() >= 2, "a front needs at least two points");
    let min_service = feasible
        .iter()
        .map(|r| r.service)
        .fold(f64::INFINITY, f64::min);
    let max_service = feasible
        .iter()
        .map(|r| r.service)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max_service > min_service,
        "the front must trade service for power"
    );
    // Power and service are positively related along the front: the
    // cheapest feasible point does not have the highest service.
    let cheapest = feasible
        .iter()
        .min_by(|a, b| a.power.partial_cmp(&b.power).unwrap())
        .unwrap();
    assert!(cheapest.service < max_service);
}

#[test]
fn every_benchmark_is_explorable() {
    for b in all_benchmarks(42) {
        let outcome = explore(
            &b.apps,
            &b.arch,
            DseConfig {
                ga: GaConfig {
                    population: 28,
                    generations: 18,
                    seed: 9,
                    ..GaConfig::default()
                },
                policies: Some(b.policies.clone()),
                repair_iters: 60,
                ..DseConfig::default()
            },
        );
        assert!(
            outcome.best_power().is_some(),
            "{}: no feasible design at the smoke budget (audit {:?})",
            b.name,
            outcome.audit
        );
        // Sanity on the reported WCRTs of the best design.
        let best = outcome
            .reports
            .iter()
            .filter(|r| r.feasible)
            .min_by(|a, b| a.power.partial_cmp(&b.power).unwrap())
            .unwrap();
        for (id, app) in b.apps.apps() {
            if !best.dropped.contains(&id) {
                assert!(best.app_wcrt[id.index()] <= app.deadline());
                assert!(best.app_wcrt[id.index()] > Time::ZERO);
            }
        }
    }
}
