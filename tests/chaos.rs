//! Chaos harness for the `mcmap-resilience` layer: a seeded, fully
//! deterministic [`FaultPlan`] injects worker panics, scheduling delays,
//! and checkpoint truncation into small explorations, and the suite proves
//! the pipeline *completes*, degrades gracefully (typed diagnostics, not
//! torn worker pools), and — for a fixed fault seed — behaves identically
//! across repeats and thread counts.

use std::path::PathBuf;

use mcmap::benchmarks::cruise;
use mcmap::core::{explore, DseConfig, DseOutcome, ObjectiveMode, ResilienceConfig};
use mcmap::ga::GaConfig;
use mcmap::resilience::FaultPlan;

/// A scratch path under the system temp dir, unique per test process.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mcmap_chaos_{}_{name}", std::process::id()))
}

fn outcome_with(threads: usize, seed: u64, resilience: ResilienceConfig) -> DseOutcome {
    let b = cruise();
    explore(
        &b.apps,
        &b.arch,
        DseConfig {
            ga: GaConfig {
                population: 12,
                generations: 4,
                seed,
                threads,
                ..GaConfig::default()
            },
            objectives: ObjectiveMode::PowerService,
            allow_dropping: true,
            policies: Some(b.policies.clone()),
            repair_iters: 40,
            resilience,
            ..DseConfig::default()
        },
    )
}

/// The full comparable state of an exploration: every front report
/// (feasibility, power, service, dropped set) in front order.
fn fingerprint(o: &DseOutcome) -> String {
    format!("{:?}", o.reports)
}

/// Failures in a scheduling-independent order (workers push into a shared
/// vector, so arrival order is racy; content is not).
fn sorted_failures(o: &DseOutcome) -> Vec<String> {
    let mut msgs: Vec<String> = o
        .failures
        .iter()
        .map(|f| {
            format!(
                "{} after {} attempts: {}",
                f.candidate, f.attempts, f.message
            )
        })
        .collect();
    msgs.sort();
    msgs
}

#[test]
fn seeded_panics_degrade_candidates_without_aborting_the_run() {
    // 20 % of coordinates panic through both attempts (retries = 1 allows
    // two), so a healthy share of candidates must degrade — and the run
    // must still complete with a usable front.
    let plan = FaultPlan::new(7).with_panic_rate(200_000, 2);
    let outcome = outcome_with(
        4,
        8,
        ResilienceConfig {
            chaos: Some(plan),
            eval_retries: 1,
            ..ResilienceConfig::default()
        },
    );

    assert!(
        !outcome.failures.is_empty(),
        "a 20 % panic rate over ~60 coordinates must hit something"
    );
    for f in &outcome.failures {
        assert_eq!(f.attempts, 2, "1 retry means exactly 2 attempts");
        assert!(
            f.message.contains("chaos: injected panic"),
            "diagnostic must carry the panic payload, got: {}",
            f.message
        );
    }
    assert!(
        !outcome.reports.is_empty(),
        "the surviving population still yields a front"
    );
    // Degraded candidates are counted, not dropped: the audit sees every
    // submitted genome exactly once.
    assert!(outcome.audit.evaluated >= outcome.failures.len());
}

#[test]
fn chaos_is_deterministic_for_a_fixed_fault_seed() {
    let plan = FaultPlan::new(21).with_panic_rate(150_000, 2);
    let run = |threads: usize| {
        outcome_with(
            threads,
            8,
            ResilienceConfig {
                chaos: Some(plan.clone()),
                eval_retries: 1,
                ..ResilienceConfig::default()
            },
        )
    };
    let serial = run(1);
    let parallel = run(4);
    let repeat = run(4);

    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "fault coordinates are (batch, item)-addressed, so --threads must not move them"
    );
    assert_eq!(fingerprint(&parallel), fingerprint(&repeat));
    assert_eq!(sorted_failures(&serial), sorted_failures(&parallel));
    assert_eq!(sorted_failures(&parallel), sorted_failures(&repeat));
}

#[test]
fn retries_rescue_transient_panics_bit_exactly() {
    // Every injected panic poisons only the first attempt; with one retry
    // the re-evaluation succeeds, so the run must match a fault-free run
    // exactly and report no failures.
    let plan = FaultPlan::new(3)
        .panic_at(0, 0, 1)
        .panic_at(0, 7, 1)
        .panic_at(2, 3, 1)
        .panic_at(4, 11, 1);
    let faulted = outcome_with(
        4,
        8,
        ResilienceConfig {
            chaos: Some(plan),
            eval_retries: 1,
            ..ResilienceConfig::default()
        },
    );
    let clean = outcome_with(4, 8, ResilienceConfig::default());

    assert!(
        faulted.failures.is_empty(),
        "single-attempt faults must be rescued by the retry"
    );
    assert_eq!(fingerprint(&faulted), fingerprint(&clean));
    assert_eq!(format!("{:?}", faulted.audit), format!("{:?}", clean.audit));
}

#[test]
fn delays_shake_scheduling_without_changing_results() {
    let plan = FaultPlan::new(5)
        .delay_at(0, 1, 2_000)
        .delay_at(1, 0, 1_500)
        .delay_at(3, 5, 2_500);
    let delayed = outcome_with(
        4,
        8,
        ResilienceConfig {
            chaos: Some(plan),
            ..ResilienceConfig::default()
        },
    );
    let clean = outcome_with(4, 8, ResilienceConfig::default());
    assert_eq!(fingerprint(&delayed), fingerprint(&clean));
    assert!(delayed.failures.is_empty());
}

#[test]
fn truncated_checkpoint_falls_back_to_backup_and_resumes() {
    let path = scratch("truncated.ckpt");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("ckpt.bak"));

    // Baseline: the same run, checkpointing to a different path, never
    // interrupted and never corrupted.
    let baseline_path = scratch("truncated_baseline.ckpt");
    let baseline = outcome_with(
        2,
        8,
        ResilienceConfig {
            checkpoint: Some(baseline_path.clone()),
            ..ResilienceConfig::default()
        },
    );

    // Chaos truncates the checkpoint written after generation 4 (the final
    // one), so the resume must detect the torn file and fall back to the
    // `.bak` from generation 3.
    let first = outcome_with(
        2,
        8,
        ResilienceConfig {
            checkpoint: Some(path.clone()),
            chaos: Some(FaultPlan::new(0).truncate_checkpoint_at(4)),
            ..ResilienceConfig::default()
        },
    );
    assert!(
        !first.interrupted,
        "truncation happens after the run finishes writing"
    );

    let resumed = outcome_with(
        2,
        8,
        ResilienceConfig {
            checkpoint: Some(path.clone()),
            resume: Some(path.clone()),
            ..ResilienceConfig::default()
        },
    );
    assert_eq!(
        resumed.resumed_from,
        Some(3),
        "the torn generation-4 checkpoint must fall back to the generation-3 backup"
    );
    assert_eq!(
        fingerprint(&resumed),
        fingerprint(&baseline),
        "replaying generation 4 from the backup must reconverge bit-exactly"
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(mcmap::resilience::backup_path(&path));
    let _ = std::fs::remove_file(&baseline_path);
    let _ = std::fs::remove_file(mcmap::resilience::backup_path(&baseline_path));
}
