//! Cross-crate integration tests: model → hardening → sched → core → sim on
//! the real benchmarks.

use mcmap::benchmarks::{cruise, dt_med};
use mcmap::core::{
    adhoc_analysis, analyze, analyze_naive, explore, DseConfig, GenomeSpace, MappingProblem,
};
use mcmap::ga::GaConfig;
use mcmap::ga::Problem;
use mcmap::hardening::{harden, HardeningPlan, TaskHardening};
use mcmap::model::{AppId, ProcId};
use mcmap::sched::Mapping;
use mcmap::sim::{monte_carlo, MonteCarloConfig, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A simple hand-built hardening + mapping for Cruise: the two control
/// chains are re-execution hardened and isolated on the big cores; the
/// droppable applications live on the little cores.
fn cruise_reference_design() -> (
    mcmap::benchmarks::Benchmark,
    mcmap::hardening::HardenedSystem,
    Mapping,
) {
    let b = cruise();
    let mut plan = HardeningPlan::unhardened(&b.apps);
    for (flat, r) in b.apps.task_refs().iter().enumerate() {
        if !b.apps.app(r.app).criticality().is_droppable() {
            plan.set_by_flat_index(flat, TaskHardening::reexecution(1));
        }
    }
    let hsys = harden(&b.apps, &plan, &b.arch).unwrap();
    let mut little = 0usize;
    let placement: Vec<ProcId> = hsys
        .tasks()
        .map(|(_, t)| {
            if let Some(p) = t.fixed_proc {
                return p;
            }
            if t.app.index() < 2 {
                // Critical app i isolated on big core i.
                ProcId::new(t.app.index())
            } else {
                // Droppables alternate over the little cores.
                little += 1;
                ProcId::new(2 + little % 2)
            }
        })
        .collect();
    let mapping = Mapping::new(&hsys, &b.arch, placement).unwrap();
    (b, hsys, mapping)
}

#[test]
fn cruise_reference_design_is_schedulable_with_dropping() {
    let (b, hsys, mapping) = cruise_reference_design();
    let dropped: Vec<AppId> = b.apps.droppable_apps().collect();
    let mc = analyze(&hsys, &b.arch, &mapping, &b.policies, &dropped);
    assert!(
        mc.normal.converged,
        "the fault-free state of the reference design must converge"
    );
    for id in b.apps.nondroppable_apps() {
        let wcrt = mc.app_wcrt(&hsys, id, &dropped);
        assert!(
            wcrt <= b.apps.app(id).deadline(),
            "critical app {} misses: {} > {}",
            b.apps.app(id).name(),
            wcrt,
            b.apps.app(id).deadline()
        );
    }
}

#[test]
fn analysis_orderings_hold_on_cruise() {
    // The Table 2 invariants: Proposed ≥ WC-Sim, Proposed ≥ Adhoc (observed
    // trace), Naive ≥ Proposed.
    let (b, hsys, mapping) = cruise_reference_design();
    let dropped: Vec<AppId> = b.apps.droppable_apps().collect();

    let mc = analyze(&hsys, &b.arch, &mapping, &b.policies, &dropped);
    let naive = analyze_naive(&hsys, &b.arch, &mapping, &b.policies, &dropped);
    let adhoc = adhoc_analysis(&hsys, &b.arch, &mapping, &b.policies, &dropped);
    let wcsim = monte_carlo(
        &hsys,
        &b.arch,
        &mapping,
        &b.policies,
        &MonteCarloConfig {
            runs: 100,
            boost: 1e6,
            sim: SimConfig::worst_case(dropped.clone()),
            ..MonteCarloConfig::default()
        },
    );

    for id in b.apps.nondroppable_apps() {
        let proposed = mc.app_wcrt(&hsys, id, &dropped);
        let naive_w = naive.app_wcrt(&hsys, id);
        assert!(
            naive_w >= proposed,
            "naive {naive_w} must dominate proposed {proposed}"
        );
        assert!(
            wcsim.app_wcrt[id.index()] <= proposed,
            "simulation {} must stay below the bound {proposed}",
            wcsim.app_wcrt[id.index()]
        );
        assert!(
            adhoc[id.index()] <= proposed,
            "the adhoc trace {} must stay below the bound {proposed}",
            adhoc[id.index()]
        );
    }
}

#[test]
fn small_dse_finds_feasible_cruise_designs() {
    let b = cruise();
    let cfg = DseConfig {
        ga: GaConfig {
            population: 16,
            generations: 8,
            seed: 2024,
            ..GaConfig::default()
        },
        policies: Some(b.policies.clone()),
        repair_iters: 10,
        ..DseConfig::default()
    };
    let outcome = explore(&b.apps, &b.arch, cfg);
    assert!(outcome.audit.evaluated >= 16 * 9);
    assert!(
        outcome.best_power().is_some(),
        "DSE should find a feasible Cruise design (audit: {:?})",
        outcome.audit
    );
}

#[test]
fn dt_med_candidates_evaluate_without_panicking() {
    let b = dt_med();
    let problem = MappingProblem::new(
        &b.apps,
        &b.arch,
        DseConfig {
            policies: Some(b.policies.clone()),
            repair_iters: 5,
            ..DseConfig::default()
        },
    );
    let space = GenomeSpace::new(&b.apps, &b.arch);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..8 {
        let g = space.random(&mut rng);
        let _ = problem.evaluate(&g);
    }
    assert_eq!(problem.audit().evaluated, 8);
}
