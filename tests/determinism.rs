//! Determinism suite for the `mcmap-eval` candidate-evaluation engine and
//! the `mcmap-obs` tracing layer: the `--threads` knob must be *purely* a
//! speed knob. At a fixed seed, any thread count produces the same Pareto
//! front, objective vectors, and per-genome accounting; the memoization
//! cache is transparent — turning it off changes nothing but wall-clock —
//! and tracing is a read-only observer whose *canonical* event stream is
//! itself bit-identical for any thread count or cache capacity.

use mcmap::benchmarks::cruise;
use mcmap::core::{explore, DseConfig, DseOutcome, ObjectiveMode};
use mcmap::ga::GaConfig;
use mcmap::obs::{canonical_trace, Recorder};
use mcmap::telemetry::Registry;
use proptest::prelude::*;

fn outcome_with(threads: usize, cache_cap: usize, seed: u64) -> DseOutcome {
    outcome_traced(threads, cache_cap, seed, false)
}

fn outcome_traced(threads: usize, cache_cap: usize, seed: u64, traced: bool) -> DseOutcome {
    outcome_full(threads, 1, cache_cap, seed, traced, Registry::default()).0
}

/// The fully-knobbed exploration: worker threads, scenario threads, cache
/// capacity, optional tracing, and an optional metrics registry (returned
/// alongside so callers can snapshot it).
fn outcome_full(
    threads: usize,
    scenario_threads: usize,
    cache_cap: usize,
    seed: u64,
    traced: bool,
    telemetry: Registry,
) -> (DseOutcome, Registry) {
    let b = cruise();
    let analysis = mcmap::core::AnalysisOptions {
        scenario_threads,
        ..mcmap::core::AnalysisOptions::default()
    };
    let outcome = explore(
        &b.apps,
        &b.arch,
        DseConfig {
            ga: GaConfig {
                population: 12,
                generations: 4,
                seed,
                threads,
                ..GaConfig::default()
            },
            objectives: ObjectiveMode::PowerService,
            allow_dropping: true,
            policies: Some(b.policies.clone()),
            repair_iters: 40,
            cache_cap,
            analysis,
            obs: if traced {
                Recorder::ring(1 << 18)
            } else {
                Recorder::default()
            },
            telemetry: telemetry.clone(),
            ..DseConfig::default()
        },
    );
    (outcome, telemetry)
}

/// The canonicalized trace of an outcome (non-deterministic payload such as
/// wall-clock and cache hit/miss splits stripped).
fn trace_of(o: &DseOutcome) -> String {
    canonical_trace(&o.obs.events())
}

/// The full comparable state of an exploration: every front report
/// (feasibility, power, service, dropped set) in front order.
fn fingerprint(o: &DseOutcome) -> String {
    format!("{:?}", o.reports)
}

#[test]
fn pareto_front_is_identical_for_1_2_and_8_threads() {
    let serial = outcome_with(1, 65_536, 8);
    let two = outcome_with(2, 65_536, 8);
    let eight = outcome_with(8, 65_536, 8);

    assert_eq!(
        fingerprint(&serial),
        fingerprint(&two),
        "2 worker threads changed the Pareto front"
    );
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&eight),
        "8 worker threads changed the Pareto front"
    );

    // The engine accounts every submitted genome exactly once, so the
    // evaluation counts agree too (cache hit/miss split may differ across
    // thread counts — first-fill races are benign — but the genome and
    // batch totals may not).
    assert_eq!(serial.eval_stats.genomes, two.eval_stats.genomes);
    assert_eq!(serial.eval_stats.genomes, eight.eval_stats.genomes);
    assert_eq!(serial.eval_stats.batches, eight.eval_stats.batches);
    assert_eq!(serial.audit.evaluated, eight.audit.evaluated);
}

#[test]
fn canonical_trace_is_identical_for_1_2_and_8_threads() {
    let serial = outcome_traced(1, 65_536, 8, true);
    let two = outcome_traced(2, 65_536, 8, true);
    let eight = outcome_traced(8, 65_536, 8, true);

    // Tracing must not perturb the search itself…
    assert_eq!(fingerprint(&serial), fingerprint(&two));
    assert_eq!(fingerprint(&serial), fingerprint(&eight));
    let untraced = outcome_with(1, 65_536, 8);
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&untraced),
        "tracing changed the Pareto front"
    );

    // …and the canonical event stream must itself be deterministic.
    let reference = trace_of(&serial);
    assert!(!reference.is_empty(), "traced run produced no events");
    assert_eq!(
        reference,
        trace_of(&two),
        "2 worker threads changed the canonical trace"
    );
    assert_eq!(
        reference,
        trace_of(&eight),
        "8 worker threads changed the canonical trace"
    );

    // The canonical rendering must not leak non-deterministic payload.
    assert!(!reference.contains("nondet"));
    assert!(!reference.contains("wall_ns"));
    assert!(!reference.contains("cache_hits"));
}

#[test]
fn canonical_trace_is_identical_for_any_cache_capacity() {
    let cached = outcome_traced(2, 65_536, 8, true);
    let tiny = outcome_traced(2, 64, 8, true);
    let bare = outcome_traced(1, 0, 8, true);

    assert_eq!(fingerprint(&cached), fingerprint(&bare));
    let reference = trace_of(&cached);
    assert_eq!(
        reference,
        trace_of(&tiny),
        "a 64-entry cache changed the canonical trace"
    );
    assert_eq!(
        reference,
        trace_of(&bare),
        "disabling the cache changed the canonical trace"
    );
}

/// The deterministic half of a metrics snapshot rendered as JSON — what
/// must be invariant across thread counts.
fn det_snapshot_of(reg: &Registry) -> String {
    reg.snapshot_canonical().to_json()
}

#[test]
fn canonical_trace_is_identical_with_telemetry_enabled_at_any_threads() {
    // Metrics collection must be a read-only observer exactly like
    // tracing: same front, same canonical trace, for any combination of
    // worker and scenario threads.
    let (serial, reg_serial) = outcome_full(1, 1, 65_536, 8, true, Registry::new());
    let (eight, reg_eight) = outcome_full(8, 1, 65_536, 8, true, Registry::new());
    let (scen, reg_scen) = outcome_full(2, 4, 65_536, 8, true, Registry::new());

    let untraced = outcome_with(1, 65_536, 8);
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&untraced),
        "metrics collection changed the Pareto front"
    );
    assert_eq!(fingerprint(&serial), fingerprint(&eight));
    assert_eq!(fingerprint(&serial), fingerprint(&scen));

    let reference = trace_of(&serial);
    assert!(!reference.is_empty(), "traced run produced no events");
    assert_eq!(
        reference,
        trace_of(&eight),
        "metrics collection broke canonical-trace identity at 8 threads"
    );
    assert_eq!(
        reference,
        trace_of(&scen),
        "metrics collection broke canonical-trace identity with scenario threads"
    );

    // The deterministic metric classes themselves replay identically:
    // counters like eval.genomes and sched.candidates, and the
    // fixedpoint-iteration histogram, are functions of the run — not of
    // the schedule that executed it.
    let det = det_snapshot_of(&reg_serial);
    assert!(
        det.contains("eval.genomes") && det.contains("sched.candidates"),
        "canonical snapshot lost its deterministic instruments: {det}"
    );
    assert_eq!(
        det,
        det_snapshot_of(&reg_eight),
        "8 worker threads changed a deterministic metric"
    );
    assert_eq!(
        det,
        det_snapshot_of(&reg_scen),
        "scenario threads changed a deterministic metric"
    );
    // And the nondet classes stayed out of the canonical snapshot.
    assert!(!det.contains("batch_wall_ns"));
    assert!(!det.contains("analysis_ns"));
}

/// A smoke-budget exploration of a generated fleet preset: the same
/// determinism contract must hold on the workloads the persistent pool
/// was built for, including their deeper hardening spaces and composed
/// batch- + scenario-level fan-out.
fn fleet_outcome(threads: usize, scenario_threads: usize, seed: u64) -> DseOutcome {
    let preset = mcmap::benchmarks::fleet_small_config();
    let b = mcmap::benchmarks::fleet(&preset, 7);
    explore(
        &b.apps,
        &b.arch,
        DseConfig {
            ga: GaConfig {
                population: 8,
                generations: 2,
                seed,
                threads,
                ..GaConfig::default()
            },
            objectives: ObjectiveMode::PowerService,
            allow_dropping: true,
            policies: Some(b.policies.clone()),
            repair_iters: 40,
            max_reexec: preset.max_reexec,
            max_replicas: preset.max_replicas,
            analysis: mcmap::core::AnalysisOptions {
                scenario_threads,
                ..mcmap::core::AnalysisOptions::default()
            },
            ..DseConfig::default()
        },
    )
}

#[test]
fn fleet_front_is_identical_for_any_thread_count() {
    let serial = fleet_outcome(1, 1, 8);
    let four = fleet_outcome(4, 1, 8);
    let composed = fleet_outcome(2, 4, 8);

    assert_eq!(
        fingerprint(&serial),
        fingerprint(&four),
        "4 worker threads changed the fleet Pareto front"
    );
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&composed),
        "composed batch x scenario fan-out changed the fleet Pareto front"
    );
    assert_eq!(serial.eval_stats.genomes, four.eval_stats.genomes);
    assert_eq!(serial.audit.evaluated, composed.audit.evaluated);
}

#[test]
fn multi_generation_run_hits_the_cache() {
    let outcome = outcome_with(2, 65_536, 8);
    assert!(
        outcome.eval_stats.cache_hits > 0,
        "elitist re-evaluation across generations must produce cache hits"
    );
    assert!(outcome.eval_stats.hit_rate() > 0.0);
}

proptest! {
    // Each case is a full (small) exploration, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cache_on_and_cache_off_explorations_agree(
        seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let cached = outcome_with(threads, 65_536, seed);
        let bare = outcome_with(1, 0, seed);
        prop_assert_eq!(fingerprint(&cached), fingerprint(&bare));
        prop_assert_eq!(cached.eval_stats.genomes, bare.eval_stats.genomes);
        // With the cache disabled every lookup is a miss.
        prop_assert_eq!(bare.eval_stats.cache_hits, 0);
        prop_assert_eq!(bare.eval_stats.cache_misses, bare.eval_stats.genomes);
    }
}
