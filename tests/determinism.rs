//! Determinism suite for the `mcmap-eval` candidate-evaluation engine: the
//! `--threads` knob must be *purely* a speed knob. At a fixed seed, any
//! thread count produces the same Pareto front, objective vectors, and
//! per-genome accounting; the memoization cache is transparent — turning
//! it off changes nothing but wall-clock.

use mcmap::benchmarks::cruise;
use mcmap::core::{explore, DseConfig, DseOutcome, ObjectiveMode};
use mcmap::ga::GaConfig;
use proptest::prelude::*;

fn outcome_with(threads: usize, cache_cap: usize, seed: u64) -> DseOutcome {
    let b = cruise();
    explore(
        &b.apps,
        &b.arch,
        DseConfig {
            ga: GaConfig {
                population: 12,
                generations: 4,
                seed,
                threads,
                ..GaConfig::default()
            },
            objectives: ObjectiveMode::PowerService,
            allow_dropping: true,
            policies: Some(b.policies.clone()),
            repair_iters: 40,
            cache_cap,
            ..DseConfig::default()
        },
    )
}

/// The full comparable state of an exploration: every front report
/// (feasibility, power, service, dropped set) in front order.
fn fingerprint(o: &DseOutcome) -> String {
    format!("{:?}", o.reports)
}

#[test]
fn pareto_front_is_identical_for_1_2_and_8_threads() {
    let serial = outcome_with(1, 65_536, 8);
    let two = outcome_with(2, 65_536, 8);
    let eight = outcome_with(8, 65_536, 8);

    assert_eq!(
        fingerprint(&serial),
        fingerprint(&two),
        "2 worker threads changed the Pareto front"
    );
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&eight),
        "8 worker threads changed the Pareto front"
    );

    // The engine accounts every submitted genome exactly once, so the
    // evaluation counts agree too (cache hit/miss split may differ across
    // thread counts — first-fill races are benign — but the genome and
    // batch totals may not).
    assert_eq!(serial.eval_stats.genomes, two.eval_stats.genomes);
    assert_eq!(serial.eval_stats.genomes, eight.eval_stats.genomes);
    assert_eq!(serial.eval_stats.batches, eight.eval_stats.batches);
    assert_eq!(serial.audit.evaluated, eight.audit.evaluated);
}

#[test]
fn multi_generation_run_hits_the_cache() {
    let outcome = outcome_with(2, 65_536, 8);
    assert!(
        outcome.eval_stats.cache_hits > 0,
        "elitist re-evaluation across generations must produce cache hits"
    );
    assert!(outcome.eval_stats.hit_rate() > 0.0);
}

proptest! {
    // Each case is a full (small) exploration, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cache_on_and_cache_off_explorations_agree(
        seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let cached = outcome_with(threads, 65_536, seed);
        let bare = outcome_with(1, 0, seed);
        prop_assert_eq!(fingerprint(&cached), fingerprint(&bare));
        prop_assert_eq!(cached.eval_stats.genomes, bare.eval_stats.genomes);
        // With the cache disabled every lookup is a miss.
        prop_assert_eq!(bare.eval_stats.cache_hits, 0);
        prop_assert_eq!(bare.eval_stats.cache_misses, bare.eval_stats.genomes);
    }
}
