//! Kill-and-resume determinism suite: interrupting an exploration at *any*
//! generation boundary and resuming from its checkpoint must reconverge to
//! the exact run an uninterrupted process would have produced — same
//! Pareto front, same audit counters, same canonical trace — regardless of
//! the `--threads` or `--cache-cap` the two halves ran with. A proptest
//! leg round-trips the checkpoint itself: bytes → value → bytes must be
//! the identity, so every `f64` (including NaN histories) survives
//! bit-exactly.

use std::path::{Path, PathBuf};

use mcmap::benchmarks::cruise;
use mcmap::core::{
    explore, read_checkpoint, write_checkpoint, DseConfig, DseOutcome, ObjectiveMode,
    ResilienceConfig,
};
use mcmap::ga::GaConfig;
use mcmap::obs::{canonical_trace, stitch_traces, Event, Recorder};
use proptest::prelude::*;

const GENS: usize = 4;

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mcmap_resume_{}_{name}", std::process::id()))
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(mcmap::resilience::backup_path(path));
}

struct Run {
    threads: usize,
    cache_cap: usize,
    seed: u64,
    traced: bool,
    resilience: ResilienceConfig,
}

impl Run {
    fn go(self) -> DseOutcome {
        let b = cruise();
        explore(
            &b.apps,
            &b.arch,
            DseConfig {
                ga: GaConfig {
                    population: 12,
                    generations: GENS,
                    seed: self.seed,
                    threads: self.threads,
                    ..GaConfig::default()
                },
                objectives: ObjectiveMode::PowerService,
                allow_dropping: true,
                audit: true,
                policies: Some(b.policies.clone()),
                repair_iters: 40,
                cache_cap: self.cache_cap,
                obs: if self.traced {
                    Recorder::ring(1 << 18)
                } else {
                    Recorder::default()
                },
                resilience: self.resilience,
                ..DseConfig::default()
            },
        )
    }
}

fn fingerprint(o: &DseOutcome) -> String {
    format!("{:?}", o.reports)
}

/// Stitches an interrupted trace with its resumed continuation the way
/// `salvage_trace` does on disk: the part-1 prefix up to the checkpoint's
/// sequence high-water mark (dropping the interrupted process's trailing
/// end-of-run events), then part 2 (whose re-emitted preamble dedups away).
fn stitched(part1: &DseOutcome, part2: &DseOutcome, trace_seq: u64) -> Vec<Event> {
    let prefix: Vec<Event> = part1
        .obs
        .events()
        .into_iter()
        .filter(|e| e.seq <= trace_seq)
        .collect();
    stitch_traces(&[prefix, part2.obs.events()])
}

#[test]
fn kill_at_every_generation_resumes_bit_identically() {
    let baseline_path = scratch("sweep_baseline.ckpt");
    cleanup(&baseline_path);
    let baseline = Run {
        threads: 2,
        cache_cap: 65_536,
        seed: 8,
        traced: true,
        resilience: ResilienceConfig {
            checkpoint: Some(baseline_path.clone()),
            ..ResilienceConfig::default()
        },
    }
    .go();
    let baseline_trace = canonical_trace(&baseline.obs.events());

    // k = 1 (first boundary after the initial population), mid, and the
    // final generation (resume is then a pure no-op replay).
    for k in [1, GENS / 2, GENS] {
        let path = scratch(&format!("sweep_k{k}.ckpt"));
        cleanup(&path);

        let part1 = Run {
            threads: 2,
            cache_cap: 65_536,
            seed: 8,
            traced: true,
            resilience: ResilienceConfig {
                checkpoint: Some(path.clone()),
                stop_after_generation: Some(k),
                ..ResilienceConfig::default()
            },
        }
        .go();
        assert_eq!(
            part1.interrupted,
            k < GENS,
            "stopping before the budget is spent must be reported"
        );

        let ckpt = read_checkpoint(&path).expect("part 1 left a valid checkpoint");
        assert_eq!(ckpt.generation, k);

        let part2 = Run {
            threads: 2,
            cache_cap: 65_536,
            seed: 8,
            traced: true,
            resilience: ResilienceConfig {
                checkpoint: Some(path.clone()),
                resume: Some(path.clone()),
                ..ResilienceConfig::default()
            },
        }
        .go();
        assert_eq!(part2.resumed_from, Some(k));
        assert_eq!(
            fingerprint(&part2),
            fingerprint(&baseline),
            "kill at generation {k}: resumed front differs from the uninterrupted run"
        );
        assert_eq!(
            part2.audit, baseline.audit,
            "kill at generation {k}: audit counters differ"
        );
        assert_eq!(part2.result.evaluations, baseline.result.evaluations);
        assert_eq!(
            canonical_trace(&stitched(&part1, &part2, ckpt.trace_seq)),
            baseline_trace,
            "kill at generation {k}: stitched trace differs from the uninterrupted run"
        );
        cleanup(&path);
    }
    cleanup(&baseline_path);
}

#[test]
fn resume_is_independent_of_threads_and_cache_capacity() {
    let baseline = Run {
        threads: 1,
        cache_cap: 65_536,
        seed: 9,
        traced: false,
        resilience: ResilienceConfig::default(),
    }
    .go();

    let path = scratch("knobs.ckpt");
    cleanup(&path);
    let part1 = Run {
        threads: 1,
        cache_cap: 65_536,
        seed: 9,
        traced: false,
        resilience: ResilienceConfig {
            checkpoint: Some(path.clone()),
            stop_after_generation: Some(2),
            ..ResilienceConfig::default()
        },
    }
    .go();
    assert!(part1.interrupted);

    // Resume with a different worker count and the memo cache disabled:
    // both are pure speed knobs, so the reconverged front must not move.
    let part2 = Run {
        threads: 4,
        cache_cap: 0,
        seed: 9,
        traced: false,
        resilience: ResilienceConfig {
            resume: Some(path.clone()),
            ..ResilienceConfig::default()
        },
    }
    .go();
    assert_eq!(fingerprint(&part2), fingerprint(&baseline));
    assert_eq!(part2.audit, baseline.audit);
    cleanup(&path);
}

/// The multi-tenant scheduling claim behind `mcmap-serve`, proved at the
/// library level: two jobs timesliced one generation at a time through the
/// same process — each slice a checkpoint-resume-stop cycle — produce the
/// same fronts, audit counters, and canonical traces as each job run solo
/// and uninterrupted. The interleaving itself is what's adversarial here:
/// every boundary of job A has job B's slices (and their allocator/cache
/// side effects) between it and the next.
#[test]
fn two_interleaved_jobs_match_their_solo_runs_at_every_slice_boundary() {
    let seeds = [8u64, 9u64];
    // The solo references checkpoint too (without ever stopping): the
    // `resilience.checkpoint` boundary marks are part of the trace, so the
    // comparison needs them on both sides.
    let solos: Vec<DseOutcome> = seeds
        .iter()
        .map(|&seed| {
            let path = scratch(&format!("interleave_solo_{seed}.ckpt"));
            cleanup(&path);
            let out = Run {
                threads: 2,
                cache_cap: 65_536,
                seed,
                traced: true,
                resilience: ResilienceConfig {
                    checkpoint: Some(path.clone()),
                    ..ResilienceConfig::default()
                },
            }
            .go();
            cleanup(&path);
            out
        })
        .collect();
    let solo_traces: Vec<String> = solos
        .iter()
        .map(|o| canonical_trace(&o.obs.events()))
        .collect();

    let paths = [scratch("interleave_a.ckpt"), scratch("interleave_b.ckpt")];
    for p in &paths {
        cleanup(p);
    }
    let mut parts: [Vec<Vec<Event>>; 2] = [Vec::new(), Vec::new()];
    let mut finals: [Option<DseOutcome>; 2] = [None, None];
    let mut slices = [0usize; 2];
    while finals.iter().any(Option::is_none) {
        for j in 0..2 {
            if finals[j].is_some() {
                continue;
            }
            let out = Run {
                threads: 2,
                cache_cap: 65_536,
                seed: seeds[j],
                traced: true,
                resilience: ResilienceConfig {
                    checkpoint: Some(paths[j].clone()),
                    resume: paths[j].exists().then(|| paths[j].clone()),
                    stop_after_slice: Some(1),
                    ..ResilienceConfig::default()
                },
            }
            .go();
            slices[j] += 1;
            assert!(slices[j] <= GENS + 1, "job {j} never finished");
            if out.interrupted {
                // Keep only what the slice's checkpoint vouches for — the
                // same trim the server applies to the on-disk trace.
                let ckpt = read_checkpoint(&paths[j]).expect("slice checkpoint");
                parts[j].push(
                    out.obs
                        .events()
                        .into_iter()
                        .filter(|e| e.seq <= ckpt.trace_seq)
                        .collect(),
                );
            } else {
                parts[j].push(out.obs.events());
                finals[j] = Some(out);
            }
        }
    }
    for j in 0..2 {
        assert_eq!(
            slices[j],
            GENS + 1,
            "one-generation slices must walk every boundary exactly once"
        );
        let fin = finals[j].take().expect("finished above");
        assert_eq!(
            fingerprint(&fin),
            fingerprint(&solos[j]),
            "interleaved job {j}: front differs from its solo run"
        );
        assert_eq!(
            fin.audit, solos[j].audit,
            "interleaved job {j}: audit counters differ from its solo run"
        );
        assert_eq!(
            canonical_trace(&stitch_traces(&parts[j])),
            solo_traces[j],
            "interleaved job {j}: stitched trace differs from its solo run"
        );
        cleanup(&paths[j]);
    }
}

proptest! {
    // Each case is a small exploration plus a resume, so keep the count
    // modest — the fixed sweep above covers the boundaries exhaustively.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Checkpoint serialization is the identity on its own output:
    /// bytes → value → bytes is byte-for-byte stable for checkpoints
    /// produced at arbitrary seeds and kill points, and resuming from the
    /// re-encoded copy reconverges to the uninterrupted run.
    #[test]
    fn checkpoint_round_trips_and_resumes(
        seed in 0u64..1_000,
        kill in 1usize..=GENS,
        threads in 1usize..5,
    ) {
        let path = scratch(&format!("prop_{seed}_{kill}.ckpt"));
        cleanup(&path);
        let _part1 = Run {
            threads,
            cache_cap: 65_536,
            seed,
            traced: false,
            resilience: ResilienceConfig {
                checkpoint: Some(path.clone()),
                stop_after_generation: Some(kill),
                ..ResilienceConfig::default()
            },
        }
        .go();

        let bytes = std::fs::read(&path).expect("checkpoint written");
        let decoded = read_checkpoint(&path).expect("checkpoint valid");
        let reencoded = scratch(&format!("prop_{seed}_{kill}_reenc.ckpt"));
        cleanup(&reencoded);
        write_checkpoint(&reencoded, &decoded).expect("re-encode");
        let bytes2 = std::fs::read(&reencoded).expect("re-encoded checkpoint");
        prop_assert_eq!(&bytes, &bytes2, "decode ∘ encode must be the identity");

        let baseline = Run {
            threads,
            cache_cap: 65_536,
            seed,
            traced: false,
            resilience: ResilienceConfig::default(),
        }
        .go();
        let resumed = Run {
            threads,
            cache_cap: 65_536,
            seed,
            traced: false,
            resilience: ResilienceConfig {
                resume: Some(reencoded.clone()),
                ..ResilienceConfig::default()
            },
        }
        .go();
        prop_assert_eq!(resumed.resumed_from, Some(kill));
        prop_assert_eq!(fingerprint(&resumed), fingerprint(&baseline));
        cleanup(&path);
        cleanup(&reencoded);
    }
}
